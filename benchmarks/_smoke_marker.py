"""The ``smoke`` pytest marker, importable without pytest installed.

The script-style benchmarks (``bench_perf_core.py`` / ``bench_plan_cache.py``
/ ``bench_parallel.py``) double as pytest smoke tests — ``pytest benchmarks
-m smoke`` runs each of them end to end at tiny scale.  The CI perf-smoke
job, however, runs them as plain scripts in an environment without pytest,
so the marker degrades to a no-op decorator there.
"""

from __future__ import annotations

try:
    import pytest
    smoke = pytest.mark.smoke
except ImportError:  # pragma: no cover - script mode without pytest
    def smoke(func):
        return func
