"""Ablation — what the F/F̄ filter matrices buy over unfiltered search.

ECF's defining design choice (§V-A) is the pre-computed filter matrices: the
constraint expression is evaluated once per (query edge, hosting edge) pair
up front, and the tree search then intersects candidate sets instead of
re-evaluating constraints.  The Considine–Byers-style brute-force baseline is
exactly the same depth-first search without that stage.

Expected shape: ECF touches dramatically fewer candidate placements during
the tree search than the brute-force baseline on the same workload, at the
price of the up-front filter-construction time — the trade the paper's §V-C
discussion is about.
"""

from __future__ import annotations

import pytest

from repro.analysis import filter_ablation_experiment
from repro.analysis.metrics import group_summaries

SEED = 22


@pytest.mark.benchmark(group="ablation")
def test_ablation_filter_matrices(benchmark, cached_experiment, figure_report):
    """Filter ablation: ECF vs unfiltered brute-force DFS on the same queries."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "ablation-filters",
            lambda: filter_ablation_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    time_series = group_summaries(rows, ("algorithm", "size"), "total_ms")
    work_series = group_summaries(rows, ("algorithm", "size"), "candidates_considered")
    figure_report("ablation_filters_time", time_series,
                  "Ablation — ECF (filtered) vs brute force: first-match time")
    figure_report("ablation_filters_candidates", work_series,
                  "Ablation — candidate placements examined during the tree search")

    assert {row["algorithm"] for row in rows} == {"ECF", "BruteForceCSP"}

    candidates = {row["algorithm"]: row["mean"]
                  for row in group_summaries(rows, ("algorithm",),
                                             "candidates_considered")}
    # The filters must cut the search work (candidates touched) substantially.
    assert candidates["ECF"] < candidates["BruteForceCSP"]

    # And ECF pays for it with filter construction, which the brute force skips.
    filter_entries = {row["algorithm"]: row["mean"]
                      for row in group_summaries(rows, ("algorithm",),
                                                 "filter_entries")}
    assert filter_entries["ECF"] > 0
    assert filter_entries["BruteForceCSP"] == 0
