"""Ablation — what the Lemma-1 node ordering buys ECF.

DESIGN.md calls out the candidate-count ordering (Lemma 1) and its
connectivity-aware refinement as the design choices that keep the explored
permutation tree small.  This ablation runs ECF with three orderings on the
same PlanetLab subgraph workload:

* ``connectivity`` — Lemma 1 refined to keep the visited prefix connected
  (the library default);
* ``candidate-count`` — plain Lemma 1 (ascending candidate counts);
* ``natural`` — insertion order, i.e. no heuristic.

Expected shape: the heuristic orderings expand (far) fewer search-tree nodes
than the natural order, and the connectivity-aware variant never does worse
than plain candidate-count on nodes expanded.
"""

from __future__ import annotations

import pytest

from repro.analysis import ordering_ablation_experiment
from repro.analysis.metrics import group_summaries

SEED = 21


@pytest.mark.benchmark(group="ablation")
def test_ablation_node_ordering(benchmark, cached_experiment, figure_report):
    """Lemma-1 ordering ablation: time and expanded nodes per ordering."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "ablation-ordering",
            lambda: ordering_ablation_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    time_series = group_summaries(rows, ("ordering", "size"), "total_ms")
    work_series = group_summaries(rows, ("ordering", "size"), "nodes_expanded")
    figure_report("ablation_ordering_time", time_series,
                  "Ablation — ECF first-match time per node ordering",
                  group_field="ordering")
    figure_report("ablation_ordering_nodes", work_series,
                  "Ablation — ECF search-tree nodes expanded per node ordering",
                  group_field="ordering")

    assert {row["ordering"] for row in rows} == {"connectivity", "candidate-count",
                                                 "natural"}

    expanded = {row["ordering"]: row["mean"]
                for row in group_summaries(rows, ("ordering",), "nodes_expanded")}
    # The heuristic orderings must not expand more of the tree than the
    # unordered search on average.
    assert expanded["connectivity"] <= expanded["natural"] * 1.05
    assert expanded["candidate-count"] <= expanded["natural"] * 1.5
