"""§VII-F — NETEMBED versus previously published techniques.

Paper setting: the comparison with prior work is qualitative — ``assign``
(simulated annealing), ``wanassign`` (genetic algorithm), Zhu & Ammar's
stress-minimising heuristic and Considine & Byers' brute-force search handle
only small instances and/or offer no completeness guarantee, with reported
runtimes of minutes for tens of nodes, whereas NETEMBED answers much larger
queries in sub-second to second times.

Reproduced shape: on identical subgraph workloads the NETEMBED algorithms
find a first feasible embedding on (essentially) every query, while the
reimplemented baselines are slower, succeed less often, or both — and the
metaheuristics can never certify infeasibility.
"""

from __future__ import annotations

import pytest

from repro.analysis import baseline_comparison_experiment

SEED = 77
NETEMBED = {"ECF", "RWB", "LNS"}


@pytest.mark.benchmark(group="baselines")
def test_baseline_comparison(benchmark, cached_experiment, figure_report):
    """Regenerates the §VII-F comparison as a success-rate / time table."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "baselines",
            lambda: baseline_comparison_experiment(seed=SEED, timeout=4.0,
                                                   query_sizes=(6, 10))),
        rounds=1, iterations=1)

    per_solver = []
    for name in sorted({row["algorithm"] for row in rows}):
        subset = [row for row in rows if row["algorithm"] == name]
        successes = sum(1 for row in subset if row["found"] >= 1)
        times = [row["total_ms"] for row in subset]
        per_solver.append({
            "solver": name,
            "family": "NETEMBED" if name in NETEMBED else "baseline",
            "queries": len(subset),
            "success_rate": successes / len(subset),
            "mean_ms": sum(times) / len(times),
        })
    figure_report("baseline_comparison", per_solver,
                  "§VII-F — NETEMBED vs prior techniques (first-match success and time)",
                  pivot=False)

    solvers = {row["solver"] for row in per_solver}
    assert NETEMBED <= solvers
    assert {"BruteForceCSP", "SA-assign", "GA-wanassign", "Greedy-stress"} <= solvers

    # Shape: every NETEMBED algorithm succeeds on every feasible-by-construction
    # query; no baseline family beats the best NETEMBED success rate.
    netembed_rates = [row["success_rate"] for row in per_solver
                      if row["family"] == "NETEMBED"]
    baseline_rates = [row["success_rate"] for row in per_solver
                      if row["family"] == "baseline"]
    assert min(netembed_rates) == pytest.approx(1.0)
    assert max(baseline_rates) <= max(netembed_rates) + 1e-9
