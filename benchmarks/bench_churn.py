#!/usr/bin/env python
"""Incremental refresh and repair under sparse churn vs. the rebuild engine.

The dynamic-network scenario: a long-lived service holds compiled plans and
reserved embeddings while the monitoring feed jitters a *small fraction* of
the model every tick.  This benchmark replays identical attr-jitter-only
churn traces over two copies of a PlanetLab-style model and times, per tick:

* **incremental-refresh** — ``plan.refresh()`` routing through the
  delta-aware patch path: the mutation journal is replayed onto the filter
  bitmasks and vectorizer columns, cost proportional to the delta;
* **full-recompile** — the pre-journal engine's cost: the hosting compile is
  dropped and ``ECF().prepare(request)`` rebuilds everything from scratch.

The two arms must stay **element-identical**: after every tick the patched
filter matrices (cells, candidate masks, fallbacks) and the recomputed
visiting order are compared against the from-scratch build.  A second phase
reserves embeddings against a third copy and times ``service.repair()`` —
which releases only the violated assignments — against answering the same
query from scratch (the re-embed a repair-less service would pay).

Timings and the regression-gate metrics (``refresh.speedup_refresh``,
``repair.speedup_repair``, parity booleans) go to ``BENCH_churn.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_churn.py \
        [--scale smoke|small|planetlab] [--seed N] [--ticks N] \
        [--link-fraction F] [--node-fraction F] [--output PATH]
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import environment_info, write_bench_json
from repro.api import SearchRequest
from repro.core import ECF, clear_hosting_compile
from repro.service import NetEmbedService, QuerySpec
from repro.utils.rng import as_rng
from repro.workloads import ChurnConfig, ChurnProcess, churn_embedding_suite

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_churn.json"

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ChurnScale:
    """Scene size per --scale."""

    hosting_nodes: int
    num_queries: int
    query_size: int
    slack: float


SCALES: Dict[str, ChurnScale] = {
    "smoke": ChurnScale(hosting_nodes=24, num_queries=3, query_size=6,
                        slack=0.35),
    "small": ChurnScale(hosting_nodes=48, num_queries=4, query_size=8,
                        slack=0.35),
    "planetlab": ChurnScale(hosting_nodes=296, num_queries=4, query_size=10,
                            slack=0.35),
}


def build_scene(scale: ChurnScale, seed: int):
    """One deterministic (hosting, workloads) scene.

    Called once per arm with the same *seed*, so every arm sees an
    identical network and identical queries — and a same-seeded
    :class:`ChurnProcess` then replays an identical churn trace onto each.
    """
    from repro.workloads import planetlab_host

    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = churn_embedding_suite(hosting, num_queries=scale.num_queries,
                                      query_size=scale.query_size,
                                      slack=scale.slack, rng=rng)
    return hosting, workloads


def assert_same_artifacts(patched_plan, fresh_plan, tick: int) -> None:
    """Patched plan artifacts must be element-identical to a rebuild."""
    patched, fresh = patched_plan.prepared, fresh_plan.prepared
    pf, ff = patched.filters, fresh.filters
    checks = [
        ("match cells", pf.match_masks == ff.match_masks),
        ("non-match cells", pf.non_match_masks == ff.non_match_masks),
        ("candidate masks", pf.node_candidate_masks == ff.node_candidate_masks),
        ("node screening", pf.node_allowed_masks == ff.node_allowed_masks),
        ("infeasibility", patched.infeasible == fresh.infeasible),
        ("visiting order", patched.order == fresh.order),
    ]
    for label, ok in checks:
        if not ok:
            raise AssertionError(
                f"tick {tick}: patched plan diverged from a from-scratch "
                f"rebuild on {label}")


def run_refresh_phase(scale: ChurnScale, seed: int, ticks: int,
                      config: ChurnConfig) -> Dict:
    """Per-tick incremental plan refresh vs. full recompile, parity-checked."""
    hosting_inc, workloads_inc = build_scene(scale, seed)
    hosting_full, workloads_full = build_scene(scale, seed)
    churn_inc = ChurnProcess(hosting_inc, config, rng=seed + 1)
    churn_full = ChurnProcess(hosting_full, config, rng=seed + 1)

    requests_inc = [SearchRequest.build(w.query, hosting_inc,
                                        constraint=w.constraint)
                    for w in workloads_inc]
    requests_full = [SearchRequest.build(w.query, hosting_full,
                                         constraint=w.constraint)
                     for w in workloads_full]
    plans = [ECF().prepare(request) for request in requests_inc]

    incremental_seconds = 0.0
    full_seconds = 0.0
    patched = recompiled = 0
    touched_rows = 0
    for tick in range(1, ticks + 1):
        record_inc = churn_inc.tick()
        record_full = churn_full.tick()
        if ([record_inc.touched_edges, record_inc.touched_nodes]
                != [record_full.touched_edges, record_full.touched_nodes]):
            raise AssertionError("churn traces diverged between the arms")
        for index, request in enumerate(requests_full):
            started = time.perf_counter()
            plans[index] = plans[index].refresh()
            incremental_seconds += time.perf_counter() - started
            if plans[index].refresh_mode == "patched":
                patched += 1
            else:
                recompiled += 1

            # The historical cost: any tick invalidated the memoised hosting
            # compile outright, so a post-tick prepare rebuilt everything.
            clear_hosting_compile(hosting_full)
            started = time.perf_counter()
            fresh = ECF().prepare(request)
            full_seconds += time.perf_counter() - started

            assert_same_artifacts(plans[index], fresh, tick)
        touched_rows += len(record_inc.touched_edges)

    filters = plans[0].prepared.filters
    return {
        "ticks": ticks,
        "queries": len(plans),
        "refreshes": ticks * len(plans),
        "patched": patched,
        "recompiled": recompiled,
        "incremental_seconds": incremental_seconds,
        "full_seconds": full_seconds,
        "speedup_refresh": (full_seconds / incremental_seconds
                            if incremental_seconds > 0 else float("inf")),
        "parity_checked": True,
        "patched_rows_per_plan": filters.patched_rows,
        "links_touched": touched_rows,
    }


def run_repair_phase(scale: ChurnScale, seed: int, ticks: int,
                     config: ChurnConfig, timeout: float) -> Dict:
    """Repair reserved embeddings per tick vs. re-embedding from scratch."""
    hosting, workloads = build_scene(scale, seed)
    for node in hosting.nodes():
        hosting.set_capacity(node, 4.0)
    service = NetEmbedService(default_timeout=timeout)
    service.register_network(hosting, name="churn-bench")
    reservations = []
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", max_results=1, reserve=True))
        if response.reservation_id is None:
            raise AssertionError(
                f"feasible-by-construction query {workload.query.name!r} "
                f"found no embedding to reserve")
        reservations.append((response.reservation_id, workload))

    churn = ChurnProcess(hosting, config, rng=seed + 1)
    counts = {"intact": 0, "repaired": 0, "failed": 0, "timeout": 0}
    repair_seconds = 0.0
    reembed_seconds = 0.0
    moved = 0
    for _ in range(ticks):
        churn.tick()
        service.registry.touch("churn-bench")
        for reservation_id, workload in reservations:
            repair = service.repair(reservation_id, timeout=timeout)
            repair_seconds += repair.result.elapsed_seconds
            counts[repair.status] = counts.get(repair.status, 0) + 1
            moved += len(repair.moved)

            started = time.perf_counter()
            result = ECF().request(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                timeout=timeout, max_results=1))
            reembed_seconds += time.perf_counter() - started
            if repair.ok != result.found:
                raise AssertionError(
                    f"repair ({repair.status}) and re-embed "
                    f"(found={result.found}) disagree on feasibility of "
                    f"{workload.query.name!r}")

    return {
        "ticks": ticks,
        "reservations": len(reservations),
        "checks": ticks * len(reservations),
        **counts,
        "moved_nodes": moved,
        "repair_seconds": repair_seconds,
        "reembed_seconds": reembed_seconds,
        "speedup_repair": (reembed_seconds / repair_seconds
                           if repair_seconds > 0 else float("inf")),
        "repaired_valid": True,   # service.repair re-validates before rebinding
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="scene size (default: smoke)")
    parser.add_argument("--seed", type=int, default=5,
                        help="scene + churn RNG seed (default: 5)")
    parser.add_argument("--ticks", type=int, default=8,
                        help="churn ticks per phase (default: 8)")
    parser.add_argument("--link-fraction", type=float, default=0.03,
                        help="fraction of links jittered per tick "
                             "(default: 0.03)")
    parser.add_argument("--node-fraction", type=float, default=0.02,
                        help="fraction of nodes perturbed per tick "
                             "(default: 0.02)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-operation budget in seconds (default: 60)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_churn.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    if args.ticks < 1:
        parser.error("--ticks must be >= 1")

    scale = SCALES[args.scale]
    config = ChurnConfig(link_fraction=args.link_fraction,
                         node_fraction=args.node_fraction,
                         delay_jitter=0.25, load_jitter=0.2)
    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    print(f"churn: scale={args.scale} seed={args.seed} "
          f"{scale.hosting_nodes} hosts, {scale.num_queries} queries of "
          f"{scale.query_size} nodes, {args.ticks} attr-jitter ticks "
          f"(links {args.link_fraction}, nodes {args.node_fraction})")

    refresh = run_refresh_phase(scale, args.seed, args.ticks, config)
    print(f"refresh: incremental {refresh['incremental_seconds']:.3f}s vs "
          f"full recompile {refresh['full_seconds']:.3f}s over "
          f"{refresh['refreshes']} refreshes -> "
          f"{refresh['speedup_refresh']:.1f}x "
          f"({refresh['patched']} patched / {refresh['recompiled']} "
          f"recompiled; artifacts element-identical)")
    if refresh["speedup_refresh"] < 1.0:
        print("WARNING: incremental refresh slower than full recompile",
              file=sys.stderr)

    repair = run_repair_phase(scale, args.seed, args.ticks, config,
                              args.timeout)
    print(f"repair:  {repair['checks']} checks -> {repair['intact']} intact, "
          f"{repair['repaired']} repaired ({repair['moved_nodes']} moves), "
          f"{repair['failed']} failed; repair {repair['repair_seconds']:.3f}s "
          f"vs re-embed {repair['reembed_seconds']:.3f}s -> "
          f"{repair['speedup_repair']:.1f}x")

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "scale": args.scale,
            "seed": args.seed,
            "ticks": args.ticks,
            "hosting_nodes": scale.hosting_nodes,
            "num_queries": scale.num_queries,
            "query_size": scale.query_size,
            "slack": scale.slack,
            "link_fraction": args.link_fraction,
            "node_fraction": args.node_fraction,
            "started": started,
        },
        "environment": environment_info(),
        "refresh": refresh,
        "repair": repair,
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke", "--ticks", "4",
                 "--output", str(tmp_path / "BENCH_churn.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
