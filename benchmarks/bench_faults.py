#!/usr/bin/env python
"""The serving tier under a seeded fault plan: availability, parity, recovery.

A closed-loop client drives a live server while the deterministic fault
injector (:mod:`repro.faults`) fires a fixed schedule of engine timeouts
and connection drops plus a seeded-Poisson sprinkle of admission slowdowns.
The client runs the full resilience stack — :class:`RetryPolicy` with
``retry_errors`` on, per-request idempotency keys, automatic reconnect —
and the benchmark reports the invariants that make fault tolerance a
*contract* rather than a hope:

* ``availability.availability`` — every request must end in a ``result``
  (the gate pins it at 1.0: injected faults never cost an answer);
* ``faults.fired_counts`` — the same seed fires the same faults, run after
  run (exact-gated, the determinism proof);
* ``parity.results_match`` — answers under faults are byte-identical to a
  fault-free direct engine run: retries and idempotent replays add zero
  result drift;
* ``wal.state_match`` / ``wal.orphans`` — the reservation WAL written
  during the faulted run replays into exactly the live ledger, and every
  active reservation is one a client actually holds a ticket for.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py \
        [--scale smoke|small] [--seed N] [--output PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import faults
from repro.analysis.perf import environment_info, write_bench_json
from repro.faults import FaultPlan, FaultSpec
from repro.server import (
    AdmissionConfig,
    AsyncNetEmbedClient,
    EmbeddingServer,
    RetryPolicy,
    ServerConfig,
    ServiceRegistry,
    mapping_payload,
)
from repro.service import NetEmbedService, QuerySpec
from repro.utils.rng import as_rng
from repro.workloads import planetlab_host, subgraph_query

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_faults.json"

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultScale:
    """Scene size, request count and fault schedule per --scale."""

    hosting_nodes: int
    num_workloads: int
    query_size: int
    slack: float
    requests: int
    max_results: int
    deadline: float
    reserve_every: int           # every n-th request also reserves
    timeout_hits: Tuple[int, ...]   # service.submit engine-timeout schedule
    drop_hits: Tuple[int, ...]      # server.reply connection-drop schedule
    slow_rate: float             # admission.admit seeded-Poisson slow-calls


SCALES: Dict[str, FaultScale] = {
    "smoke": FaultScale(hosting_nodes=16, num_workloads=3, query_size=4,
                        slack=0.30, requests=12, max_results=2, deadline=30.0,
                        reserve_every=3, timeout_hits=(3, 8), drop_hits=(5,),
                        slow_rate=0.25),
    "small": FaultScale(hosting_nodes=32, num_workloads=4, query_size=5,
                        slack=0.30, requests=40, max_results=2, deadline=30.0,
                        reserve_every=4, timeout_hits=(3, 11, 27),
                        drop_hits=(6, 22), slow_rate=0.20),
}


def build_scene(scale: FaultScale, seed: int):
    """One deterministic (hosting, workloads) scene — shared by both arms."""
    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    for node in hosting.nodes():
        # Ample per-host capacity: reservations must be limited by the
        # workload, not by an accidental capacity cliff mid-benchmark.
        hosting.set_capacity(node, float(scale.requests))
    workloads = [subgraph_query(hosting, scale.query_size, slack=scale.slack,
                                rng=rng)
                 for _ in range(scale.num_workloads)]
    return hosting, workloads


def build_plan(scale: FaultScale, seed: int) -> FaultPlan:
    """The fault schedule: fixed hits plus one seeded Poisson spec."""
    return FaultPlan.fixed(
        FaultSpec("service.submit", "engine-timeout",
                  hits=scale.timeout_hits),
        FaultSpec("server.reply", "connection-drop", hits=scale.drop_hits),
        FaultSpec.poisson("admission.admit", "slow-call",
                          rate=scale.slow_rate, horizon=float(scale.requests),
                          seed=seed + 2, delay=0.01),
    )


async def drive_closed_loop(scale: FaultScale, seed: int,
                            wal_path: Path) -> Dict:
    """Run the faulted arm; returns raw outcomes + fault/WAL observables."""
    hosting, workloads = build_scene(scale, seed)
    config = ServerConfig(
        default_timeout=scale.deadline, engine_workers=1,
        admission=AdmissionConfig(max_queue_depth=max(16, scale.requests)))
    registry = ServiceRegistry(config)
    registry.service.register_network(hosting, name="faults-bench")
    registry.service.attach_wal(wal_path)
    plan = build_plan(scale, seed)
    retry = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5,
                        retry_errors=True)

    outcomes: List[Tuple[int, int, Dict]] = []
    run_started = time.perf_counter()
    with faults.injecting(plan) as injector:
        async with EmbeddingServer(registry) as server:
            client = await AsyncNetEmbedClient.connect(
                server.host, server.port)
            try:
                for i in range(scale.requests):
                    workload = workloads[i % len(workloads)]
                    response = await client.embed(
                        workload.query, constraint=workload.constraint,
                        algorithm="ECF", max_results=scale.max_results,
                        reserve=(i % scale.reserve_every == 0),
                        idempotency_key=f"req-{i:04d}",
                        retry=retry, rng=seed + i)
                    outcomes.append((i, i % len(workloads), response))
                metrics = await client.metrics()
                reconnects = client.reconnects
            finally:
                await client.close()
        fault_stats = injector.stats()
    wall_seconds = time.perf_counter() - run_started

    live_snapshot = [entry for entry in
                     registry.service.reservations.snapshot()
                     if entry["active"]]
    registry.service.shutdown()     # closes the WAL cleanly
    return {"outcomes": outcomes, "metrics": metrics,
            "reconnects": reconnects, "fault_stats": fault_stats,
            "live_snapshot": live_snapshot, "wall_seconds": wall_seconds}


def run_parity_check(scale: FaultScale, seed: int, outcomes) -> Dict:
    """Faulted-run answers must equal a fault-free direct engine run."""
    hosting, workloads = build_scene(scale, seed)
    service = NetEmbedService(default_timeout=scale.deadline)
    service.register_network(hosting, name="faults-bench")
    expected = []
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", max_results=scale.max_results))
        expected.append([mapping_payload(m) for m in response.mappings])
    service.shutdown()

    compared = 0
    mismatches = 0
    for _, workload_index, response in outcomes:
        if response.get("kind") != "result":
            continue
        compared += 1
        if response["mappings"] != expected[workload_index]:
            mismatches += 1
    return {
        "responses_compared": compared,
        "mismatches": mismatches,
        "results_match": mismatches == 0 and compared > 0,
    }


def run_recovery_check(scale: FaultScale, seed: int, wal_path: Path,
                       live_snapshot, acknowledged) -> Dict:
    """Replay the WAL into a fresh service; the ledgers must be identical."""
    hosting, _ = build_scene(scale, seed)
    service = NetEmbedService(default_timeout=scale.deadline)
    service.register_network(hosting, name="faults-bench")
    report = service.attach_wal(wal_path)
    recovered = [entry for entry in service.reservations.snapshot()
                 if entry["active"]]
    service.shutdown()

    recovered_ids = {entry["id"] for entry in recovered}
    acknowledged_ids = set(acknowledged)
    state_match = (json.dumps(recovered, sort_keys=True)
                   == json.dumps(live_snapshot, sort_keys=True))
    return {
        "records": report["records"],
        "skipped": report["skipped"],
        "acknowledged": len(acknowledged_ids),
        "active": len(recovered),
        # An orphan would be capacity held with no client ticket; a lost
        # ticket the reverse.  Both must be zero under every fault plan.
        "orphans": len(recovered_ids - acknowledged_ids),
        "lost": len(acknowledged_ids - recovered_ids),
        "state_match": state_match,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="scene size and fault schedule (default: smoke)")
    parser.add_argument("--seed", type=int, default=9,
                        help="scene + fault-plan RNG seed (default: 9)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_faults.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    plan = build_plan(scale, args.seed)
    print(f"faults: scale={args.scale} seed={args.seed} "
          f"{scale.requests} closed-loop requests over "
          f"{scale.hosting_nodes} hosts; plan fires "
          f"{sum(len(s.hits) for s in plan.specs)} fault(s) across "
          f"{', '.join(plan.sites())}")

    with tempfile.TemporaryDirectory(prefix="bench-faults-") as tmp:
        wal_path = Path(tmp) / "reservations.wal"
        raw = asyncio.run(drive_closed_loop(scale, args.seed, wal_path))

        outcomes = raw["outcomes"]
        results = [o for o in outcomes if o[2].get("kind") == "result"]
        sheds = [o for o in outcomes if o[2].get("kind") == "shed"]
        errors = [o for o in outcomes if o[2].get("kind") == "error"]
        replays = sum(1 for o in outcomes if o[2].get("idempotent_replay"))
        acknowledged = [o[2]["reservation_id"] for o in results
                        if o[2].get("reservation_id")]

        parity = run_parity_check(scale, args.seed, outcomes)
        wal = run_recovery_check(scale, args.seed, wal_path,
                                 raw["live_snapshot"], acknowledged)

    availability = {
        "requests": scale.requests,
        "answered": len(outcomes),
        "results": len(results),
        "sheds": len(sheds),
        "errors_final": len(errors),
        "availability": (len(results) / scale.requests
                         if scale.requests else 0.0),
        "idempotent_replays": replays,
        "reconnects": raw["reconnects"],
        "wall_seconds": raw["wall_seconds"],
    }

    fired = raw["fault_stats"]
    print(f"availability: {availability['results']}/{scale.requests} "
          f"results ({availability['availability']:.1%}), "
          f"{availability['reconnects']} reconnect(s), "
          f"{availability['idempotent_replays']} idempotent replay(s)")
    print(f"faults fired: {fired['total_fired']} "
          f"({json.dumps(fired['fired_counts'], sort_keys=True)})")
    print(f"parity: {parity['responses_compared']} responses vs fault-free "
          f"direct engine calls, {parity['mismatches']} mismatches")
    print(f"wal: {wal['records']} record(s) replayed, "
          f"{wal['active']} active reservation(s), "
          f"{wal['orphans']} orphan(s), {wal['lost']} lost, "
          f"state_match={wal['state_match']}")
    if availability["availability"] < 0.99:
        print("WARNING: availability under faults fell below 99%",
              file=sys.stderr)
    if not parity["results_match"] or not wal["state_match"]:
        print("WARNING: fault run drifted from the fault-free reference",
              file=sys.stderr)

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "scale": args.scale,
            "seed": args.seed,
            "hosting_nodes": scale.hosting_nodes,
            "num_workloads": scale.num_workloads,
            "query_size": scale.query_size,
            "slack": scale.slack,
            "requests": scale.requests,
            "max_results": scale.max_results,
            "reserve_every": scale.reserve_every,
            "fault_plan": plan.payload(),
            "started": started,
        },
        "environment": environment_info(),
        "availability": availability,
        "faults": {
            "total_fired": fired["total_fired"],
            "fired_counts": fired["fired_counts"],
            "invocations": fired["invocations"],
        },
        "parity": parity,
        "wal": wal,
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end fault run (parity + recovery) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_faults.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
