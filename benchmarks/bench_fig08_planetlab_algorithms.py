"""Fig. 8 — Mean search time on PlanetLab subgraph queries, per algorithm.

Paper setting: the PlanetLab all-pairs trace (N=296, E=28,996) hosts random
connected subgraph queries of growing size whose edges request delay windows;
panels (a)–(c) show, for ECF, RWB and LNS respectively, the mean time to
retrieve all matches and the time to the first match.

Reproduced shape: search time grows roughly linearly with the query size for
ECF/RWB (the filters keep the explored tree small), the gap between
"all matches" and "first match" stays small for ECF, and LNS's first-match
time is far less sensitive to query size.
"""

from __future__ import annotations

import pytest

from repro.analysis import aggregate_series, planetlab_subgraph_experiment

SEED = 8


@pytest.mark.benchmark(group="fig08")
def test_fig08_planetlab_mean_search_time(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 8: per-algorithm total and first-match times vs query size."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig8", lambda: planetlab_subgraph_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    total = aggregate_series(rows, value_field="total_ms")
    first = aggregate_series(rows, value_field="first_ms")
    figure_report("fig08_total", total,
                  "Fig. 8 — mean time to retrieve all matches (PlanetLab subgraphs)")
    figure_report("fig08_first", first,
                  "Fig. 8 — mean time to first match (PlanetLab subgraphs)")

    algorithms = {row["algorithm"] for row in rows}
    assert algorithms == {"ECF", "RWB", "LNS"}
    # Feasible-by-construction queries: every algorithm finds at least one
    # embedding on every query (or is still running at the timeout).
    assert all(row["found"] >= 1 or row["timed_out"] for row in rows)
