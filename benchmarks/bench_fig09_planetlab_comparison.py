"""Fig. 9 — Head-to-head comparison of ECF, RWB and LNS on PlanetLab queries.

Paper setting: the same workload as Fig. 8, but plotted as a comparison —
(a) mean time until all matches are found and (b) time until the first match,
with all three algorithms on the same axes.

Reproduced shape: ECF and RWB track each other closely (the shared filtering
stage dominates), LNS is markedly slower for *all* matches but competitive —
and much flatter — for the *first* match.
"""

from __future__ import annotations

import pytest

from repro.analysis import aggregate_series, planetlab_subgraph_experiment
from repro.analysis.metrics import group_summaries

SEED = 8


@pytest.mark.benchmark(group="fig09")
def test_fig09_algorithm_comparison(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 9: all-matches and first-match comparison curves."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig8", lambda: planetlab_subgraph_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    all_matches = aggregate_series(rows, value_field="total_ms")
    first_match = aggregate_series(rows, value_field="first_ms")
    figure_report("fig09a_all_matches", all_matches,
                  "Fig. 9a — mean search time, all matches (ECF vs RWB vs LNS)")
    figure_report("fig09b_first_match", first_match,
                  "Fig. 9b — time to find the first match (ECF vs RWB vs LNS)")

    # Sanity checks (the ratios themselves are reported, not asserted, because
    # at benchmark scale the LNS-vs-ECF gap is much smaller than at paper scale).
    per_algorithm = {row["algorithm"]: row["mean"]
                     for row in group_summaries(rows, ("algorithm",), "total_ms")}
    assert set(per_algorithm) == {"ECF", "RWB", "LNS"}
    assert all(value > 0 for value in per_algorithm.values())
    print("mean all-matches time per algorithm (ms): "
          + ", ".join(f"{name}={value:.1f}" for name, value in sorted(per_algorithm.items())))
    # ECF and RWB share the filtering stage and must stay within an order of
    # magnitude of each other, as in the paper.
    ratio = per_algorithm["ECF"] / max(per_algorithm["RWB"], 1e-9)
    assert 0.1 <= ratio <= 10.0
