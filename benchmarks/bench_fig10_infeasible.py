"""Fig. 10 — Search times for feasible versus infeasible PlanetLab queries.

Paper setting: the Fig. 8 subgraph queries are rerun next to variants whose
link attributes were rewritten to impossible values (same topology, no
feasible embedding), and the per-algorithm time to *conclude* is compared.

Reproduced shape: ECF and RWB behave very similarly on matching and
non-matching queries (the filter stage dominates either way); LNS is slower
overall but settles "no match" relatively quickly.
"""

from __future__ import annotations

import pytest

from repro.analysis import infeasible_experiment
from repro.analysis.metrics import group_summaries

SEED = 10


@pytest.mark.benchmark(group="fig10")
def test_fig10_feasible_vs_infeasible(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 10: matching vs non-matching query search times."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig10", lambda: infeasible_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    series = group_summaries(rows, ("algorithm", "feasible", "size"), "total_ms")
    for algorithm in ("ECF", "RWB", "LNS"):
        subset = [row for row in series if row["algorithm"] == algorithm]
        figure_report(f"fig10_{algorithm.lower()}", subset,
                      f"Fig. 10 — {algorithm}: matching vs non-matching queries",
                      x_field="size", group_field="feasible")

    # Correctness of the workload itself: infeasible variants never produce a
    # mapping, feasible ones (found by construction) do unless timed out.
    infeasible_rows = [row for row in rows if not row["feasible"]]
    feasible_rows = [row for row in rows if row["feasible"]]
    assert infeasible_rows and feasible_rows
    assert all(row["found"] == 0 for row in infeasible_rows)
    assert all(row["found"] >= 1 or row["timed_out"] for row in feasible_rows)

    # Shape: ECF decides "no match" in a time comparable to its "match" time
    # (within an order of magnitude), as in the paper.
    ecf_rows = group_summaries([r for r in rows if r["algorithm"] == "ECF"],
                               ("feasible",), "total_ms")
    times = {row["feasible"]: row["mean"] for row in ecf_rows}
    ratio = times[True] / max(times[False], 1e-9)
    assert 0.05 <= ratio <= 20.0
