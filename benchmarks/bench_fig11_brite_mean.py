"""Fig. 11 — Mean search time over BRITE power-law hosting networks.

Paper setting: three BRITE hosting networks (N=1500/E=3030, N=2000/E=4040,
N=2500/E=5020) host random connected subgraph queries of growing size; the
mean time to find all matches is plotted per algorithm for each host size.

Reproduced shape: the same pattern as on PlanetLab — ECF and RWB track each
other with roughly size-linear growth, LNS shows higher variance and larger
means — across all three host sizes (scaled down but keeping the paper's
1 : 1.33 : 1.67 host-size ratio and E ≈ 2N density).
"""

from __future__ import annotations

import pytest

from repro.analysis import brite_experiment
from repro.analysis.metrics import group_summaries

SEED = 11


@pytest.mark.benchmark(group="fig11")
def test_fig11_brite_mean_search_time(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 11: mean all-matches time per BRITE host size."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig11", lambda: brite_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    host_sizes = sorted({row["host_size"] for row in rows})
    assert len(host_sizes) == 3
    # The paper's three hosts keep E ≈ 2N; so do ours.
    for row in rows:
        assert row["host_edges"] == pytest.approx(2 * row["host_size"], rel=0.25)

    for host_size in host_sizes:
        subset = [row for row in rows if row["host_size"] == host_size]
        series = group_summaries(subset, ("algorithm", "size"), "total_ms")
        figure_report(f"fig11_host{host_size}", series,
                      f"Fig. 11 — BRITE host N={host_size}: mean search time")

    # Every algorithm appears on every host and does real work.
    assert {row["algorithm"] for row in rows} == {"ECF", "RWB", "LNS"}
    assert all(row["total_ms"] > 0 for row in rows)
