"""Fig. 12 — Time to find the first match over BRITE hosting networks.

Paper setting: the same three BRITE hosts and subgraph workload as Fig. 11,
but the metric is the time until the *first* feasible embedding is reported.

Reproduced shape: the gap between the NETEMBED algorithms narrows when only
the first match matters — LNS is no longer far behind ECF/RWB — which is the
paper's main observation for this figure.
"""

from __future__ import annotations

import pytest

from repro.analysis import brite_experiment
from repro.analysis.metrics import group_summaries

SEED = 11


@pytest.mark.benchmark(group="fig12")
def test_fig12_brite_time_to_first_match(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 12: first-match time per BRITE host size."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig11", lambda: brite_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    host_sizes = sorted({row["host_size"] for row in rows})
    for host_size in host_sizes:
        subset = [row for row in rows if row["host_size"] == host_size]
        series = group_summaries(subset, ("algorithm", "size"), "first_ms")
        figure_report(f"fig12_host{host_size}", series,
                      f"Fig. 12 — BRITE host N={host_size}: time to first match")

    # The first-match measurements exist for the (feasible-by-construction)
    # workload on each host unless the run hit its timeout first.
    with_first = [row for row in rows if row["first_ms"] is not None]
    assert with_first, "no run recorded a first match"

    # Shape: averaged over the workload, the LNS-to-ECF ratio for the first
    # match is much smaller than the paper's all-matches gap (Fig. 11); check
    # it stays within an order of magnitude here.
    per_algorithm = {row["algorithm"]: row["mean"]
                     for row in group_summaries(with_first, ("algorithm",), "first_ms")}
    if {"ECF", "LNS"} <= set(per_algorithm):
        ratio = per_algorithm["LNS"] / max(per_algorithm["ECF"], 1e-9)
        assert ratio <= 10.0
