"""Fig. 13 — Finding clique embeddings in PlanetLab (regular, under-constrained).

Paper setting: clique queries of increasing size whose only constraint is a
10–100 ms delay window on every edge are embedded into PlanetLab; panel (a)
shows the mean time to find all embeddings, panel (b) the time to the first.

Reproduced shape: finding *all* clique embeddings blows up quickly with the
clique size (regular structure + under-constrained window = the worst case of
§VII-D), whereas the *first* clique embedding is found quickly, with LNS the
fastest/most size-insensitive of the three — the paper's headline result for
this figure.
"""

from __future__ import annotations

import pytest

from repro.analysis import clique_experiment
from repro.analysis.metrics import group_summaries

SEED = 13


@pytest.mark.benchmark(group="fig13")
def test_fig13_clique_queries(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 13: all-matches and first-match times for clique queries."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig13", lambda: clique_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    all_rows = [row for row in rows if row["mode"] == "all"]
    first_rows = [row for row in rows if row["mode"] == "first"]
    figure_report("fig13a_all", group_summaries(all_rows, ("algorithm", "size"),
                                                "total_ms"),
                  "Fig. 13a — clique queries: mean time for all matches")
    figure_report("fig13b_first", group_summaries(first_rows, ("algorithm", "size"),
                                                  "first_ms"),
                  "Fig. 13b — clique queries: time to the first match")

    # The 10-100ms band is well populated, so small cliques must be found.
    small = [row for row in first_rows if row["size"] <= 3]
    assert all(row["found"] >= 1 for row in small)

    # Shape: enumerating all embeddings of the largest clique costs far more
    # than finding its first embedding (the §VII-D blow-up).
    largest = max(row["size"] for row in rows)
    all_largest = [row["total_ms"] for row in all_rows
                   if row["size"] == largest and row["algorithm"] == "ECF"]
    first_largest = [row["total_ms"] for row in first_rows
                     if row["size"] == largest and row["algorithm"] == "ECF"]
    assert all_largest and first_largest
    assert max(all_largest) >= max(first_largest)
