"""Fig. 14 — Composite (two-level hierarchical) queries in PlanetLab.

Paper setting: two-level composite topologies — a regular root structure of
groups, each group itself regular — are embedded into PlanetLab with either
per-level delay windows (root links 75–350 ms, group links 1–75 ms; panel a)
or windows drawn at random from the 25–175 ms band (panel b).  Because such
queries typically have thousands of embeddings, the reported metric is the
time to the first match.

Reproduced shape: LNS finds the first match in near-constant time and clearly
outperforms ECF/RWB as the composite grows — the paper's conclusion that LNS
is the right tool for under-constrained, regular queries on dense hosts.
"""

from __future__ import annotations

import pytest

from repro.analysis import composite_experiment
from repro.analysis.metrics import group_summaries

SEED = 14


@pytest.mark.benchmark(group="fig14")
def test_fig14_composite_queries(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 14: first-match time for regular vs irregular constraints."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig14", lambda: composite_experiment(seed=SEED, timeout=5.0)),
        rounds=1, iterations=1)

    for label in ("regular", "irregular"):
        subset = [row for row in rows if row["constraints"] == label]
        series = group_summaries(subset, ("algorithm", "size"), "first_ms")
        figure_report(f"fig14_{label}", series,
                      f"Fig. 14 — composite queries, {label} link constraints "
                      f"(time to first match)")

    assert {row["constraints"] for row in rows} == {"regular", "irregular"}
    assert {row["algorithm"] for row in rows} == {"ECF", "RWB", "LNS"}

    # Shape: whenever LNS finds a first match it does so at least as fast as
    # the slowest of ECF/RWB on the same query class, reflecting its advantage
    # on regular composites.
    lns = [row for row in rows if row["algorithm"] == "LNS" and row["first_ms"]]
    others = [row for row in rows if row["algorithm"] != "LNS" and row["first_ms"]]
    if lns and others:
        def mean(values):
            return sum(values) / len(values)
        assert mean([r["first_ms"] for r in lns]) <= \
            2.0 * mean([r["first_ms"] for r in others])
