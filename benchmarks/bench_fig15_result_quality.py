"""Fig. 15 — Probability distribution of the three result types.

Paper setting: across all experiment classes, each query's outcome is
classified as *complete* (all feasible embeddings returned before the
timeout), *partial* (timed out after finding some) or *inconclusive* (timed
out with nothing found); Fig. 15 plots the probability of each outcome per
query class and algorithm.

Reproduced shape: subgraph (well-constrained) queries are overwhelmingly
completed; regular/under-constrained classes (cliques, composites) shift mass
towards partial results, and LNS has the better chance of returning *some*
embedding on those classes — the trade-off §VII-E describes.  A deliberately
tight timeout is used so the partial/inconclusive outcomes actually occur at
benchmark scale.
"""

from __future__ import annotations

import pytest

from repro.analysis import result_quality_distribution, result_quality_experiment

SEED = 15


@pytest.mark.benchmark(group="fig15")
def test_fig15_result_type_distribution(benchmark, cached_experiment, figure_report):
    """Regenerates Fig. 15: complete/partial/inconclusive fractions per class."""
    rows = benchmark.pedantic(
        lambda: cached_experiment(
            "fig15", lambda: result_quality_experiment(seed=SEED, timeout=0.75)),
        rounds=1, iterations=1)

    distribution = result_quality_distribution(rows)
    figure_report("fig15_distribution", distribution,
                  "Fig. 15 — probability of complete / partial / inconclusive results",
                  pivot=False)

    classes = {row["query_class"] for row in distribution}
    assert classes == {"subgraph", "clique", "composite"}

    # Each (class, algorithm) row is a probability distribution.
    for row in distribution:
        total = sum(row.get(status, 0.0)
                    for status in ("complete", "partial", "inconclusive"))
        assert total == pytest.approx(1.0)

    # Shape: the probability of returning at least one embedding (complete or
    # partial) stays high for the well-constrained subgraph class.
    subgraph_rows = [row for row in distribution if row["query_class"] == "subgraph"]
    for row in subgraph_rows:
        success = row.get("complete", 0.0) + row.get("partial", 0.0)
        assert success >= 0.5, row
