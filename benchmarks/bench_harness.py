#!/usr/bin/env python
"""The trace-driven scenario harness, gated on its honesty invariants.

This benchmark runs a slice of the named scenario matrix
(:data:`repro.harness.SCENARIOS`) through the shared open-loop driver and
records the properties that make the harness's numbers trustworthy —
properties a CI gate can pin exactly, because none of them are wall-clock
measurements:

* ``trace.byte_identical`` — lowering the same scenario + seed to a trace
  twice produces **byte-identical** JSONL artifacts (the trace is the
  experiment; it must be reproducible to the byte);
* ``replay.outcomes_match`` — replaying one recorded trace twice yields
  the identical per-request outcome classification (index, kind,
  shed-reason/status, mapping count);
* ``honesty.empty_sample_is_null`` — the ``allshed`` scenario (every
  request scheduled dead on arrival) serves nothing and reports its
  latency percentiles as ``null``, **not** as a perfect 0.0.  This is the
  regression test for the zero-sample percentile lie;
* per-scenario ``accounting.consistent`` and zero protocol errors /
  request errors for the live scenarios.

The steady scenario's latency percentiles are also reported; the gate
checks them as *samples* (they must exist and be numeric) rather than as
ratios, since wall-clock values do not transfer between machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_harness.py \
        [--scale smoke|full] [--seed N] [--output PATH] [--csv-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import environment_info, write_bench_json
from repro.harness import (
    SCENARIOS,
    build_trace,
    classify_outcomes,
    run_scenario,
    scenario_summary,
    write_scenario_artifacts,
)
from repro.workloads import write_trace

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_harness.json"

SCHEMA_VERSION = 1

#: Scenario slices per --scale.  The replay-parity check always runs on
#: ``steady`` (it serves everything, so its classification is deterministic).
SCALES: Dict[str, Sequence[str]] = {
    "smoke": ("steady", "overload", "allshed"),
    "full": ("steady", "overload", "burst", "diurnal", "churn", "allshed"),
}


def check_trace_determinism(seed: int) -> Dict:
    """Lower steady twice at the same seed; the JSONL bytes must match."""
    config = SCENARIOS["steady"]
    with tempfile.TemporaryDirectory() as tmp:
        first, second = Path(tmp) / "a.jsonl", Path(tmp) / "b.jsonl"
        write_trace(build_trace(config, seed), first)
        write_trace(build_trace(config, seed), second)
        blob_a, blob_b = first.read_bytes(), second.read_bytes()
    return {
        "scenario": config.name,
        "byte_identical": blob_a == blob_b,
        "bytes": len(blob_a),
    }


def check_replay_parity(seed: int) -> Dict:
    """Record one steady trace, replay it twice, compare classifications."""
    config = SCENARIOS["steady"]
    trace = build_trace(config, seed)
    first = run_scenario(config, seed=seed, trace=trace)
    second = run_scenario(config, seed=seed, trace=trace)
    labels_a = classify_outcomes(first.outcomes)
    labels_b = classify_outcomes(second.outcomes)
    mismatches = sum(1 for a, b in zip(labels_a, labels_b) if a != b)
    return {
        "scenario": config.name,
        "compared": len(labels_a),
        "mismatches": mismatches,
        "outcomes_match": (len(labels_a) == len(labels_b)
                           and mismatches == 0
                           and len(labels_a) > 0),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="scenario slice to run (default: smoke)")
    parser.add_argument("--seed", type=int, default=9,
                        help="scene + trace RNG seed (default: 9)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_harness.json "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--csv-dir", type=Path, default=None,
                        help="also write per-scenario requests.csv/"
                             "summary.json artifacts under this directory")
    args = parser.parse_args(argv)

    names = SCALES[args.scale]
    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    print(f"harness: scale={args.scale} seed={args.seed} "
          f"scenarios: {', '.join(names)}")

    summaries: Dict[str, Dict] = {}
    for name in names:
        run = run_scenario(SCENARIOS[name], seed=args.seed)
        summaries[name] = scenario_summary(run)
        if args.csv_dir is not None:
            write_scenario_artifacts(run, args.csv_dir)
        outcomes = summaries[name]["outcomes"]
        latency = summaries[name]["latency"]
        p50 = latency["p50_seconds"]
        print(f"  {name}: {outcomes['offered']} offered -> "
              f"{outcomes['served']} served / {outcomes['shed']} shed / "
              f"{outcomes['errors']} error(s), p50 "
              + ("null" if p50 is None else f"{p50 * 1000:.1f}ms"))

    trace_check = check_trace_determinism(args.seed)
    replay_check = check_replay_parity(args.seed)
    allshed = summaries.get("allshed", {})
    allshed_latency = allshed.get("latency", {})
    honesty = {
        "allshed_served": allshed_latency.get("served"),
        # The headline bugfix: an empty sample must report null percentiles,
        # never a fabricated 0.0.
        "empty_sample_is_null": (allshed_latency.get("served") == 0
                                 and allshed_latency.get("p50_seconds") is None
                                 and allshed_latency.get("p99_seconds") is None
                                 and allshed_latency.get("max_seconds") is None),
    }

    print(f"trace determinism: byte_identical={trace_check['byte_identical']} "
          f"({trace_check['bytes']} bytes)")
    print(f"replay parity: {replay_check['compared']} outcomes, "
          f"{replay_check['mismatches']} mismatches")
    print(f"honesty: allshed served {honesty['allshed_served']}, "
          f"empty sample reported as null: {honesty['empty_sample_is_null']}")

    failed = not (trace_check["byte_identical"]
                  and replay_check["outcomes_match"]
                  and honesty["empty_sample_is_null"])
    if failed:
        print("WARNING: harness honesty invariant violated", file=sys.stderr)

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "scale": args.scale,
            "seed": args.seed,
            "scenarios": list(names),
            "started": started,
        },
        "environment": environment_info(),
        "scenarios": summaries,
        "trace": trace_check,
        "replay": replay_check,
        "honesty": honesty,
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 1 if failed else 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Smoke scenario slice + honesty invariants for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_harness.json"),
                 "--csv-dir", str(tmp_path / "harness")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
