#!/usr/bin/env python
"""Compiled-kernel perf trajectory: word-array search loops vs. PR 2 bitset.

The kernel refactor moves the ECF/RWB explicit-stack search loops into
``repro.core.kernel`` — chunked drivers over numpy ``uint64`` word arrays,
compiled with numba where available and interpreted otherwise — selected by
``REPRO_KERNEL``.  This benchmark times the *search stage* of a full ECF
enumeration under the active kernel backend against the legacy loops
(``REPRO_KERNEL=legacy``, the PR 2 bitset engine), verifies the mapping
streams and every search counter are byte-identical, and runs a seeded RWB
stream-identity check on top.  The numbers land in ``BENCH_kernel.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py \
        [--scale smoke|small|planetlab] [--seed N] [--timeout SECONDS] \
        [--output PATH]

The parity flags in the report (``parity.streams_identical`` etc.) are
exact-gated by ``compare_bench.py`` — a kernel that is fast but wrong
fails CI, not just review.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import (
    PerfSample,
    build_report,
    speedup,
    write_bench_json,
)
from repro.api import Budget, SearchRequest
from repro.core import ECF, RWB, clear_hosting_compile
from repro.core import kernel
from repro.utils.rng import as_rng
from repro.workloads import SUITES, Workload, build_subgraph_suite, planetlab_host
from repro.workloads.suites import SuiteScale

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_kernel.json"

#: Same scales (and window-slack rationale) as bench_perf_core.py, so the
#: kernel numbers sit on the same workload axis as the PR 2 trajectory.
SCALES: Dict[str, Tuple[SuiteScale, float]] = {
    "smoke": (SuiteScale(hosting_nodes=24, query_sizes=(4, 6, 8),
                         queries_per_size=2), 0.25),
    "small": (SUITES["fig8"].benchmark, 0.25),
    "planetlab": (SuiteScale(hosting_nodes=296,
                             query_sizes=(8, 12, 16, 20, 24),
                             queries_per_size=2), 0.10),
}

#: RWB stream check: one seeded single-result run per workload.
RWB_SEED = 0xC0FFEE


@dataclass
class EngineRun:
    """One backend's results plus the observables for the parity check."""

    sample: PerfSample
    streams: List[List[Tuple]]
    counters: List[Tuple[int, int, int, int]]


def build_workload(scale_name: str, seed: int):
    scale, slack = SCALES[scale_name]
    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_subgraph_suite(hosting, scale, slack=slack, rng=rng)
    return hosting, workloads


def run_ecf(backend: str, hosting, workloads: Sequence[Workload],
            timeout: Optional[float]) -> EngineRun:
    """Full ECF enumeration of every workload under one kernel backend.

    The hosting compile is cleared per request (the PR 2 convention) so
    filter-build time stays comparable; the interesting column here is
    ``search_seconds``, which is all the kernel can change.
    """
    results, streams, counters = [], [], []
    with kernel.forced(backend):
        for workload in workloads:
            clear_hosting_compile(hosting)
            result = ECF().request(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                timeout=timeout))
            results.append(result)
            streams.append(
                [tuple(m.as_dict().items()) for m in result.mappings])
            counters.append((result.stats.nodes_expanded,
                             result.stats.candidates_considered,
                             result.stats.backtracks,
                             result.stats.constraint_evaluations))
    label = "ECF-legacy" if backend == "legacy" else f"ECF-kernel-{backend}"
    return EngineRun(sample=PerfSample.from_results(label, results),
                     streams=streams, counters=counters)


def run_rwb(backend: str, hosting, workloads: Sequence[Workload],
            timeout: Optional[float]) -> List[List[Tuple]]:
    """Seeded single-result RWB streams under one backend."""
    streams = []
    with kernel.forced(backend):
        for i, workload in enumerate(workloads):
            clear_hosting_compile(hosting)
            result = RWB().prepare(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                budget=Budget(timeout=timeout, max_results=1),
            )).execute(rng=RWB_SEED + i)
            streams.append(
                [tuple(m.as_dict().items()) for m in result.mappings])
    return streams


def format_sample(sample: PerfSample) -> str:
    return (f"{sample.engine:>18}: total {sample.total_seconds:8.3f}s "
            f"(search {sample.search_seconds:7.3f}s)  "
            f"{sample.mappings_found} mappings, "
            f"{sample.nodes_expanded} expansions, "
            f"{sample.nodes_per_second:12.0f} nodes/s")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="workload size (default: smoke)")
    parser.add_argument("--seed", type=int, default=8,
                        help="workload RNG seed (default: 8)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-query wall-clock budget in seconds")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_kernel.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    backend = kernel.active_backend()
    if backend == "legacy":
        print("REPRO_KERNEL=legacy would benchmark the baseline against "
              "itself; timing the python kernel instead", file=sys.stderr)
        backend = "python"

    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    hosting, workloads = build_workload(args.scale, args.seed)
    print(f"workload: scale={args.scale} seed={args.seed} "
          f"host={hosting.num_nodes} nodes / {hosting.num_edges} edges, "
          f"{len(workloads)} queries; kernel backend: {backend}")

    candidate = run_ecf(backend, hosting, workloads, args.timeout)
    print(format_sample(candidate.sample))
    baseline = run_ecf("legacy", hosting, workloads, args.timeout)
    print(format_sample(baseline.sample))

    streams_identical = baseline.streams == candidate.streams
    counters_identical = baseline.counters == candidate.counters
    if not streams_identical:
        raise AssertionError("kernel mapping streams diverged from legacy")
    if not counters_identical:
        raise AssertionError("kernel search counters diverged from legacy")
    print("parity: ECF mapping streams and counters identical")

    rwb_legacy = run_rwb("legacy", hosting, workloads, args.timeout)
    rwb_kernel = run_rwb(backend, hosting, workloads, args.timeout)
    rwb_identical = rwb_legacy == rwb_kernel
    if not rwb_identical:
        raise AssertionError("seeded RWB streams diverged from legacy")
    print("parity: seeded RWB streams identical")

    comparison = speedup(baseline.sample, candidate.sample)
    print(f"speedup: search {comparison['speedup_search']:.2f}x "
          f"(total {comparison['speedup_total']:.2f}x)")

    report = build_report(
        [baseline.sample, candidate.sample],
        workload={
            "scale": args.scale,
            "slack": SCALES[args.scale][1],
            "seed": args.seed,
            "timeout_seconds": args.timeout,
            "hosting_nodes": hosting.num_nodes,
            "hosting_edges": hosting.num_edges,
            "queries": len(workloads),
            "query_sizes": sorted({w.num_nodes for w in workloads}),
            "started": started,
        },
        comparison=comparison,
    )
    report["kernel"] = kernel.describe() | {"benchmarked_backend": backend}
    report["parity"] = {
        "streams_identical": streams_identical,
        "counters_identical": counters_identical,
    }
    report["rwb"] = {
        "streams_identical": rwb_identical,
        "seed": RWB_SEED,
        "queries": len(rwb_kernel),
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_kernel.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
