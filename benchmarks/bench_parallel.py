#!/usr/bin/env python
"""Sharded parallel execution vs. serial: the BENCH_parallel.json trajectory.

The parallel engine (:mod:`repro.core.parallel`) shards a compiled
:class:`~repro.core.plan.EmbeddingPlan` by splitting the first query node's
candidate set and merges the per-shard streams deterministically.  This
benchmark drives the full-ECF-enumeration workload of
``bench_perf_core.py`` through prepared plans — once serially, then once per
requested worker count — verifies the mapping streams are **byte-identical**
configuration by configuration, and records the wall-clock speedups as
``BENCH_parallel.json``.

Speedups are hardware-bound: the report carries ``cpu_count`` (and the CPUs
actually usable under the current affinity mask) so numbers taken on a
single-core container are not mistaken for an engine regression.  Expect
~linear scaling of the search stage up to the physical core count and a
small IPC tax (shard dispatch plus result pickling) beyond it.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--scale smoke|small|planetlab] [--seed N] [--timeout SECONDS] \
        [--workers 2,4] [--output PATH]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import PerfSample, build_report, speedup, write_bench_json
from repro.api import SearchRequest
from repro.core import DEFAULT_SHARD_FACTOR, ECF, make_pool
from repro.utils.rng import as_rng
from repro.workloads import Workload, build_subgraph_suite, planetlab_host
from repro.workloads.suites import SuiteScale

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_parallel.json"

#: Full-ECF-enumeration workloads (delay-window constraints, as in
#: bench_perf_core.py) tuned for the regime parallelism targets: the
#: planetlab scale widens the windows to ±18% so each query's *tree search*
#: runs millions of expansions while returning thousands — not hundreds of
#: thousands — of mappings.  bench_perf_core's ±10% windows deliberately pin
#: queries near their identity embedding to time the filter stage; here the
#: filters are compiled once per plan and the search is the subject.
SCALES: Dict[str, Tuple[SuiteScale, float]] = {
    "smoke": (SuiteScale(hosting_nodes=24, query_sizes=(4, 6, 8),
                         queries_per_size=2), 0.25),
    "small": (SuiteScale(hosting_nodes=48, query_sizes=(4, 8, 12),
                         queries_per_size=2), 0.25),
    "planetlab": (SuiteScale(hosting_nodes=296,
                             query_sizes=(10, 11, 12),
                             queries_per_size=2), 0.18),
}


def build_workload(scale_name: str, seed: int):
    scale, slack = SCALES[scale_name]
    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_subgraph_suite(hosting, scale, slack=slack, rng=rng)
    return hosting, workloads


def prepare_plans(hosting, workloads: Sequence[Workload],
                  timeout: Optional[float]):
    """Compile one plan per workload (untimed — the production pattern:
    amortised compiles are bench_plan_cache.py's subject, not this one's)."""
    return [ECF().prepare(SearchRequest.build(
        workload.query, hosting, constraint=workload.constraint,
        timeout=timeout)) for workload in workloads]


def run_config(plans, parallelism: Optional[int], pool) -> Tuple[PerfSample, List, float]:
    """Execute every plan under one configuration; returns sample + streams."""
    label = "ECF-serial" if parallelism is None else f"ECF-parallel-{parallelism}"
    results = []
    streams = []
    started = time.perf_counter()
    for plan in plans:
        if parallelism is None:
            result = plan.execute()
        else:
            result = plan.execute(parallelism=parallelism, pool=pool)
        results.append(result)
        streams.append([m.assignment for m in result.mappings])
    wall = time.perf_counter() - started
    return PerfSample.from_results(label, results), streams, wall


def check_parity(reference: List, candidate: List, label: str) -> None:
    """Byte-identity: repr-compare so mapping *insertion order* counts too
    (dict equality alone would let a key-order regression through while the
    report still claimed streams_byte_identical)."""
    for i, (ref, cand) in enumerate(zip(reference, candidate)):
        if repr(ref) != repr(cand):
            raise AssertionError(
                f"mapping stream diverged on workload #{i} under {label}: "
                f"serial found {len(ref)}, parallel found {len(cand)}")


def format_sample(sample: PerfSample, wall: float) -> str:
    return (f"{sample.engine:>16}: wall {wall:8.3f}s "
            f"(search {sample.search_seconds:7.3f}s)  "
            f"{sample.mappings_found} mappings, "
            f"{sample.timed_out_queries} timeouts")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="workload size (default: smoke)")
    parser.add_argument("--seed", type=int, default=8,
                        help="workload RNG seed (default: 8)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-query wall-clock budget in seconds")
    parser.add_argument("--workers", default="2,4",
                        help="comma-separated worker counts to benchmark "
                             "(default: 2,4)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_parallel.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    worker_counts = [int(part) for part in str(args.workers).split(",") if part]

    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    hosting, workloads = build_workload(args.scale, args.seed)
    print(f"workload: scale={args.scale} seed={args.seed} "
          f"host={hosting.num_nodes} nodes / {hosting.num_edges} edges, "
          f"{len(workloads)} queries "
          f"(sizes {sorted({w.num_nodes for w in workloads})})")
    usable_cpus = (len(os.sched_getaffinity(0))
                   if hasattr(os, "sched_getaffinity") else os.cpu_count())
    print(f"cpu_count={os.cpu_count()} usable={usable_cpus} "
          f"shard_factor={DEFAULT_SHARD_FACTOR}")

    plans = prepare_plans(hosting, workloads, args.timeout)

    serial_sample, serial_streams, serial_wall = run_config(plans, None, None)
    print(format_sample(serial_sample, serial_wall))

    samples = [serial_sample]
    parallel_records = []
    for workers in worker_counts:
        pool = make_pool(workers)
        try:
            # Warm the pool so worker start-up is not billed to the search.
            for _ in range(workers):
                pool.submit(os.getpid).result()
            sample, streams, wall = run_config(plans, workers, pool)
        finally:
            pool.shutdown()
        check_parity(serial_streams, streams, sample.engine)
        samples.append(sample)
        ratios = speedup(serial_sample, sample)
        wall_speedup = serial_wall / wall if wall > 0 else float("inf")
        parallel_records.append({
            "workers": workers,
            "wall_seconds": wall,
            "wall_speedup_vs_serial": wall_speedup,
            **ratios,
        })
        print(format_sample(sample, wall)
              + f"  wall speedup {wall_speedup:5.2f}x")

    report = build_report(
        samples,
        workload={
            "benchmark": "bench_parallel",
            "scale": args.scale,
            "seed": args.seed,
            "started": started,
            "hosting_nodes": hosting.num_nodes,
            "hosting_edges": hosting.num_edges,
            "queries": len(workloads),
            "query_sizes": sorted({w.num_nodes for w in workloads}),
            "timeout_seconds": args.timeout,
        })
    report["parallel"] = {
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus,
        "shard_factor": DEFAULT_SHARD_FACTOR,
        "serial_wall_seconds": serial_wall,
        "runs": parallel_records,
        "streams_byte_identical": True,
        "note": ("wall-clock speedup is bounded by usable_cpus; on a "
                 "single-core host the parallel runs measure the engine's "
                 "dispatch/merge overhead, not its scaling"),
    }
    path = write_bench_json(args.output, report)
    print(f"report written to {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke", "--workers", "2",
                 "--output", str(tmp_path / "BENCH_parallel.json")]) == 0


if __name__ == "__main__":
    sys.exit(main())
