#!/usr/bin/env python
"""Core-engine perf trajectory: bitset ECF vs. the set-semantics reference.

Unlike the ``bench_fig*.py`` figure reproductions (pytest-benchmark), this is
a plain script: it builds a PlanetLab-style subgraph-query workload, runs the
full ECF enumeration (filter build + exhaustive search) under both engines,
verifies the mapping streams are byte-identical, and writes the timings as
machine-readable ``BENCH_core.json`` via :mod:`repro.analysis.perf`.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        [--scale smoke|small|planetlab] [--seed N] [--timeout SECONDS] \
        [--output PATH] [--skip-reference]

Scales:

* ``smoke`` — seconds; the CI perf-smoke job runs this on every push.
* ``small`` — the fig-8 benchmark scale (48-site host).
* ``planetlab`` — a PlanetLab-scale host (296 sites, all-pairs mesh); this is
  the workload behind the speedup numbers recorded in the PR descriptions.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import (
    PerfSample,
    build_report,
    speedup,
    write_bench_json,
)
from repro.api import SearchRequest
from repro.core import ECF, clear_hosting_compile
from repro.core.reference import ReferenceECF
from repro.utils.rng import as_rng
from repro.workloads import SUITES, Workload, build_subgraph_suite, planetlab_host
from repro.workloads.suites import SuiteScale

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_core.json"

#: Workload per --scale: suite sizes plus the delay-window slack.  The
#: planetlab scale tightens the windows to ±10% — at the fig-8 default of
#: ±25% a size-8 query on the 296-site all-pairs mesh has ~10^7 embeddings
#: and the *full* enumeration cannot terminate; at ±10% the filters pin each
#: query near its identity embedding while still forcing a few thousand
#: search-tree expansions per query.
SCALES: Dict[str, Tuple[SuiteScale, float]] = {
    "smoke": (SuiteScale(hosting_nodes=24, query_sizes=(4, 6, 8),
                         queries_per_size=2), 0.25),
    "small": (SUITES["fig8"].benchmark, 0.25),
    "planetlab": (SuiteScale(hosting_nodes=296,
                             query_sizes=(8, 12, 16, 20, 24),
                             queries_per_size=2), 0.10),
}


@dataclass
class EngineRun:
    """One engine's results plus the mapping streams for the parity check."""

    sample: PerfSample
    streams: List[List[dict]]


def build_workload(scale_name: str, seed: int):
    """The hosting network and query suite for a named scale."""
    scale, slack = SCALES[scale_name]
    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_subgraph_suite(hosting, scale, slack=slack, rng=rng)
    return hosting, workloads


def run_engine(name: str, factory, hosting, workloads: Sequence[Workload],
               timeout: Optional[float]) -> EngineRun:
    """Run *factory*'s algorithm over every workload, full enumeration.

    The hosting-compile memo is cleared before every request so the bitset
    engine is timed at its historical per-call cost and the trajectory
    stays comparable with the PR 2 baseline numbers; cross-request
    amortisation is measured by ``bench_plan_cache.py`` instead.
    """
    results = []
    streams: List[List[dict]] = []
    for workload in workloads:
        clear_hosting_compile(hosting)
        algorithm = factory()
        result = algorithm.request(SearchRequest.build(
            workload.query, hosting, constraint=workload.constraint,
            timeout=timeout))
        results.append(result)
        streams.append([m.assignment for m in result.mappings])
    return EngineRun(sample=PerfSample.from_results(name, results),
                     streams=streams)


def check_parity(reference: EngineRun, candidate: EngineRun) -> None:
    """The two engines must produce identical mapping streams, in order."""
    for i, (ref, cand) in enumerate(zip(reference.streams, candidate.streams)):
        if ref != cand:
            raise AssertionError(
                f"mapping stream diverged on workload #{i}: "
                f"reference found {len(ref)}, bitset found {len(cand)}")


def format_sample(sample: PerfSample) -> str:
    return (f"{sample.engine:>14}: total {sample.total_seconds:8.3f}s "
            f"(filters {sample.filter_build_seconds:7.3f}s, "
            f"search {sample.search_seconds:7.3f}s)  "
            f"{sample.mappings_found} mappings, "
            f"{sample.nodes_per_second:12.0f} nodes/s, "
            f"{sample.filter_entries} filter entries")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="workload size (default: smoke)")
    parser.add_argument("--seed", type=int, default=8,
                        help="workload RNG seed (default: 8)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-query wall-clock budget in seconds")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_core.json "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--skip-reference", action="store_true",
                        help="time only the bitset engine (no baseline, "
                             "no speedup section)")
    args = parser.parse_args(argv)

    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    hosting, workloads = build_workload(args.scale, args.seed)
    print(f"workload: scale={args.scale} seed={args.seed} "
          f"host={hosting.num_nodes} nodes / {hosting.num_edges} edges, "
          f"{len(workloads)} queries "
          f"(sizes {sorted({w.num_nodes for w in workloads})})")

    samples: List[PerfSample] = []
    comparison = None

    candidate = run_engine("ECF", ECF, hosting, workloads, args.timeout)
    print(format_sample(candidate.sample))

    if not args.skip_reference:
        reference = run_engine("ECF-reference", ReferenceECF, hosting,
                               workloads, args.timeout)
        print(format_sample(reference.sample))
        check_parity(reference, candidate)
        print("parity: mapping streams identical across all queries")
        comparison = speedup(reference.sample, candidate.sample)
        print(f"speedup: total {comparison['speedup_total']:.2f}x "
              f"(filters {comparison['speedup_filter_build']:.2f}x, "
              f"search {comparison['speedup_search']:.2f}x)")
        samples.append(reference.sample)

    samples.append(candidate.sample)

    report = build_report(
        samples,
        workload={
            "scale": args.scale,
            "slack": SCALES[args.scale][1],
            "seed": args.seed,
            "timeout_seconds": args.timeout,
            "hosting_nodes": hosting.num_nodes,
            "hosting_edges": hosting.num_edges,
            "queries": len(workloads),
            "query_sizes": sorted({w.num_nodes for w in workloads}),
            "started": started,
        },
        comparison=comparison,
    )
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_core.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
