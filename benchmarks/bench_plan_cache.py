#!/usr/bin/env python
"""Plan-cache trajectory: warm-cache repeated traffic vs. per-call rebuild.

The NETEMBED service answers a *stream* of embedding queries against a
slowly-drifting model, and after the bitset engine (PR 2) filter
construction still dominates each call.  This benchmark models that traffic:
a fixed set of distinct queries arrives repeatedly (round-robin) against an
unchanged PlanetLab-style model, and the same arrivals are answered twice —

* **per-call-rebuild** — ``ECF().request(...)`` per arrival, the one-shot
  API: every arrival pays the per-query filter stage again (the memoised
  hosting compile is shared, as it is for any caller of the shipped
  engine, which makes this baseline conservative);
* **plan-cache** — :meth:`NetEmbedService.submit` per arrival: the first
  arrival of each query compiles an :class:`~repro.core.plan.EmbeddingPlan`,
  every later arrival hits the version-aware cache and only runs the search.

The mapping streams must be byte-identical arrival by arrival.  The run then
applies a monitor tick and re-submits every query, verifying the cached
plans are *provably invalidated*: the cache reports misses, and the fresh
results equal a from-scratch search on the mutated model.  Timings go to
``BENCH_plan.json`` via :mod:`repro.analysis.perf`.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py \
        [--scale smoke|small|planetlab] [--seed N] [--repeats N] \
        [--max-results N] [--timeout SECONDS] [--output PATH]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import PerfSample, build_report, speedup, write_bench_json
from repro.api import SearchRequest
from repro.core import ECF
from repro.service import NetEmbedService, QuerySpec
from repro.utils.rng import as_rng
from repro.workloads import Workload, build_subgraph_suite, planetlab_host
from repro.workloads.suites import SuiteScale

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_plan.json"

#: Suite sizes per --scale.  The delay windows use the ±10% slack of
#: bench_perf_core's planetlab scale: service traffic asks for placements
#: under realistic (tight) QoS windows, so the filter stage dominates each
#: cold call — exactly the regime the plan cache amortises.
SCALES: Dict[str, Tuple[SuiteScale, float]] = {
    "smoke": (SuiteScale(hosting_nodes=24, query_sizes=(4, 6, 8),
                         queries_per_size=2), 0.10),
    "small": (SuiteScale(hosting_nodes=48, query_sizes=(4, 8, 12),
                         queries_per_size=2), 0.10),
    "planetlab": (SuiteScale(hosting_nodes=296,
                             query_sizes=(8, 12, 16, 20),
                             queries_per_size=2), 0.10),
}


def build_traffic(scale_name: str, seed: int):
    """The hosting network and the distinct queries of the repeated traffic."""
    scale, slack = SCALES[scale_name]
    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_subgraph_suite(hosting, scale, slack=slack, rng=rng)
    return hosting, workloads


def run_per_call(hosting, workloads: Sequence[Workload], repeats: int,
                 timeout: float, max_results: Optional[int]):
    """Answer every arrival with a fresh one-shot request()."""
    results, streams = [], []
    for _ in range(repeats):
        for workload in workloads:
            result = ECF().request(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                timeout=timeout, max_results=max_results))
            results.append(result)
            streams.append([m.assignment for m in result.mappings])
    return results, streams


def run_plan_cache(service: NetEmbedService, workloads: Sequence[Workload],
                   repeats: int, timeout: float, max_results: Optional[int]):
    """Answer every arrival through the service's plan cache."""
    results, streams = [], []
    for _ in range(repeats):
        for workload in workloads:
            response = service.submit(QuerySpec(
                query=workload.query, constraint=workload.constraint,
                algorithm="ECF", timeout=timeout, max_results=max_results))
            results.append(response.result)
            streams.append([m.assignment for m in response.mappings])
    return results, streams


def check_invalidation(service: NetEmbedService, hosting,
                       workloads: Sequence[Workload], timeout: float,
                       max_results: Optional[int], seed: int) -> Dict:
    """Monitor tick -> every cached plan must miss and re-compile fresh."""
    monitor = service.attach_monitor(rng=seed)
    version = monitor.tick()
    before = service.plans.stats()
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", timeout=timeout, max_results=max_results))
        fresh = ECF().request(SearchRequest.build(
            workload.query, hosting, constraint=workload.constraint,
            timeout=timeout, max_results=max_results))
        if ([m.assignment for m in response.mappings]
                != [m.assignment for m in fresh.mappings]):
            raise AssertionError(
                f"post-tick result for {workload.query.name!r} diverged from "
                f"a fresh search on the mutated model")
    after = service.plans.stats()
    new_misses = after["misses"] - before["misses"]
    new_hits = after["hits"] - before["hits"]
    if new_hits or new_misses != len(workloads):
        raise AssertionError(
            f"expected {len(workloads)} cache misses and 0 hits after the "
            f"monitor tick, saw {new_misses} misses / {new_hits} hits")
    return {"model_version": version, "queries": len(workloads),
            "misses": new_misses, "hits": new_hits,
            "fresh_results_match": True}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="workload size (default: smoke)")
    parser.add_argument("--seed", type=int, default=8,
                        help="workload RNG seed (default: 8)")
    parser.add_argument("--repeats", type=int, default=20,
                        help="arrivals per distinct query (default: 20)")
    parser.add_argument("--max-results", type=int, default=10,
                        help="per-arrival result cap; the service pattern is "
                             "'give me a few placements', not full "
                             "enumeration (default: 10)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-arrival budget in seconds (default: 120)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_plan.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    if args.repeats < 2:
        parser.error("--repeats must be >= 2 (amortisation needs repetition)")

    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    hosting, workloads = build_traffic(args.scale, args.seed)
    arrivals = args.repeats * len(workloads)
    print(f"traffic: scale={args.scale} seed={args.seed} "
          f"host={hosting.num_nodes} nodes / {hosting.num_edges} edges, "
          f"{len(workloads)} distinct queries x {args.repeats} arrivals "
          f"= {arrivals} requests")

    cold_started = time.perf_counter()
    cold_results, cold_streams = run_per_call(
        hosting, workloads, args.repeats, args.timeout, args.max_results)
    cold_wall = time.perf_counter() - cold_started

    service = NetEmbedService(default_timeout=args.timeout)
    service.register_network(hosting)
    warm_started = time.perf_counter()
    warm_results, warm_streams = run_plan_cache(
        service, workloads, args.repeats, args.timeout, args.max_results)
    warm_wall = time.perf_counter() - warm_started

    if cold_streams != warm_streams:
        for index, (cold, warm) in enumerate(zip(cold_streams, warm_streams)):
            if cold != warm:
                raise AssertionError(
                    f"mapping stream diverged on arrival #{index}: "
                    f"per-call found {len(cold)}, plan-cache found {len(warm)}")
    print("parity: mapping streams identical across all arrivals")

    cache_stats = service.plans.stats()
    expected_hits = arrivals - len(workloads)
    if cache_stats["hits"] != expected_hits:
        raise AssertionError(
            f"expected {expected_hits} warm hits, cache saw "
            f"{cache_stats['hits']} ({cache_stats})")

    cold_sample = PerfSample.from_results("per-call-rebuild", cold_results)
    warm_sample = PerfSample.from_results("plan-cache", warm_results)
    comparison = speedup(cold_sample, warm_sample)
    amortized = cold_wall / warm_wall if warm_wall > 0 else float("inf")
    comparison["speedup_amortized_wall"] = amortized

    print(f"per-call-rebuild: {cold_wall:8.3f}s wall "
          f"({cold_sample.filter_build_seconds:.3f}s in filter builds)")
    print(f"plan-cache:       {warm_wall:8.3f}s wall "
          f"({warm_sample.filter_build_seconds:.3f}s in filter builds, "
          f"{cache_stats['hits']} hits / {cache_stats['misses']} misses)")
    print(f"amortized speedup: {amortized:.1f}x over {arrivals} arrivals")
    if amortized < 5.0:
        print("WARNING: amortized speedup below the 5x target", file=sys.stderr)

    invalidation = check_invalidation(service, hosting, workloads,
                                      args.timeout, args.max_results, args.seed)
    print(f"invalidation: monitor tick -> model v{invalidation['model_version']}, "
          f"{invalidation['misses']} misses / {invalidation['hits']} hits, "
          f"fresh results match a from-scratch search")

    report = build_report(
        [cold_sample, warm_sample],
        workload={
            "scale": args.scale,
            "slack": SCALES[args.scale][1],
            "seed": args.seed,
            "repeats": args.repeats,
            "arrivals": arrivals,
            "max_results": args.max_results,
            "timeout_seconds": args.timeout,
            "hosting_nodes": hosting.num_nodes,
            "hosting_edges": hosting.num_edges,
            "distinct_queries": len(workloads),
            "query_sizes": sorted({w.num_nodes for w in workloads}),
            "started": started,
        },
        comparison=comparison,
    )
    report["wall_seconds"] = {"per_call_rebuild": cold_wall,
                              "plan_cache": warm_wall}
    report["plan_cache"] = cache_stats
    report["invalidation"] = invalidation
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_plan.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
