#!/usr/bin/env python
"""Scale-out embedding over a partitioned hosting network (repro.cluster).

The cluster tier's claim is that a hosting network one monolithic engine
cannot comfortably hold can be sharded into partitions, searched with a
two-level (quotient-graph coarse + intra-partition fine) strategy, and kept
fresh by journal-delta replication — while every partition worker touches a
**bounded working set** (its replica slice plus compiled plans), never the
full network.  This benchmark builds a federated PlanetLab-style topology
(the ``full`` scale is ~9.6k sites: 32x the 296-node PlanetLab trace of the
paper's Fig. 8/9 experiments), embeds a batch of zone-local queries through
:class:`~repro.cluster.ClusterCoordinator`, and reports

* phase timings — topology build, partition/replica construction, embed;
* ``embed.found`` / ``embed.valid`` — every query answered and every
  returned mapping revalidated against the *primary* network (exact-gated);
* ``parity.results_match`` — the differential oracle: feasibility verdicts
  agree with a monolithic ECF run over the unpartitioned network on every
  instance the oracle finishes within its budget (exact-gated);
* ``pruning.speedup_vs_scan`` — total cluster embed time vs the monolithic
  full-network scan (ratio-gated, wide tolerance: wall-clock);
* ``partitions.bounded`` — the largest replica stays a strict fraction of
  the network (exact-gated), the working-set guarantee in one number;
* ``replication.identical`` — after attribute churn, journal-delta refresh
  lands every replica in exactly the state a wholesale rebuild would
  produce, element for element (exact-gated).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaleout.py \
        [--scale smoke|full] [--seed N] [--output PATH]
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import environment_info, write_bench_json
from repro.api.request import SearchRequest
from repro.cluster import ClusterCoordinator
from repro.core.ecf import ECF
from repro.core.mapping import validate_mapping
from repro.workloads import federated_planetlab, subgraph_query

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_scaleout.json"

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ScaleoutScale:
    """Federation size and query batch per --scale."""

    num_zones: int
    sites_per_zone: int
    num_queries: int
    query_size: int
    slack: float
    embed_timeout: float     # per-query budget for the cluster arm
    oracle_timeout: float    # per-query budget for the monolithic oracle
    churn_edges: int         # attribute updates between the two refreshes


SCALES: Dict[str, ScaleoutScale] = {
    "smoke": ScaleoutScale(num_zones=4, sites_per_zone=30, num_queries=6,
                           query_size=5, slack=0.30, embed_timeout=20.0,
                           oracle_timeout=20.0, churn_edges=12),
    # >= 9k sites: ~32x the 296-node PlanetLab trace the paper measures on.
    "full": ScaleoutScale(num_zones=64, sites_per_zone=150, num_queries=12,
                          query_size=8, slack=0.30, embed_timeout=60.0,
                          oracle_timeout=120.0, churn_edges=64),
}


def sample_workloads(hosting, coordinator, scale: ScaleoutScale, seed: int):
    """Deterministic zone-local query batch.

    Queries are sampled from zone *interiors* (feasible by construction
    inside one partition), cycling through zones so the batch exercises
    many shards.
    """
    names = sorted(coordinator.partition_map.names)
    workloads = []
    for i in range(scale.num_queries):
        zone = names[i % len(names)]
        interior = hosting.subnetwork(coordinator.partition_map.nodes_of(zone))
        workloads.append(subgraph_query(interior, scale.query_size,
                                        slack=scale.slack,
                                        rng=random.Random(seed * 1000 + i)))
    return workloads


def run_cluster_arm(coordinator, workloads, scale: ScaleoutScale,
                    hosting) -> Dict:
    """Embed the batch through the two-level search; revalidate vs primary."""
    found = 0
    valid = True
    verdicts: List[str] = []
    pruned = 0
    searched = 0
    cross = 0
    started = time.perf_counter()
    for i, workload in enumerate(workloads):
        result = coordinator.embed(workload.query,
                                   constraint=workload.constraint,
                                   timeout=scale.embed_timeout, seed=i)
        verdicts.append(result.verdict)
        pruned += result.partitions_pruned
        searched += result.partitions_searched
        if result.used_cross_partition:
            cross += 1
        if result.found:
            found += 1
            if validate_mapping(result.first, workload.query, hosting,
                                workload.constraint):
                valid = False
    elapsed = time.perf_counter() - started
    return {"found": found, "queries": len(workloads), "valid": valid,
            "verdicts": verdicts, "partitions_pruned": pruned,
            "partitions_searched": searched, "cross_partition": cross,
            "seconds": elapsed}


def run_oracle_arm(hosting, workloads, scale: ScaleoutScale) -> Dict:
    """Monolithic ECF over the unpartitioned network (the full scan)."""
    engine = ECF()
    found: List[Optional[bool]] = []
    timeouts = 0
    started = time.perf_counter()
    for workload in workloads:
        result = engine.request(SearchRequest.build(
            workload.query, hosting, constraint=workload.constraint,
            timeout=scale.oracle_timeout, max_results=1))
        if result.timed_out and not result.found:
            found.append(None)        # budget exhausted: no verdict
            timeouts += 1
        else:
            found.append(result.found)
    elapsed = time.perf_counter() - started
    return {"found": found, "timeouts": timeouts, "seconds": elapsed}


def differential_parity(cluster: Dict, oracle: Dict) -> Dict:
    """Feasibility agreement between the two arms, per query.

    A cluster ``"unknown"`` is honest incompleteness, not a disagreement;
    the gate-worthy failure modes are a cluster *feasible* the oracle
    refutes and a cluster *infeasible* the oracle satisfies.
    """
    compared = 0
    mismatches = 0
    for verdict, mono_found in zip(cluster["verdicts"], oracle["found"]):
        if mono_found is None:
            continue                  # oracle timed out: nothing to compare
        compared += 1
        if verdict == "feasible" and not mono_found:
            mismatches += 1
        elif verdict == "infeasible" and mono_found:
            mismatches += 1
    return {
        "compared": compared,
        "mismatches": mismatches,
        "oracle_timeouts": oracle["timeouts"],
        "results_match": mismatches == 0 and compared > 0,
    }


def run_replication_check(hosting, coordinator,
                          scale: ScaleoutScale, seed: int) -> Dict:
    """Churn attributes, refresh by delta, diff every replica vs a rebuild."""
    rand = random.Random(seed + 77)
    edges = hosting.edges()
    touched = 0
    for _ in range(scale.churn_edges):
        u, v = edges[rand.randrange(len(edges))]
        hosting.update_edge(u, v, avgDelay=rand.uniform(5.0, 250.0))
        touched += 1
    started = time.perf_counter()
    report = coordinator.refresh()
    refresh_seconds = time.perf_counter() - started
    identical = True
    pmap = coordinator.partition_map
    for name, worker in coordinator.workers.items():
        fresh = hosting.subnetwork(pmap.nodes_of(name))
        replica = worker.network
        if sorted(replica.nodes()) != sorted(fresh.nodes()):
            identical = False
            break
        for u, v in fresh.edges():
            if replica.edge_attrs(u, v) != fresh.edge_attrs(u, v):
                identical = False
                break
        if not identical:
            break
    stats = coordinator.stats()["replication"]
    return {"mode": report["mode"], "edges_churned": touched,
            "identical": identical, "refresh_seconds": refresh_seconds,
            "deltas_applied": stats["deltas_applied"],
            "subjects_applied": stats["subjects_applied"],
            "full_resyncs": stats["full_resyncs"]}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="federation size (default: smoke)")
    parser.add_argument("--seed", type=int, default=3,
                        help="scene RNG seed (default: 3)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_scaleout.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    started = time.strftime("%Y-%m-%dT%H:%M:%S")

    build_started = time.perf_counter()
    hosting = federated_planetlab(scale.num_zones, scale.sites_per_zone,
                                  rng=random.Random(args.seed))
    build_seconds = time.perf_counter() - build_started
    print(f"scaleout: scale={args.scale} seed={args.seed} — "
          f"{hosting.num_nodes} sites / {hosting.num_edges} links across "
          f"{scale.num_zones} zones (built in {build_seconds:.2f}s)")

    partition_started = time.perf_counter()
    coordinator = ClusterCoordinator(hosting, attribute="zone")
    partition_seconds = time.perf_counter() - partition_started
    cstats = coordinator.stats()
    print(f"partitioned into {cstats['partitions']} shards in "
          f"{partition_seconds:.2f}s; largest replica "
          f"{cstats['max_partition_nodes']} nodes "
          f"({cstats['max_partition_nodes'] / hosting.num_nodes:.1%} of the "
          f"network), boundary {cstats['boundary_nodes']} nodes, "
          f"quotient {cstats['quotient_edges']} edges")

    workloads = sample_workloads(hosting, coordinator, scale, args.seed)
    cluster = run_cluster_arm(coordinator, workloads, scale, hosting)
    print(f"cluster arm: {cluster['found']}/{cluster['queries']} embedded "
          f"(all valid: {cluster['valid']}) in {cluster['seconds']:.2f}s; "
          f"{cluster['partitions_pruned']} partitions pruned, "
          f"{cluster['partitions_searched']} searched, "
          f"{cluster['cross_partition']} cross-partition answers")

    oracle = run_oracle_arm(hosting, workloads, scale)
    parity = differential_parity(cluster, oracle)
    speedup = (oracle["seconds"] / cluster["seconds"]
               if cluster["seconds"] > 0 else float("inf"))
    print(f"oracle arm (monolithic ECF, full scan): {oracle['seconds']:.2f}s, "
          f"{oracle['timeouts']} timeout(s); parity {parity['compared']} "
          f"compared, {parity['mismatches']} mismatch(es); "
          f"speedup vs scan {speedup:.1f}x")

    replication = run_replication_check(hosting, coordinator, scale,
                                        args.seed)
    print(f"replication: {replication['edges_churned']} edges churned, "
          f"refresh mode {replication['mode']} in "
          f"{replication['refresh_seconds']:.3f}s, replicas identical to "
          f"rebuild: {replication['identical']}")

    bounded = cstats["max_partition_nodes"] < hosting.num_nodes
    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "scale": args.scale,
            "seed": args.seed,
            "num_zones": scale.num_zones,
            "sites_per_zone": scale.sites_per_zone,
            "hosting_nodes": hosting.num_nodes,
            "hosting_edges": hosting.num_edges,
            "num_queries": scale.num_queries,
            "query_size": scale.query_size,
            "slack": scale.slack,
            "started": started,
        },
        "environment": environment_info(),
        "phases": {
            "build_seconds": build_seconds,
            "partition_seconds": partition_seconds,
            "embed_seconds": cluster["seconds"],
            "oracle_seconds": oracle["seconds"],
        },
        "embed": {
            "found": cluster["found"],
            "queries": cluster["queries"],
            "valid": cluster["valid"],
            "verdicts": cluster["verdicts"],
            "cross_partition": cluster["cross_partition"],
        },
        "pruning": {
            "partitions_pruned": cluster["partitions_pruned"],
            "partitions_searched": cluster["partitions_searched"],
            "speedup_vs_scan": speedup,
        },
        "partitions": {
            "count": cstats["partitions"],
            "max_partition_nodes": cstats["max_partition_nodes"],
            "boundary_nodes": cstats["boundary_nodes"],
            "quotient_edges": cstats["quotient_edges"],
            "bounded": bounded,
        },
        "parity": parity,
        "replication": replication,
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_scaleout.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
