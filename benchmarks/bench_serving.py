#!/usr/bin/env python
"""The serving tier under open-loop Poisson load: latency, throughput, sheds.

The serving-tier contract (admission control over the plan-cache engine) is
judged the way a production front door is: requests arrive on a schedule
fixed in advance — a seeded Poisson process replayed against the wall
clock — regardless of whether the engine has kept up.  Closed-loop drivers
hide overload by slowing down with the server; an open-loop driver does
not, which is exactly the regime where an unbounded queue melts down and a
bounded one sheds.

Two tenants share the server: ``open`` (no rate limit — it sees the bounded
queue as-is) and ``capped`` (rate-limited, so tenant-level QoS sheds appear
even on machines fast enough never to fill the queue).  The benchmark
reports

* per-request **latency percentiles** (p50/p95/p99) and **throughput**
  (informational: wall-clock numbers do not transfer between machines);
* the **shed rate** and its breakdown by structured reason;
* three deterministic invariants the regression gate protects:

  - ``parity.results_match`` — every accepted response is byte-identical
    (stringified mappings) to a direct ``NetEmbedService.submit`` of the
    same spec, so the serving tier adds *no* result drift;
  - ``accounting.consistent`` — offered == admitted + shed == answered:
    every scheduled arrival got exactly one structured answer;
  - ``metrics.consistent`` — the ``metrics`` endpoint's admission counters
    agree with what the client observed.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--scale smoke|small|planetlab] [--seed N] [--output PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import environment_info, write_bench_json
from repro.server import (
    AdmissionConfig,
    AsyncNetEmbedClient,
    EmbeddingServer,
    ServerConfig,
    ServiceRegistry,
    TenantPolicy,
    mapping_payload,
)
from repro.service import NetEmbedService, QuerySpec
from repro.utils.rng import as_rng
from repro.workloads import poisson_arrivals, subgraph_query

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_serving.json"

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ServingScale:
    """Scene size and offered load per --scale."""

    hosting_nodes: int
    num_workloads: int
    query_size: int
    slack: float
    rate: float          # offered load, requests/second (both tenants)
    horizon: float       # trace length in seconds
    capped_rate: float   # admission rate limit for the ``capped`` tenant
    engine_workers: int
    queue_depth: int
    max_results: int
    deadline: float


SCALES: Dict[str, ServingScale] = {
    "smoke": ServingScale(hosting_nodes=24, num_workloads=3, query_size=5,
                          slack=0.30, rate=24.0, horizon=1.5, capped_rate=3.0,
                          engine_workers=1, queue_depth=16, max_results=4,
                          deadline=10.0),
    "small": ServingScale(hosting_nodes=48, num_workloads=4, query_size=6,
                          slack=0.30, rate=40.0, horizon=3.0, capped_rate=4.0,
                          engine_workers=2, queue_depth=32, max_results=4,
                          deadline=10.0),
    "planetlab": ServingScale(hosting_nodes=296, num_workloads=4, query_size=8,
                              slack=0.30, rate=60.0, horizon=5.0,
                              capped_rate=5.0, engine_workers=2,
                              queue_depth=64, max_results=4, deadline=20.0),
}


def build_scene(scale: ServingScale, seed: int):
    """One deterministic (hosting, workloads) scene — shared by both arms."""
    from repro.workloads import planetlab_host

    rng = as_rng(seed)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = [subgraph_query(hosting, scale.query_size, slack=scale.slack,
                                rng=rng)
                 for _ in range(scale.num_workloads)]
    return hosting, workloads


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


async def drive_open_loop(scale: ServingScale, seed: int) -> Dict:
    """Replay one Poisson trace against a live server; returns raw outcomes."""
    hosting, workloads = build_scene(scale, seed)
    config = ServerConfig(
        default_timeout=scale.deadline,
        engine_workers=scale.engine_workers,
        admission=AdmissionConfig(
            max_queue_depth=scale.queue_depth,
            tenants={"capped": TenantPolicy(rate=scale.capped_rate,
                                            burst=int(scale.capped_rate))},
        ),
    )
    registry = ServiceRegistry(config)
    registry.service.register_network(hosting, name="serving-bench")

    trace = list(poisson_arrivals(rate=scale.rate, horizon=scale.horizon,
                                  tenants=["open", "capped"], rng=seed + 1))

    async with EmbeddingServer(registry) as server:
        async with await AsyncNetEmbedClient.connect(
                server.host, server.port) as client:

            async def fire(arrival):
                await asyncio.sleep(arrival.offset)
                workload = workloads[arrival.index % len(workloads)]
                started = time.perf_counter()
                response = await client.embed(
                    workload.query, constraint=workload.constraint,
                    algorithm="ECF", max_results=scale.max_results,
                    tenant=arrival.tenant, deadline=scale.deadline)
                return (arrival.index % len(workloads), arrival.tenant,
                        time.perf_counter() - started, response)

            run_started = time.perf_counter()
            outcomes = await asyncio.gather(*(fire(a) for a in trace))
            wall_seconds = time.perf_counter() - run_started
            metrics = await client.metrics()

    return {"workloads": workloads, "hosting": hosting, "trace": trace,
            "outcomes": outcomes, "metrics": metrics,
            "wall_seconds": wall_seconds}


def run_parity_check(scale: ServingScale, seed: int, outcomes) -> Dict:
    """Accepted server responses must equal direct engine calls, byte for byte."""
    hosting, workloads = build_scene(scale, seed)
    service = NetEmbedService(default_timeout=scale.deadline)
    service.register_network(hosting, name="serving-bench")
    expected = []
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", max_results=scale.max_results))
        expected.append([mapping_payload(m) for m in response.mappings])

    compared = 0
    mismatches = 0
    for workload_index, _tenant, _latency, response in outcomes:
        if response["kind"] != "result":
            continue
        compared += 1
        if response["mappings"] != expected[workload_index]:
            mismatches += 1
    return {
        "workloads": len(workloads),
        "responses_compared": compared,
        "mismatches": mismatches,
        "results_match": mismatches == 0 and compared > 0,
    }


def summarise(scale: ServingScale, raw: Dict) -> Dict:
    """Fold raw outcomes into the report's latency/shed/accounting blocks."""
    outcomes = raw["outcomes"]
    metrics = raw["metrics"]
    served = [o for o in outcomes if o[3]["kind"] == "result"]
    shed = [o for o in outcomes if o[3]["kind"] == "shed"]
    errors = [o for o in outcomes if o[3]["kind"] == "error"]
    latencies = sorted(latency for _, _, latency, _ in served)
    reasons: Dict[str, int] = {}
    for _, _, _, response in shed:
        reasons[response["reason"]] = reasons.get(response["reason"], 0) + 1
    per_tenant: Dict[str, Dict[str, int]] = {}
    for _, tenant, _, response in outcomes:
        bucket = per_tenant.setdefault(tenant, {"served": 0, "shed": 0})
        bucket["served" if response["kind"] == "result" else "shed"] += 1

    admission = metrics["admission"]
    offered = len(outcomes)
    accounting_ok = (
        admission["offered"] == offered
        and admission["admitted"] + admission["shed_total"] == offered
        and admission["completed"] == len(served)
        and not errors)
    metrics_ok = (
        admission["shed_total"] == len(shed)
        and metrics["server"]["requests"].get("embed", 0) == offered
        and metrics["service"]["plan_cache"]["misses"] >= 1)

    return {
        "latency": {
            "served": len(served),
            "p50_seconds": percentile(latencies, 0.50),
            "p95_seconds": percentile(latencies, 0.95),
            "p99_seconds": percentile(latencies, 0.99),
            "max_seconds": latencies[-1] if latencies else 0.0,
        },
        "throughput": {
            "wall_seconds": raw["wall_seconds"],
            "served_per_second": (len(served) / raw["wall_seconds"]
                                  if raw["wall_seconds"] > 0 else 0.0),
            "offered_per_second": scale.rate,
        },
        "shedding": {
            "offered": offered,
            "served": len(served),
            "shed": len(shed),
            "errors": len(errors),
            "shed_rate": len(shed) / offered if offered else 0.0,
            "reasons": reasons,
            "per_tenant": per_tenant,
        },
        "accounting": {"consistent": accounting_ok},
        "metrics": {
            "consistent": metrics_ok,
            "plan_cache_hits": metrics["service"]["plan_cache"]["hits"],
            "plan_cache_misses": metrics["service"]["plan_cache"]["misses"],
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="scene size and offered load (default: smoke)")
    parser.add_argument("--seed", type=int, default=9,
                        help="scene + trace RNG seed (default: 9)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_serving.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    print(f"serving: scale={args.scale} seed={args.seed} "
          f"{scale.hosting_nodes} hosts, {scale.num_workloads} workloads of "
          f"{scale.query_size} nodes; open-loop Poisson {scale.rate}/s for "
          f"{scale.horizon}s onto {scale.engine_workers} worker(s), "
          f"queue depth {scale.queue_depth}")

    raw = asyncio.run(drive_open_loop(scale, args.seed))
    summary = summarise(scale, raw)
    parity = run_parity_check(scale, args.seed, raw["outcomes"])

    latency = summary["latency"]
    shedding = summary["shedding"]
    print(f"latency: {latency['served']} served, "
          f"p50 {latency['p50_seconds'] * 1000:.1f}ms, "
          f"p99 {latency['p99_seconds'] * 1000:.1f}ms; "
          f"throughput {summary['throughput']['served_per_second']:.1f}/s "
          f"against {scale.rate:.1f}/s offered")
    print(f"shedding: {shedding['shed']}/{shedding['offered']} "
          f"({shedding['shed_rate']:.0%}) — "
          + (", ".join(f"{reason} x{count}"
                       for reason, count in sorted(shedding["reasons"].items()))
             or "none"))
    print(f"parity: {parity['responses_compared']} accepted responses vs "
          f"direct engine calls, {parity['mismatches']} mismatches")
    print(f"accounting consistent: {summary['accounting']['consistent']}; "
          f"metrics consistent: {summary['metrics']['consistent']}")
    if not parity["results_match"]:
        print("WARNING: serving tier drifted from direct engine results",
              file=sys.stderr)

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "scale": args.scale,
            "seed": args.seed,
            "hosting_nodes": scale.hosting_nodes,
            "num_workloads": scale.num_workloads,
            "query_size": scale.query_size,
            "slack": scale.slack,
            "rate": scale.rate,
            "horizon": scale.horizon,
            "capped_rate": scale.capped_rate,
            "engine_workers": scale.engine_workers,
            "queue_depth": scale.queue_depth,
            "max_results": scale.max_results,
            "deadline": scale.deadline,
            "started": started,
        },
        "environment": environment_info(),
        **summary,
        "parity": parity,
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_serving.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
