#!/usr/bin/env python
"""The serving tier under open-loop Poisson load: latency, throughput, sheds.

The serving-tier contract (admission control over the plan-cache engine) is
judged the way a production front door is: requests arrive on a schedule
fixed in advance — a seeded Poisson process replayed against the wall
clock — regardless of whether the engine has kept up.  Closed-loop drivers
hide overload by slowing down with the server; an open-loop driver does
not, which is exactly the regime where an unbounded queue melts down and a
bounded one sheds.

The replay rides on the shared harness driver (:mod:`repro.harness`), so
the measurement rules match every other scenario run:

* latency is measured from each request's **scheduled** offset, not from
  the moment the driver got around to sending it (coordinated-omission
  fix), and the driver's own lag is reported first-class as
  ``schedule_slip``;
* percentiles come from :mod:`repro.analysis.stats` and are ``null`` on an
  empty sample — a run that served nothing reports *no* latency, never a
  flattering 0.0.

Two tenants share the server: ``open`` (no rate limit — it sees the bounded
queue as-is) and ``capped`` (rate-limited, so tenant-level QoS sheds appear
even on machines fast enough never to fill the queue).  The benchmark
reports the latency/slip blocks, the shed rate and its breakdown by
structured reason, and three deterministic invariants the regression gate
protects:

* ``parity.results_match`` — every accepted response is byte-identical
  (stringified mappings) to a direct ``NetEmbedService.submit`` of the
  same spec, so the serving tier adds *no* result drift;
* ``accounting.consistent`` — offered == admitted + shed == answered:
  every scheduled arrival got exactly one structured answer;
* ``metrics.consistent`` — the ``metrics`` endpoint's admission counters
  agree with what the client observed.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--scale smoke|small|planetlab] [--seed N] [--output PATH]
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import environment_info, write_bench_json
from repro.analysis.stats import latency_block, slip_block
from repro.harness import ScenarioConfig, ScenarioRun, run_scenario
from repro.server import mapping_payload
from repro.service import NetEmbedService, QuerySpec

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_serving.json"

SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ServingScale:
    """Scene size and offered load per --scale."""

    hosting_nodes: int
    num_workloads: int
    query_size: int
    slack: float
    rate: float          # offered load, requests/second (both tenants)
    horizon: float       # trace length in seconds
    capped_rate: float   # admission rate limit for the ``capped`` tenant
    engine_workers: int
    queue_depth: int
    max_results: int
    deadline: float


SCALES: Dict[str, ServingScale] = {
    "smoke": ServingScale(hosting_nodes=24, num_workloads=3, query_size=5,
                          slack=0.30, rate=24.0, horizon=1.5, capped_rate=3.0,
                          engine_workers=1, queue_depth=16, max_results=4,
                          deadline=10.0),
    "small": ServingScale(hosting_nodes=48, num_workloads=4, query_size=6,
                          slack=0.30, rate=40.0, horizon=3.0, capped_rate=4.0,
                          engine_workers=2, queue_depth=32, max_results=4,
                          deadline=10.0),
    "planetlab": ServingScale(hosting_nodes=296, num_workloads=4, query_size=8,
                              slack=0.30, rate=60.0, horizon=5.0,
                              capped_rate=5.0, engine_workers=2,
                              queue_depth=64, max_results=4, deadline=20.0),
}


def scenario_config(scale: ServingScale) -> ScenarioConfig:
    """Lower a --scale onto the shared harness scenario schema."""
    return ScenarioConfig(
        name="serving", rate=scale.rate, horizon=scale.horizon,
        tenants=("open", "capped"), capped_rate=scale.capped_rate,
        hosting_nodes=scale.hosting_nodes, num_workloads=scale.num_workloads,
        query_size=scale.query_size, slack=scale.slack,
        engine_workers=scale.engine_workers, queue_depth=scale.queue_depth,
        max_results=scale.max_results, deadline=scale.deadline)


def run_parity_check(run: ScenarioRun) -> Dict:
    """Accepted server responses must equal direct engine calls, byte for byte."""
    from repro.harness import build_scene

    hosting, workloads = build_scene(run.config, run.seed)
    service = NetEmbedService(default_timeout=run.config.deadline)
    service.register_network(hosting, name="serving-bench")
    expected = []
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", max_results=run.config.max_results))
        expected.append([mapping_payload(m) for m in response.mappings])

    compared = 0
    mismatches = 0
    for outcome in run.outcomes:
        if outcome.kind != "result":
            continue
        compared += 1
        if outcome.response["mappings"] != expected[outcome.workload]:
            mismatches += 1
    return {
        "workloads": len(workloads),
        "responses_compared": compared,
        "mismatches": mismatches,
        "results_match": mismatches == 0 and compared > 0,
    }


def summarise(scale: ServingScale, run: ScenarioRun) -> Dict:
    """Fold a raw harness run into the report's latency/shed/accounting blocks."""
    outcomes = run.outcomes
    metrics = run.metrics
    served = [o for o in outcomes if o.kind == "result"]
    shed = [o for o in outcomes if o.kind == "shed"]
    errors = [o for o in outcomes if o.kind == "error"]
    reasons: Dict[str, int] = {}
    for outcome in shed:
        reasons[outcome.detail] = reasons.get(outcome.detail, 0) + 1
    per_tenant: Dict[str, Dict[str, int]] = {}
    for outcome in outcomes:
        bucket = per_tenant.setdefault(outcome.tenant, {"served": 0, "shed": 0})
        bucket["served" if outcome.kind == "result" else "shed"] += 1

    admission = metrics["admission"]
    offered = len(outcomes)
    accounting_ok = (
        admission["offered"] == offered
        and admission["admitted"] + admission["shed_total"] == offered
        and admission["completed"] == len(served)
        and not errors)
    metrics_ok = (
        admission["shed_total"] == len(shed)
        and metrics["server"]["requests"].get("embed", 0) == offered
        and metrics["service"]["plan_cache"]["misses"] >= 1)

    return {
        "latency": latency_block(o.latency_seconds for o in served),
        "schedule_slip": slip_block(o.slip_seconds for o in outcomes),
        "throughput": {
            "wall_seconds": run.wall_seconds,
            "served_per_second": (len(served) / run.wall_seconds
                                  if run.wall_seconds > 0 else 0.0),
            "offered_per_second": scale.rate,
        },
        "shedding": {
            "offered": offered,
            "served": len(served),
            "shed": len(shed),
            "errors": len(errors),
            "shed_rate": len(shed) / offered if offered else 0.0,
            "reasons": reasons,
            "per_tenant": per_tenant,
        },
        "accounting": {"consistent": accounting_ok},
        "metrics": {
            "consistent": metrics_ok,
            "plan_cache_hits": metrics["service"]["plan_cache"]["hits"],
            "plan_cache_misses": metrics["service"]["plan_cache"]["misses"],
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke",
                        help="scene size and offered load (default: smoke)")
    parser.add_argument("--seed", type=int, default=9,
                        help="scene + trace RNG seed (default: 9)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write BENCH_serving.json "
                             f"(default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    started = time.strftime("%Y-%m-%dT%H:%M:%S")
    print(f"serving: scale={args.scale} seed={args.seed} "
          f"{scale.hosting_nodes} hosts, {scale.num_workloads} workloads of "
          f"{scale.query_size} nodes; open-loop Poisson {scale.rate}/s for "
          f"{scale.horizon}s onto {scale.engine_workers} worker(s), "
          f"queue depth {scale.queue_depth}")

    run = run_scenario(scenario_config(scale), seed=args.seed)
    summary = summarise(scale, run)
    parity = run_parity_check(run)

    latency = summary["latency"]
    shedding = summary["shedding"]
    slip = summary["schedule_slip"]

    def fmt_ms(value: Optional[float]) -> str:
        return "n/a (empty sample)" if value is None else f"{value * 1000:.1f}ms"

    print(f"latency (from scheduled offsets): {latency['served']} served, "
          f"p50 {fmt_ms(latency['p50_seconds'])}, "
          f"p99 {fmt_ms(latency['p99_seconds'])}; "
          f"throughput {summary['throughput']['served_per_second']:.1f}/s "
          f"against {scale.rate:.1f}/s offered")
    print(f"schedule slip: max {fmt_ms(slip['max_seconds'])}, "
          f"total {fmt_ms(slip['total_seconds'])} across {slip['count']} "
          f"request(s)")
    print(f"shedding: {shedding['shed']}/{shedding['offered']} "
          f"({shedding['shed_rate']:.0%}) — "
          + (", ".join(f"{reason} x{count}"
                       for reason, count in sorted(shedding["reasons"].items()))
             or "none"))
    print(f"parity: {parity['responses_compared']} accepted responses vs "
          f"direct engine calls, {parity['mismatches']} mismatches")
    print(f"accounting consistent: {summary['accounting']['consistent']}; "
          f"metrics consistent: {summary['metrics']['consistent']}")
    if not parity["results_match"]:
        print("WARNING: serving tier drifted from direct engine results",
              file=sys.stderr)

    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "scale": args.scale,
            "seed": args.seed,
            "hosting_nodes": scale.hosting_nodes,
            "num_workloads": scale.num_workloads,
            "query_size": scale.query_size,
            "slack": scale.slack,
            "rate": scale.rate,
            "horizon": scale.horizon,
            "capped_rate": scale.capped_rate,
            "engine_workers": scale.engine_workers,
            "queue_depth": scale.queue_depth,
            "max_results": scale.max_results,
            "deadline": scale.deadline,
            "started": started,
        },
        "environment": environment_info(),
        **summary,
        "parity": parity,
    }
    path = write_bench_json(args.output, report)
    print(f"wrote {path}")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """Tiny-scale end-to-end run (parity-checked) for pytest/CI."""
    assert main(["--scale", "smoke",
                 "--output", str(tmp_path / "BENCH_serving.json")]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
