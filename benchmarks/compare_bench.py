#!/usr/bin/env python
"""Benchmark-regression gate: compare BENCH_*.json runs against baselines.

The perf-smoke CI job re-runs every benchmark at smoke scale and then calls
this script to compare the fresh reports against the committed baselines
under ``benchmarks/results/smoke/``.  Tracked metrics are declared below per
report file; each is either

* a **ratio/scalar** metric (``kind="ratio"``): machine-independent
  speedups.  The gate fails when the candidate falls more than
  ``--tolerance`` (default 25 %) below the baseline.  Absolute wall-clock
  seconds are deliberately *not* tracked — they do not transfer between
  machines — which is why every benchmark reports normalised ratios.
* an **exact** metric (``kind="exact"``): deterministic counts and parity
  booleans (mappings found, streams-identical flags).  Any change fails the
  gate, in either direction — a "regression" that *finds more mappings* is
  a correctness bug too.
* a **sample** metric (``kind="sample"``): a measured value (latency
  percentile) that must *exist* and be numeric.  Its magnitude is not
  compared — wall-clock values do not transfer between machines — but a
  ``null``/missing sample fails the gate even when the baseline lacks the
  field: "no data" must never read as "no regression".  (Historically an
  empty latency sample was reported as a perfect 0.0 and sailed through;
  this kind is the guard against that class of lie.)

Missing candidate files fail the gate (a benchmark silently dropping out of
CI is itself a regression); missing baseline files are reported and skipped
so a brand-new benchmark can land together with its first baseline.

Usage::

    python benchmarks/compare_bench.py \
        --baseline benchmarks/results/smoke --candidate benchmarks/results \
        [--tolerance 0.25]

Exit status: 0 = all gates green, 1 = regression, 2 = usage/missing files.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Metric:
    """One tracked value inside a benchmark report."""

    #: Dotted path into the JSON document (list indices allowed, e.g.
    #: ``engines.0.mappings_found``).
    path: str
    #: "ratio" (tolerance-gated, higher is better), "exact" (must match), or
    #: "sample" (must exist and be numeric; magnitude uncompared).
    kind: str = "ratio"
    #: Per-metric tolerance override for ratio metrics.  ``None`` uses the
    #: CLI-wide value; metrics whose smoke-scale runs are wall-clock-noisy
    #: (amortisation ratios over sub-second phases) declare a wider band —
    #: a real regression dwarfs run-to-run noise anyway.
    tolerance: Optional[float] = None

    def resolve(self, document) -> Optional[object]:
        value = document
        for part in self.path.split("."):
            if isinstance(value, list):
                try:
                    value = value[int(part)]
                except (ValueError, IndexError):
                    return None
            elif isinstance(value, dict):
                if part not in value:
                    return None
                value = value[part]
            else:
                return None
        return value


#: The gate's contract: which metrics of which report are protected.
TRACKED: Dict[str, List[Metric]] = {
    "BENCH_core.json": [
        Metric("comparison.speedup_total", tolerance=0.40),
        Metric("comparison.speedup_filter_build", tolerance=0.40),
        # Both engines enumerate the same complete stream; any drift in the
        # count is a correctness regression, not noise.
        Metric("engines.0.mappings_found", kind="exact"),
        Metric("engines.1.mappings_found", kind="exact"),
    ],
    "BENCH_kernel.json": [
        # Byte-identity is the kernel's whole contract: a fast-but-wrong
        # backend must fail the gate, not just review.
        Metric("parity.streams_identical", kind="exact"),
        Metric("parity.counters_identical", kind="exact"),
        Metric("rwb.streams_identical", kind="exact"),
        Metric("engines.0.mappings_found", kind="exact"),
        Metric("engines.1.mappings_found", kind="exact"),
        # Search time at smoke scale is milliseconds, so the ratio gate is
        # deliberately loose — it exists to catch order-of-magnitude
        # kernel regressions, not scheduler jitter.
        Metric("comparison.speedup_search", tolerance=0.60),
    ],
    "BENCH_plan.json": [
        Metric("comparison.speedup_amortized_wall", tolerance=0.50),
        Metric("engines.0.mappings_found", kind="exact"),
        Metric("engines.1.mappings_found", kind="exact"),
        Metric("invalidation.fresh_results_match", kind="exact"),
    ],
    "BENCH_parallel.json": [
        # Wall-clock scaling is meaningless on shared CI runners; the
        # deterministic enumeration counts are the invariant worth gating
        # (the benchmark itself aborts on any serial/parallel stream
        # divergence, so a written report implies byte-identical streams).
        Metric("engines.0.mappings_found", kind="exact"),
        Metric("engines.1.mappings_found", kind="exact"),
    ],
    "BENCH_churn.json": [
        Metric("refresh.speedup_refresh", tolerance=0.40),
        Metric("repair.speedup_repair", tolerance=0.40),
        Metric("refresh.parity_checked", kind="exact"),
        Metric("refresh.recompiled", kind="exact"),
        Metric("repair.failed", kind="exact"),
        Metric("repair.timeout", kind="exact"),
    ],
    "BENCH_faults.json": [
        # The fault benchmark is deterministic end to end: the seeded plan
        # fires the same faults every run, the resilience stack answers
        # every request, and the WAL replays to the exact live ledger.
        # All of it is exact-gated — any drift is a robustness regression.
        Metric("availability.availability", kind="exact"),
        Metric("availability.answered", kind="exact"),
        Metric("availability.results", kind="exact"),
        Metric("availability.errors_final", kind="exact"),
        Metric("faults.total_fired", kind="exact"),
        Metric("faults.fired_counts.engine-timeout", kind="exact"),
        Metric("faults.fired_counts.connection-drop", kind="exact"),
        Metric("faults.fired_counts.slow-call", kind="exact"),
        Metric("parity.results_match", kind="exact"),
        Metric("parity.mismatches", kind="exact"),
        Metric("wal.orphans", kind="exact"),
        Metric("wal.lost", kind="exact"),
        Metric("wal.state_match", kind="exact"),
    ],
    "BENCH_serving.json": [
        # Latency percentiles and shed counts are load/host dependent; the
        # gate protects the serving tier's deterministic invariants: zero
        # result drift vs direct engine calls, every arrival answered
        # exactly once, and a metrics document that agrees with the clients.
        Metric("parity.results_match", kind="exact"),
        Metric("parity.mismatches", kind="exact"),
        Metric("accounting.consistent", kind="exact"),
        Metric("metrics.consistent", kind="exact"),
        Metric("shedding.errors", kind="exact"),
        # The honest-latency contract: the percentiles must be measured
        # numbers.  A run that served nothing reports them as null and MUST
        # fail here — it used to report 0.0 and pass.
        Metric("latency.p50_seconds", kind="sample"),
        Metric("latency.p95_seconds", kind="sample"),
        Metric("latency.p99_seconds", kind="sample"),
    ],
    "BENCH_harness.json": [
        # The scenario harness is gated on its honesty invariants, all of
        # them deterministic: byte-identical trace lowering, replay parity
        # of outcome classifications, null (not 0.0) percentiles on the
        # all-shed scenario, and consistent accounting per live scenario.
        Metric("trace.byte_identical", kind="exact"),
        Metric("replay.outcomes_match", kind="exact"),
        Metric("replay.mismatches", kind="exact"),
        Metric("honesty.allshed_served", kind="exact"),
        Metric("honesty.empty_sample_is_null", kind="exact"),
        Metric("scenarios.steady.accounting.consistent", kind="exact"),
        Metric("scenarios.steady.outcomes.errors", kind="exact"),
        Metric("scenarios.steady.server.protocol_errors", kind="exact"),
        Metric("scenarios.overload.accounting.consistent", kind="exact"),
        Metric("scenarios.overload.server.protocol_errors", kind="exact"),
        Metric("scenarios.allshed.accounting.consistent", kind="exact"),
        Metric("scenarios.steady.latency.p50_seconds", kind="sample"),
        Metric("scenarios.steady.latency.p95_seconds", kind="sample"),
        Metric("scenarios.steady.latency.p99_seconds", kind="sample"),
    ],
    "BENCH_scaleout.json": [
        # The scale-out tier is gated on its deterministic guarantees:
        # every zone-local query embedded and revalidated against the
        # primary, feasibility parity with the monolithic oracle, bounded
        # per-partition working sets, and element-identical replicas after
        # journal-delta refresh.  The scan speedup is wall-clock over
        # sub-second smoke phases, hence the wide band.
        Metric("embed.found", kind="exact"),
        Metric("embed.valid", kind="exact"),
        Metric("parity.results_match", kind="exact"),
        Metric("parity.mismatches", kind="exact"),
        Metric("partitions.bounded", kind="exact"),
        Metric("replication.identical", kind="exact"),
        Metric("pruning.speedup_vs_scan", tolerance=0.60),
    ],
}


def compare_file(name: str, baseline_dir: Path, candidate_dir: Path,
                 tolerance: float) -> List[str]:
    """Gate one report; returns failure messages (empty = green)."""
    failures: List[str] = []
    baseline_path = baseline_dir / name
    candidate_path = candidate_dir / name
    if not baseline_path.exists():
        print(f"  {name}: no baseline committed yet — skipped "
              f"(commit one under {baseline_dir})")
        return failures
    if not candidate_path.exists():
        return [f"{name}: candidate report missing at {candidate_path} — "
                f"did the benchmark run?"]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    candidate = json.loads(candidate_path.read_text(encoding="utf-8"))

    for metric in TRACKED[name]:
        base_value = metric.resolve(baseline)
        cand_value = metric.resolve(candidate)
        if metric.kind == "sample":
            # Checked before the baseline-absent skip: a sample metric
            # gates the *candidate* only.  null, missing, non-numeric, or
            # NaN all fail — an empty sample must never read as healthy.
            missing = (isinstance(cand_value, bool)
                       or not isinstance(cand_value, (int, float))
                       or cand_value != cand_value)
            if missing:
                print(f"  {name}: {metric.path} = {cand_value!r} [NO SAMPLE]")
                failures.append(
                    f"{name}: {metric.path} has no measured sample "
                    f"({cand_value!r}) — an empty/missing latency sample "
                    f"fails the gate, it does not pass it")
            else:
                print(f"  {name}: {metric.path} = {cand_value:.6f} "
                      f"(sample present) [ok]")
            continue
        if base_value is None:
            print(f"  {name}: {metric.path} absent from baseline — skipped")
            continue
        if cand_value is None:
            failures.append(f"{name}: {metric.path} missing from the "
                            f"candidate report")
            continue
        if metric.kind == "exact":
            ok = cand_value == base_value
            verdict = "ok" if ok else "CHANGED"
            print(f"  {name}: {metric.path} = {cand_value!r} "
                  f"(baseline {base_value!r}) [{verdict}]")
            if not ok:
                failures.append(
                    f"{name}: {metric.path} changed from {base_value!r} to "
                    f"{cand_value!r} (exact metric)")
        else:
            band = tolerance if metric.tolerance is None else metric.tolerance
            floor = base_value * (1.0 - band)
            ok = cand_value >= floor
            verdict = "ok" if ok else "REGRESSED"
            print(f"  {name}: {metric.path} = {cand_value:.3f} "
                  f"(baseline {base_value:.3f}, floor {floor:.3f}) [{verdict}]")
            if not ok:
                failures.append(
                    f"{name}: {metric.path} regressed to {cand_value:.3f}, "
                    f"below the {floor:.3f} floor "
                    f"(baseline {base_value:.3f} - {band:.0%})")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent / "results" / "smoke",
                        help="directory holding the committed baseline "
                             "BENCH_*.json files")
    parser.add_argument("--candidate", type=Path,
                        default=Path(__file__).parent / "results",
                        help="directory holding the freshly produced reports")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drop for ratio metrics "
                             "(default: 0.25)")
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    if not args.baseline.is_dir():
        print(f"error: baseline directory {args.baseline} does not exist",
              file=sys.stderr)
        return 2

    print(f"comparing {args.candidate} against baselines in {args.baseline} "
          f"(tolerance {args.tolerance:.0%} on ratio metrics)")
    failures: List[str] = []
    for name in sorted(TRACKED):
        failures.extend(compare_file(name, args.baseline, args.candidate,
                                     args.tolerance))
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate: all tracked metrics green")
    return 0


try:                         # pytest is absent in script-only environments
    from _smoke_marker import smoke as _smoke
except ImportError:          # pragma: no cover - running outside benchmarks/
    def _smoke(func):
        return func


@_smoke
def test_smoke(tmp_path):
    """The gate passes when candidate == baseline and catches regressions."""
    baseline = tmp_path / "baseline"
    candidate = tmp_path / "candidate"
    baseline.mkdir()
    candidate.mkdir()
    report = {"refresh": {"speedup_refresh": 4.0, "parity_checked": True,
                          "recompiled": 0},
              "repair": {"speedup_repair": 10.0, "failed": 0, "timeout": 0}}
    (baseline / "BENCH_churn.json").write_text(json.dumps(report))
    (candidate / "BENCH_churn.json").write_text(json.dumps(report))
    assert main(["--baseline", str(baseline), "--candidate", str(candidate),
                 "--tolerance", "0.25"]) == 0

    degraded = {"refresh": {"speedup_refresh": 2.0, "parity_checked": True,
                            "recompiled": 0},
                "repair": {"speedup_repair": 10.0, "failed": 0, "timeout": 0}}
    (candidate / "BENCH_churn.json").write_text(json.dumps(degraded))
    assert main(["--baseline", str(baseline), "--candidate", str(candidate),
                 "--tolerance", "0.25"]) == 1

    # A missing candidate report is a failure, not a skip.
    (candidate / "BENCH_churn.json").unlink()
    assert main(["--baseline", str(baseline), "--candidate", str(candidate),
                 "--tolerance", "0.25"]) == 1

    # Sample metrics: a numeric percentile passes; a null one (empty
    # sample) fails the gate even though the baseline value is ignored.
    (candidate / "BENCH_churn.json").write_text(json.dumps(report))
    serving = {"parity": {"results_match": True, "mismatches": 0},
               "accounting": {"consistent": True},
               "metrics": {"consistent": True},
               "shedding": {"errors": 0},
               "latency": {"p50_seconds": 0.003, "p95_seconds": 0.009,
                           "p99_seconds": 0.012}}
    (baseline / "BENCH_serving.json").write_text(json.dumps(serving))
    (candidate / "BENCH_serving.json").write_text(json.dumps(serving))
    assert main(["--baseline", str(baseline), "--candidate", str(candidate),
                 "--tolerance", "0.25"]) == 0

    starved = json.loads(json.dumps(serving))
    starved["latency"] = {"p50_seconds": None, "p95_seconds": None,
                          "p99_seconds": None}
    (candidate / "BENCH_serving.json").write_text(json.dumps(starved))
    assert main(["--baseline", str(baseline), "--candidate", str(candidate),
                 "--tolerance", "0.25"]) == 1


if __name__ == "__main__":
    raise SystemExit(main())
