"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``bench_*`` module regenerates one table/figure of the paper's §VII at
benchmark scale (see DESIGN.md for the scaling rationale).  The raw per-query
rows produced by the experiment drivers are cached per session so figures
that share a workload (Fig. 8 and Fig. 9; Fig. 11 and Fig. 12) only pay for
it once, and every benchmark both prints its series (run pytest with ``-s``
to see them) and writes them to ``benchmarks/results/*.csv``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Sequence

import pytest

from repro.analysis import format_figure, format_table, write_csv

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_configure(config) -> None:
    """Register the smoke marker and guarantee the results directory.

    ``smoke`` marks the tiny-scale pytest entry points of the script-style
    benchmarks (bench_perf_core / bench_plan_cache / bench_parallel), so
    ``pytest benchmarks -m smoke`` exercises every benchmark end to end in
    seconds.  The results directory is created here too — committed
    artifacts live in it, but a fresh clone running a benchmark that writes
    there must not depend on the checkout shipping the directory.
    """
    config.addinivalue_line(
        "markers",
        "smoke: tiny-scale end-to-end run of a script-style benchmark")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)


@pytest.fixture(scope="session")
def experiment_cache() -> Dict[str, List[dict]]:
    """Session-wide memo of experiment-driver outputs keyed by experiment id."""
    return {}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark series are written as CSV."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def figure_report(results_dir):
    """Callable that prints a figure's series and persists it as CSV."""

    def report(name: str, series: Sequence[dict], title: str,
               x_field: str = "size", group_field: str = "algorithm",
               value_field: str = "mean", pivot: bool = True) -> None:
        if pivot:
            text = format_figure(series, title=title, x_field=x_field,
                                 group_field=group_field, value_field=value_field)
        else:
            text = format_table(list(series), title=title)
        print("\n" + text + "\n")
        write_csv(list(series), results_dir / f"{name}.csv")

    return report


@pytest.fixture
def cached_experiment(experiment_cache):
    """Callable fixture: memoised driver execution keyed by experiment id.

    Figures that share a workload (Fig. 8/9, Fig. 11/12) call it with the same
    key so the underlying experiment only runs once per session.
    """

    def run(key: str, driver: Callable[[], List[dict]]) -> List[dict]:
        if key not in experiment_cache:
            experiment_cache[key] = driver()
        return experiment_cache[key]

    return run
