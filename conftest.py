"""Root conftest: a per-test timeout for the whole suite.

The fault-tolerance tests exercise hang-prone machinery on purpose —
dropped connections, killed workers, drained queues — so the suite pins a
hard per-test wall-clock budget (the ``timeout`` ini option, set in
pyproject.toml).  When the real ``pytest-timeout`` plugin is installed (CI
installs it) it owns the option and this file stays out of the way.  When
it is not — the offline dev container ships without it — a minimal
SIGALRM-based fallback below enforces the same budget: a test that
exceeds it fails with a ``TimeoutError`` instead of wedging the run.

The fallback is deliberately conservative: it only arms on platforms with
``SIGALRM``, only from the main thread, and restores the previous handler
and timer around every test.  Per-test overrides use the same marker
pytest-timeout defines: ``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import pytest

try:
    import pytest_timeout  # noqa: F401 — the real plugin owns "timeout"
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

if not _HAVE_PYTEST_TIMEOUT:
    import signal
    import threading

    def pytest_addoption(parser):
        parser.addini("timeout",
                      "per-test timeout in seconds (SIGALRM fallback shim; "
                      "install pytest-timeout for the full plugin)",
                      default="0")

    def pytest_configure(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test timeout override "
            "(pytest-timeout-compatible)")

    def _budget_for(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            return 0.0

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        seconds = _budget_for(item)
        if (seconds <= 0 or not hasattr(signal, "SIGALRM")
                or threading.current_thread() is not threading.main_thread()):
            yield
            return

        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds:g}s per-test timeout "
                f"(SIGALRM fallback; see conftest.py)")

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
