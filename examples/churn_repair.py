#!/usr/bin/env python3
"""Keep reserved embeddings healthy while the network churns underneath them.

Scenario (paper §III + the ``rNode.up == true`` idiom of §VI): applications
hold *reservations* — embeddings whose capacity the service has allocated —
while the monitoring feed keeps drifting the hosting model: link delays
jitter, load moves, nodes go down and come back.  Tearing a reservation down
and re-embedding from scratch on every refresh wastes both search time and
every still-valid placement.  This example shows the incremental alternative:

* sparse churn ticks mutate the model through the network's mutators, so the
  **mutation journal** records exactly what changed;
* re-submitted traffic hits the plan cache's **patch path**: the stranded
  plan is brought up to date by replaying the delta instead of recompiling
  (watch the cache's ``patched`` counter);
* each reservation is **repaired in place** via ``service.repair()``: only
  assignments the churn actually broke are released and re-placed by an
  LNS-style local search, and capacity follows the moves atomically.

Run with:  python examples/churn_repair.py
"""

from __future__ import annotations

from repro import NetEmbedService
from repro.service import QuerySpec
from repro.topology import synthetic_planetlab_trace
from repro.utils.rng import as_rng
from repro.workloads import ChurnConfig, ChurnProcess, churn_embedding_suite


def main() -> None:
    rng = as_rng(11)

    # 1. A PlanetLab-like hosting model with per-site reservation capacity.
    planetlab = synthetic_planetlab_trace(num_sites=48, rng=rng)
    for site in planetlab.nodes():
        planetlab.set_capacity(site, 4.0)
    service = NetEmbedService(default_timeout=30.0)
    service.register_network(planetlab, name="planetlab")
    print(f"hosting model: {planetlab.num_nodes} sites, "
          f"{planetlab.num_edges} measured links, capacity 4.0 per site")

    # 2. Embed and reserve three feasible virtual topologies.
    workloads = churn_embedding_suite(planetlab, num_queries=3, query_size=7,
                                      slack=0.3, rng=rng)
    reservations = []
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", max_results=1, reserve=True))
        reservations.append((response.reservation_id, workload))
        print(f"reserved {response.reservation_id}: "
              f"{workload.query.name} -> "
              f"{sorted(response.first.hosting_nodes(), key=str)}")

    # 3. Sparse churn: ~5% of links and nodes move per tick — the regime
    #    where deltas are small and repair beats re-embedding.
    churn = ChurnProcess(planetlab,
                         ChurnConfig(link_fraction=0.05, node_fraction=0.05,
                                     delay_jitter=0.25), rng=rng)

    for _ in range(5):
        tick = churn.tick()
        service.registry.touch("planetlab")
        print(f"\nchurn tick {tick.index}: {len(tick.touched_edges)} links "
              f"jittered, {len(tick.touched_nodes)} nodes perturbed")

        # Traffic under churn: the cached plan is patched, not recompiled.
        service.submit(QuerySpec(query=workloads[0].query,
                                 constraint=workloads[0].constraint,
                                 algorithm="ECF", max_results=1))

        # Self-healing reservations: repair only what broke.
        for reservation_id, workload in reservations:
            repair = service.repair(reservation_id)
            if repair.status == "intact":
                print(f"  {reservation_id}: intact")
            else:
                moves = ", ".join(f"{q}: {old}->{new}"
                                  for q, (old, new) in sorted(
                                      repair.moved.items(), key=str))
                print(f"  {reservation_id}: {repair.status} "
                      f"({moves or 'no moves'}) in "
                      f"{repair.result.elapsed_seconds * 1000:.1f} ms")

    cache = service.plans.stats()
    print(f"\nplan cache after churn: {cache['hits']} hits / "
          f"{cache['misses']} misses; refreshes: {cache['patched']} patched "
          f"vs {cache['recompiled']} recompiled")
    print("every reservation still holds a valid embedding")


if __name__ == "__main__":
    main()
