#!/usr/bin/env python3
"""Allocate grid compute clusters over a sparse router-level network.

Scenario (paper §III, last bullet): "a grid application that needs to allocate
a subset of nodes with certain capabilities and some connectivity requirements
between them."

The infrastructure here is a BRITE-like power-law router network (paper
§VII-C) rather than a dense overlay, so two chosen compute nodes are rarely
directly adjacent.  The example therefore shows both embedding modes:

* strict edge-to-edge embedding of a small tightly-coupled cluster (a clique
  of workers that must sit on directly connected, low-latency routers), and
* the §VIII link-to-path extension for a larger pipeline whose stages may be
  several hops apart as long as the end-to-end delay budget holds.

Run with:  python examples/grid_allocation.py
"""

from __future__ import annotations

from repro import ECF, QueryNetwork, SearchRequest
from repro.extensions import PathEmbedder
from repro.topology import barabasi_albert
from repro.topology.regular import clique


def tightly_coupled_cluster() -> QueryNetwork:
    """Four workers that exchange bulk data: every pair needs a fast direct link."""
    workers = clique(4, prefix="worker")
    for u, v in workers.edges():
        workers.update_edge(u, v, maxDelay=12.0)
    return workers


def analysis_pipeline() -> QueryNetwork:
    """ingest -> transform -> train -> publish, with generous per-stage budgets."""
    pipeline = QueryNetwork("pipeline")
    stages = ["ingest", "transform", "train", "publish"]
    for stage in stages:
        pipeline.add_node(stage)
    for upstream, downstream in zip(stages, stages[1:]):
        pipeline.add_edge(upstream, downstream, maxDelay=60.0)
    return pipeline


def main() -> None:
    grid = barabasi_albert(120, edges_per_node=2, rng=99, name="grid-routers")
    print(f"grid infrastructure: {grid.num_nodes} routers, {grid.num_edges} links "
          f"(power-law, BRITE-like)\n")
    delay_budget = "rEdge.avgDelay <= vEdge.maxDelay"

    # --- tightly coupled cluster: strict edge-to-edge embedding ----------- #
    cluster = tightly_coupled_cluster()
    result = ECF().request(SearchRequest.build(
        cluster, grid, constraint=delay_budget, max_results=5, timeout=20))
    print(f"tightly-coupled clique of {cluster.num_nodes}: {result.status.value}, "
          f"{result.count} direct placement(s)")
    if result.found:
        print("  example placement:",
              ", ".join(f"{q}->{r}" for q, r in sorted(result.first.items())))
    else:
        print("  no four routers are pairwise adjacent within 12 ms "
              "(expected on a sparse power-law graph)")

    # --- pipeline: link-to-path embedding (§VIII extension) --------------- #
    pipeline = analysis_pipeline()
    embedder = PathEmbedder(algorithm=ECF(), max_hops=3)
    path_result = embedder.search(pipeline, grid, constraint=delay_budget,
                                  max_results=1, timeout=30)
    print(f"\npipeline with link-to-path mapping: "
          f"{'placed' if path_result.found else 'no placement'}")
    if path_result.found:
        placement = path_result.path_mappings[0]
        for stage, router in sorted(placement.node_mapping.items()):
            print(f"  {stage:>9} -> {router}")
        print("  stage-to-stage routes:")
        for query_edge, path in placement.edge_paths.items():
            hops = len(path) - 1
            print(f"    {query_edge[0]} => {query_edge[1]}: "
                  f"{' -> '.join(str(node) for node in path)}  ({hops} hop(s))")
        print(f"  total router hops used: {placement.total_hops()}")


if __name__ == "__main__":
    main()
