#!/usr/bin/env python3
"""Place an overlay multicast distribution tree with per-level delay budgets.

Scenario (paper §III, first bullet): "a dynamic multicast service, where an
overlay distribution tree must be configured subject to a set of constraints
so that some QoS requirements are satisfied."

The multicast tree is a two-level composite topology (paper §VII-D): a ring
of regional *relay* groups for wide-area distribution, each group fanning out
to local receivers.  Root-level links tolerate wide-area delays (75–350 ms);
intra-group links must stay on fast local paths (1–75 ms).  After embedding,
the minimum-total-delay placement is selected from the feasible set — the
optimisation stage the paper leaves to the application.

Run with:  python examples/multicast_overlay.py
"""

from __future__ import annotations

from repro import ECF, LNS, SearchRequest
from repro.extensions import best_mapping, total_delay_cost
from repro.topology import CompositeSpec, synthetic_planetlab_trace
from repro.topology.composite import level_edges
from repro.workloads import composite_query


def main() -> None:
    # The overlay substrate: a PlanetLab-like set of end systems.
    overlay = synthetic_planetlab_trace(num_sites=48, rng=314)
    print(f"overlay substrate: {overlay.num_nodes} end systems, "
          f"{overlay.num_edges} overlay links")

    # The multicast tree: 4 relay groups in a ring, 4 receivers per group.
    spec = CompositeSpec(root_shape="ring", num_groups=4,
                         group_shape="star", group_size=4)
    workload = composite_query(spec,
                               root_window=(75.0, 350.0),
                               group_window=(1.0, 75.0))
    tree = workload.query
    print(f"multicast tree: {tree.num_nodes} nodes "
          f"({len(level_edges(tree, 0))} wide-area links, "
          f"{len(level_edges(tree, 1))} local links)\n")

    # LNS is the paper's recommendation for regular, under-constrained queries
    # when only the first placement matters (Fig. 14); ECF then enumerates a
    # few alternatives so the application can pick the cheapest one.
    first = LNS().request(SearchRequest.build(
        tree, overlay, constraint=workload.constraint,
        max_results=1, timeout=30))
    print(f"LNS first placement: {first.status.value} in "
          f"{first.elapsed_seconds * 1000:.0f} ms")

    alternatives = ECF().request(SearchRequest.build(
        tree, overlay, constraint=workload.constraint,
        max_results=40, timeout=30))
    print(f"ECF alternatives:    {alternatives.count} placement(s) in "
          f"{alternatives.elapsed_seconds * 1000:.0f} ms")

    candidates = alternatives if alternatives.found else first
    if not candidates.found:
        print("no placement satisfies the QoS budgets; "
              "widen the delay windows or shrink the tree")
        return

    best = best_mapping(candidates, tree, overlay, total_delay_cost)
    print(f"\nselected placement (total overlay delay "
          f"{best.cost:.0f} ms across tree links):")
    for group in range(spec.num_groups):
        members = [node for node in tree.nodes()
                   if tree.get_node_attr(node, "group") == group]
        rendered = ", ".join(
            f"{node}->{best.mapping[node]}" for node in sorted(members))
        print(f"  group {group}: {rendered}")

    # Show the per-level QoS actually achieved.
    for level, label in ((0, "wide-area"), (1, "local")):
        delays = []
        for u, v in level_edges(tree, level):
            ru, rv = best.mapping[u], best.mapping[v]
            edge = (ru, rv) if overlay.has_edge(ru, rv) else (rv, ru)
            delays.append(overlay.get_edge_attr(*edge, "avgDelay"))
        print(f"  {label} link delays: min {min(delays):.0f} ms, "
              f"max {max(delays):.0f} ms")


if __name__ == "__main__":
    main()
