#!/usr/bin/env python3
"""Sharded parallel execution: the same mapping stream, on many cores.

Demonstrates the parallel execution engine end to end:

1. build a mid-sized hosting network and a query whose full enumeration has
   real work in it;
2. compile an :class:`~repro.core.plan.EmbeddingPlan` once and execute it
   serially and with ``parallelism=4`` — the mapping streams are verified
   byte-identical (that is the engine's core guarantee, for any shard
   count and any of ECF / RWB / LNS);
3. run the same traffic through :class:`~repro.service.NetEmbedService`,
   whose batch and streaming paths share one bounded process pool.

Run with:  python examples/parallel_embedding.py
"""

from __future__ import annotations

import random
import time

from repro import ECF, RWB, HostingNetwork, QueryNetwork, SearchRequest
from repro.service import NetEmbedService, QuerySpec

CONSTRAINT = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"


def build_networks():
    """A 20-node mesh-ish host and a 5-node path query with delay windows."""
    rng = random.Random(42)
    hosting = HostingNetwork("datacenter")
    for i in range(20):
        hosting.add_node(f"rack{i:02d}", name=f"rack{i:02d}")
    for i in range(20):
        for j in range(i + 1, 20):
            if rng.random() < 0.45:
                hosting.add_edge(f"rack{i:02d}", f"rack{j:02d}",
                                 avgDelay=rng.uniform(5.0, 60.0))

    query = QueryNetwork("pipeline")
    for i in range(5):
        query.add_node(f"stage{i}")
    for i in range(4):
        query.add_edge(f"stage{i}", f"stage{i + 1}",
                       minDelay=0.0, maxDelay=45.0)
    return hosting, query


def main() -> None:
    hosting, query = build_networks()
    request = SearchRequest.build(query, hosting, constraint=CONSTRAINT)

    # ---- plan-level API: prepare once, execute serially or sharded -------- #
    plan = ECF().prepare(request)

    started = time.perf_counter()
    serial = plan.execute()
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = plan.execute(parallelism=4)
    parallel_seconds = time.perf_counter() - started

    assert [m.as_dict() for m in serial.mappings] == \
        [m.as_dict() for m in parallel.mappings], "streams must be identical"
    print(f"ECF full enumeration: {serial.count} embeddings")
    print(f"  serial       {serial_seconds * 1000:8.1f} ms")
    print(f"  parallelism=4 {parallel_seconds * 1000:7.1f} ms "
          f"(byte-identical stream; speedup depends on free cores)")

    # RWB: the seeded random walk shards too — per-root derived rng streams
    # make the parallel walk reproduce the serial one exactly.
    rwb_plan = RWB().prepare(request)
    first_serial = rwb_plan.execute(rng=7).first
    first_parallel = rwb_plan.execute(rng=7, parallelism=4).first
    assert first_serial.as_dict() == first_parallel.as_dict()
    print(f"RWB seeded first match agrees under sharding: "
          f"{dict(sorted(first_serial.as_dict().items()))}")

    # ---- service-level API: one bounded pool for all parallel traffic ---- #
    with NetEmbedService(parallel_workers=4) as service:
        service.register_network(hosting, name="datacenter")
        specs = [QuerySpec(query=query, constraint=CONSTRAINT,
                           algorithm="ECF", parallelism=4)
                 for _ in range(3)]
        responses = service.submit_batch(specs)
        counts = {response.result.count for response in responses}
        assert counts == {serial.count}
        print(f"service batch (3 specs, shared 4-worker pool): "
              f"each found {serial.count} embeddings; "
              f"plan cache stats {service.plans.stats()}")

        # Streaming consumes lazily; closing early aborts the shard merge.
        stream = service.stream(QuerySpec(query=query, constraint=CONSTRAINT,
                                          algorithm="ECF", parallelism=2))
        first_three = [next(stream) for _ in range(3)]
        stream.close()
        print(f"streamed first three embeddings then closed: "
              f"{[dict(sorted(m.as_dict().items())) for m in first_three][0]} ...")


if __name__ == "__main__":
    main()
