#!/usr/bin/env python3
"""Serve repeated embedding traffic from a warm plan cache while a monitor
drifts the model underneath it.

Scenario (paper §III): the NETEMBED service is long-lived.  Applications keep
asking for placements of the same few virtual topologies, while the
monitoring service periodically refreshes the hosting model's measured
delays and node availability.  Re-running the whole two-stage search per
request wastes the hosting-side compilation; the service therefore routes
traffic through its version-aware plan cache:

* the first request for a (query, constraints, model version) triple
  compiles an ``EmbeddingPlan`` (indexer, vectorizer kernels, filter
  bitmasks) and caches it;
* every repeat of that traffic *hits* the cache and only runs the search;
* a monitor tick bumps the model version, so the next request *misses*,
  recompiles against the fresh measurements, and the cycle restarts.

Run with:  python examples/plan_cache_traffic.py
"""

from __future__ import annotations

import time

from repro import NetEmbedService
from repro.service import MonitorConfig, QuerySpec
from repro.topology import synthetic_planetlab_trace
from repro.utils.rng import as_rng
from repro.workloads import subgraph_query


def main() -> None:
    rng = as_rng(7)

    # 1. A PlanetLab-like hosting model, registered with the service.
    planetlab = synthetic_planetlab_trace(num_sites=48, rng=rng)
    service = NetEmbedService(default_timeout=30.0)
    service.register_network(planetlab, name="planetlab")
    print(f"hosting model: {planetlab.num_nodes} sites, "
          f"{planetlab.num_edges} measured links")

    # 2. The recurring traffic: three virtual topologies with tight (±10%)
    #    delay windows, each requested again and again.
    workloads = [subgraph_query(planetlab, size, slack=0.10, rng=rng)
                 for size in (6, 8, 10)]
    specs = [QuerySpec(query=w.query, constraint=w.constraint,
                       algorithm="ECF", max_results=5)
             for w in workloads]

    # 3. A monitoring service that perturbs delays/load every epoch.
    monitor = service.attach_monitor("planetlab",
                                     config=MonitorConfig(delay_jitter=0.05,
                                                          failure_probability=0.0),
                                     rng=rng)

    rounds, repeats_per_round = 3, 5
    for epoch in range(rounds):
        started = time.perf_counter()
        for _ in range(repeats_per_round):
            for spec in specs:
                service.submit(spec)
        elapsed_ms = (time.perf_counter() - started) * 1000
        stats = service.plans.stats()
        print(f"epoch {epoch} (model v{service.registry.version('planetlab')}): "
              f"{repeats_per_round * len(specs)} requests in {elapsed_ms:.1f} ms"
              f" — cache: {stats['hits']} hits / {stats['misses']} misses"
              f" ({stats['size']} plans live)")

        # The monitor refreshes the model: every cached plan for this network
        # is now stale, and the next round recompiles against fresh data.
        version = monitor.tick()
        print(f"  monitor tick -> model v{version}: cached plans invalidated")

    stats = service.plans.stats()
    hit_rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])
    print(f"\ntotal: {stats['hits']} hits / {stats['misses']} misses "
          f"({hit_rate:.0%} hit rate across {rounds} model versions)")
    print("warm repeats skipped filter compilation entirely; every tick "
          "forced exactly one recompilation per distinct query")


if __name__ == "__main__":
    main()
