#!/usr/bin/env python3
"""Allocate a PlanetLab-style experiment slice through the NETEMBED service.

Scenario (paper §I): a researcher wants to deploy a distributed experiment on
a PlanetLab-like testbed.  The experiment needs an Internet-like topology of
12 nodes whose link delays stay inside measured windows, every node running
linux-2.6, and the whole slice reserved so a second experiment cannot grab
the same machines.

The script exercises the full service stack: synthetic all-pairs trace →
model registry → monitoring refresh → constrained embedding → reservation →
negotiation fallback when the constraints are too tight.

Run with:  python examples/planetlab_slice.py
"""

from __future__ import annotations

from repro import NetEmbedService
from repro.constraints import ConstraintExpression
from repro.constraints.builder import all_of, host_delay_within_query_window, \
    node_attribute_binding
from repro.service import MonitorConfig, NegotiationSession, with_default_demand
from repro.topology import synthetic_planetlab_trace
from repro.workloads import subgraph_query


def main() -> None:
    # 1. The infrastructure: a PlanetLab-like all-pairs delay trace.
    planetlab = synthetic_planetlab_trace(num_sites=60, rng=2024)
    for site in planetlab.nodes():
        planetlab.set_capacity(site, 1.0)          # one slice slot per site
    print(f"PlanetLab-like trace: {planetlab.num_nodes} sites, "
          f"{planetlab.num_edges} measured links")

    # 2. The service, with a monitor keeping the model fresh.
    service = NetEmbedService(default_timeout=20.0, rng=7)
    service.register_network(planetlab, name="planetlab")
    monitor = service.attach_monitor("planetlab",
                                     config=MonitorConfig(delay_jitter=0.05,
                                                          failure_probability=0.02),
                                     rng=9)
    monitor.run(3)
    print(f"monitoring: {monitor.ticks} refresh cycles, "
          f"{len(monitor.down_nodes())} site(s) currently down\n")

    # 3. The experiment request: a 12-node Internet-like topology sampled from
    #    the linux-2.6 portion of the testbed (the experiment's OS requirement),
    #    with ±15% delay windows around the measured delays.
    linux_sites = planetlab.subnetwork(
        planetlab.nodes_with_attribute("osType", "linux-2.6"), name="linux-sites")
    workload = subgraph_query(linux_sites, 12, slack=0.15, rng=5)
    experiment = workload.query
    for node in experiment.nodes():
        experiment.update_node(node, osType="linux-2.6")
    with_default_demand(experiment, demand=1.0)

    constraint = ConstraintExpression(all_of(
        host_delay_within_query_window(),
        node_attribute_binding("osType", "vSource", "rSource"),
        node_attribute_binding("osType", "vTarget", "rTarget"),
    ))
    availability = ConstraintExpression(
        "rNode.up == true && rNode.available_capacity >= vNode.demand")

    # 4. Embed and reserve.
    response = service.embed(experiment, constraint=constraint,
                             node_constraint=availability,
                             algorithm="auto", max_results=1, reserve=True)
    print(f"algorithm chosen by the service: {response.algorithm_used}")
    print(f"result: {response.status.value} in {response.elapsed_seconds*1000:.0f} ms")

    if response.found:
        print(f"reservation ticket: {response.reservation_id}")
        print("slice placement:")
        for query_node, site in sorted(response.first.items()):
            region = planetlab.get_node_attr(site, "region")
            print(f"  {query_node:>4} -> {site} ({region})")
    else:
        # 5. Negotiate: relax the delay windows until a placement exists.
        print("no placement under the strict windows; negotiating...")
        session = NegotiationSession(service, relaxation_step=0.5, max_rounds=4)
        outcome = session.negotiate(experiment, constraint=constraint,
                                    node_constraint=availability,
                                    algorithm="LNS", max_results=1)
        if outcome.succeeded:
            print(f"placement found after widening windows by "
                  f"{outcome.relaxation_used * 100:.0f}% of their width")
        else:
            print("no placement even after relaxation; the slice request "
                  "must be re-dimensioned")


if __name__ == "__main__":
    main()
