#!/usr/bin/env python3
"""Quickstart: embed a small virtual topology into a hand-built hosting network.

This walks through the core NETEMBED workflow in one screenful:

1. describe the *hosting network* (the real infrastructure) with measured
   node and link attributes;
2. describe the *query network* (the virtual topology an application wants)
   with requested attributes;
3. write a *constraint expression* relating the two;
4. run the three NETEMBED algorithms (ECF, RWB, LNS) and inspect the results.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (ECF, LNS, RWB, HostingNetwork, QueryNetwork, SearchRequest,
                   validate_mapping)
from repro.constraints import ConstraintExpression


def build_hosting_network() -> HostingNetwork:
    """A toy lab: six machines, seven measured links."""
    hosting = HostingNetwork("toy-lab")
    machines = {
        "paris": {"osType": "linux-2.6", "cpuLoad": 0.2},
        "lyon": {"osType": "linux-2.6", "cpuLoad": 0.4},
        "berlin": {"osType": "linux-2.4", "cpuLoad": 0.1},
        "madrid": {"osType": "bsd", "cpuLoad": 0.7},
        "rome": {"osType": "linux-2.6", "cpuLoad": 0.3},
        "oslo": {"osType": "linux-2.6", "cpuLoad": 0.5},
    }
    for name, attrs in machines.items():
        hosting.add_node(name, name=name, **attrs)

    links = [
        ("paris", "lyon", 8.0), ("paris", "berlin", 22.0), ("paris", "madrid", 27.0),
        ("lyon", "rome", 18.0), ("berlin", "oslo", 16.0), ("madrid", "rome", 32.0),
        ("rome", "oslo", 41.0),
    ]
    for u, v, delay in links:
        hosting.add_edge(u, v, avgDelay=delay, minDelay=delay * 0.9,
                         maxDelay=delay * 1.25)
    return hosting


def build_query_network() -> QueryNetwork:
    """A three-tier pipeline: source -> processor -> sink, with delay budgets."""
    query = QueryNetwork("pipeline")
    query.add_node("source", osType="linux-2.6")
    query.add_node("processor", osType="linux-2.6")
    query.add_node("sink")
    query.add_edge("source", "processor", maxDelay=20.0)
    query.add_edge("processor", "sink", maxDelay=45.0)
    return query


def main() -> None:
    hosting = build_hosting_network()
    query = build_query_network()

    # The measured hosting delay must respect the requested budget, and the
    # optional osType requirement must be honoured on both edge endpoints.
    constraint = ConstraintExpression(
        "rEdge.avgDelay <= vEdge.maxDelay"
        " && isBoundTo(vSource.osType, rSource.osType)"
        " && isBoundTo(vTarget.osType, rTarget.osType)")

    print(f"Hosting network: {hosting.num_nodes} nodes, {hosting.num_edges} links")
    print(f"Query network:   {query.num_nodes} nodes, {query.num_edges} links")
    print(f"Constraint:      {constraint.source}\n")

    request = SearchRequest.build(query, hosting, constraint=constraint)
    for algorithm in (ECF(), RWB(rng=42), LNS()):
        result = algorithm.request(request)
        print(f"{algorithm.name}: {result.status.value}, "
              f"{result.count} embedding(s) in {result.elapsed_seconds * 1000:.1f} ms")
        for mapping in result.mappings[:3]:
            rendered = ", ".join(f"{q}->{r}" for q, r in sorted(mapping.items()))
            violations = validate_mapping(mapping, query, hosting, constraint)
            status = "valid" if not violations else f"INVALID: {violations}"
            print(f"    {rendered}   [{status}]")
        print()


if __name__ == "__main__":
    main()
