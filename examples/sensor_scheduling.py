#!/usr/bin/env python3
"""Share a sensor-network testbed between applications over time (snBench scenario).

Scenario (paper §III and §VIII): "a sensor network in which it is desirable to
locate a subset of sensors that possess certain capabilities", combined with
the scheduling follow-up work — "resources once assigned would not be
available for some amount of time", so the embedding service must find "a
window of time in which some feasible embedding is available".

The infrastructure is a transit-stub field deployment: gateway (transit)
nodes with stub clusters of sensors.  Three applications request sensor
sub-topologies with capability constraints; the scheduler books each request
into the earliest time window whose remaining sensors can host it, and the
hierarchical embedder shows how a per-building (per-domain) NETEMBED server
would have answered the same queries.

Run with:  python examples/sensor_scheduling.py
"""

from __future__ import annotations

from repro import QueryNetwork
from repro.core import LNS
from repro.extensions import EmbeddingScheduler, HierarchicalEmbedder, partition_by_attribute
from repro.topology import transit_stub
from repro.utils.rng import as_rng


def build_sensor_field():
    """A transit-stub testbed whose stub nodes are sensors with capabilities."""
    field = transit_stub(num_transit_domains=2, transit_size=3,
                         stubs_per_transit_node=2, stub_size=4, rng=11)
    rng = as_rng(17)
    for node in field.nodes():
        if field.get_node_attr(node, "tier") == "stub":
            field.update_node(
                node,
                hasCamera=rng.random() < 0.4,
                hasTemperature=rng.random() < 0.8,
                batteryLevel=round(rng.uniform(0.2, 1.0), 2),
            )
    return field


def monitoring_request(name: str, sensors: int, needs_camera: bool) -> QueryNetwork:
    """A star of sensors reporting to one aggregator, all within a delay budget."""
    query = QueryNetwork(name)
    query.add_node("aggregator")
    for index in range(sensors):
        sensor = f"sensor{index}"
        query.add_node(sensor, needsCamera=needs_camera)
        query.add_edge("aggregator", sensor, maxDelay=40.0)
    return query


def main() -> None:
    field = build_sensor_field()
    print(f"sensor field: {field.num_nodes} nodes, {field.num_edges} links, "
          f"{sum(1 for n in field.nodes() if field.get_node_attr(n, 'tier') == 'stub')} sensors\n")

    delay_budget = "rEdge.avgDelay <= vEdge.maxDelay"
    capability = ("isBoundTo(vNode.needsCamera, rNode.hasCamera)"
                  " || vNode.needsCamera != true")

    # ------------------------------------------------------------------ #
    # Time-shared allocation: three applications, slotted schedule.
    # ------------------------------------------------------------------ #
    scheduler = EmbeddingScheduler(field, algorithm=LNS(), horizon=12)
    requests = [
        ("air-quality", monitoring_request("air-quality", sensors=3,
                                           needs_camera=False), 3),
        ("intrusion-detection", monitoring_request("intrusion", sensors=2,
                                                   needs_camera=True), 2),
        ("hvac-tuning", monitoring_request("hvac", sensors=4,
                                           needs_camera=False), 4),
    ]
    print("time-slotted schedule:")
    for label, query, duration in requests:
        outcome = scheduler.schedule(query, constraint=delay_budget,
                                     duration=duration)
        if outcome.scheduled:
            booking = outcome.booking
            sensors = ", ".join(f"{q}->{r}" for q, r in sorted(booking.mapping.items()))
            print(f"  {label:>20}: slots [{booking.start}, {booking.end}) on {sensors}")
        else:
            print(f"  {label:>20}: could not be scheduled within the horizon")
    print(f"  bookings held: {len(scheduler.calendar)}\n")

    # ------------------------------------------------------------------ #
    # Hierarchical (per-domain) embedding of the camera request.
    # ------------------------------------------------------------------ #
    domains = partition_by_attribute(field, "domain")
    embedder = HierarchicalEmbedder(field, domains, algorithm=LNS())
    camera_query = monitoring_request("camera-survey", sensors=2, needs_camera=True)
    outcome = embedder.embed(camera_query, constraint=delay_budget,
                             node_constraint=capability, max_results=1)
    print("hierarchical embedding of the camera survey:")
    print(f"  domains tried: {[o.domain for o in outcome.domain_outcomes]}")
    if outcome.found:
        where = outcome.winning_domain
        print(f"  placed {'globally' if outcome.used_global_fallback else f'inside {where}'}: "
              + ", ".join(f"{q}->{r}" for q, r in sorted(outcome.result.first.items())))
    else:
        print("  no domain (nor the global view) can host the survey")


if __name__ == "__main__":
    main()
