#!/usr/bin/env python3
"""Run the asyncio serving tier under open-loop Poisson load.

Scenario: the NETEMBED service is long-lived and shared.  Many tenants fire
embedding requests at it on *their* schedule (open loop) — not waiting for
the previous answer — so a slow engine cannot make the offered load go
away.  The serving tier's job is to stay up and useful anyway:

* a **bounded admission queue** turns overload into structured ``shed``
  responses instead of unbounded memory growth;
* **per-tenant QoS** keeps a greedy tenant (here: ``batchfarm``, rate-limited
  to 3 req/s) from starving the interactive one;
* **deadlines** are enforced before execution — a request that cannot finish
  in time is refused instantly, not worked on uselessly;
* the **metrics endpoint** folds engine, cache and admission counters into
  one consistent snapshot.

Everything runs in this one process: the server on an ephemeral loopback
port, the clients through :class:`AsyncNetEmbedClient`, the traffic from a
seeded Poisson arrival trace, so the run is reproducible.

Run with:  python examples/serve_async.py
"""

from __future__ import annotations

import asyncio
from collections import Counter

from repro.server import (
    AdmissionConfig,
    AsyncNetEmbedClient,
    EmbeddingServer,
    ServerConfig,
    ServiceRegistry,
    TenantPolicy,
)
from repro.topology import synthetic_planetlab_trace
from repro.utils.rng import as_rng
from repro.workloads import poisson_arrivals, subgraph_query


async def run() -> None:
    rng = as_rng(11)

    # 1. The served infrastructure: a PlanetLab-like measured hosting model.
    planetlab = synthetic_planetlab_trace(num_sites=24, rng=rng)
    print(f"hosting model: {planetlab.num_nodes} sites, "
          f"{planetlab.num_edges} measured links")

    # 2. The serving tier, wired through its composition root: a bounded
    #    queue of 8, one engine worker (so overload is easy to provoke),
    #    and the batch tenant capped at 3 requests/second.
    config = ServerConfig(
        default_timeout=10.0,
        engine_workers=1,
        admission=AdmissionConfig(
            max_queue_depth=8,
            tenants={"batchfarm": TenantPolicy(rate=3.0, burst=3)},
        ),
    )
    registry = ServiceRegistry(config)
    registry.service.register_network(planetlab, name="planetlab")

    async with EmbeddingServer(registry) as server:
        print(f"serving tier up on {server.address} "
              f"(queue depth 8, 1 engine worker)")

        # 3. The recurring workloads: small subgraph queries with ±25%
        #    delay windows, all of which the hosting model can satisfy.
        workloads = [subgraph_query(planetlab, size, slack=0.25, rng=rng)
                     for size in (4, 5, 6)]

        # 4. Open-loop Poisson traffic, far above 1-worker capacity:
        #    two tenants, ~20 requests/second for two seconds.
        trace = list(poisson_arrivals(
            rate=20.0, horizon=2.0,
            tenants=["interactive", "batchfarm"], rng=7))
        print(f"open-loop Poisson trace: {len(trace)} arrivals over 2.0s "
              f"(tenants: interactive, batchfarm)")

        async def fire(arrival):
            await asyncio.sleep(arrival.offset)
            workload = workloads[arrival.index % len(workloads)]
            priority = ("interactive" if arrival.tenant == "interactive"
                        else "batch")
            return arrival.tenant, await client.embed(
                workload.query, constraint=workload.constraint,
                algorithm="ECF", max_results=1,
                tenant=arrival.tenant, priority=priority, deadline=1.5)

        async with await AsyncNetEmbedClient.connect(
                server.host, server.port) as client:
            responses = await asyncio.gather(*(fire(a) for a in trace))
            metrics = await client.metrics()

    # 5. What happened, per tenant: everything was answered — some with an
    #    embedding, the rest with a structured shed (and its reason).
    outcome = Counter()
    reasons = Counter()
    for tenant, response in responses:
        outcome[(tenant, response["kind"])] += 1
        if response["kind"] == "shed":
            reasons[response["reason"]] += 1
    for tenant in ("interactive", "batchfarm"):
        served = outcome[(tenant, "result")]
        shed = outcome[(tenant, "shed")]
        print(f"  {tenant:<12} {served:3d} served, {shed:3d} shed")
    print("shed reasons: "
          + (", ".join(f"{reason} x{n}" for reason, n in reasons.most_common())
             or "none"))

    # 6. The metrics document agrees with what the clients saw.
    admission = metrics["admission"]
    cache = metrics["service"]["plan_cache"]
    print(f"metrics: offered={admission['offered']} "
          f"admitted={admission['admitted']} shed={admission['shed_total']} "
          f"completed={admission['completed']}")
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(the three workloads compile once each)")
    consistent = (
        admission["offered"] == admission["admitted"] + admission["shed_total"]
        and admission["offered"] == len(trace)
        and sum(outcome[(t, "result")] for t in ("interactive", "batchfarm"))
        == admission["completed"])
    print(f"accounting consistent: {consistent}")


if __name__ == "__main__":
    asyncio.run(run())
