"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` can fall back to a legacy editable install when PEP-660
editable wheels cannot be built (offline machines without ``wheel``).
"""

from setuptools import setup

setup()
