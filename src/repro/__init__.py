"""NETEMBED reproduction: a network resource mapping (virtual network embedding) service.

This package reproduces *"NETEMBED: A Network Resource Mapping Service for
Distributed Applications"* (Londoño & Bestavros).  Given a **hosting network**
(a real infrastructure with measured node/link attributes) and a **query
network** (a virtual topology with constraints), NETEMBED finds one or all
injective node mappings that preserve the query topology and satisfy a
user-supplied constraint expression.

Quick start::

    from repro import (
        HostingNetwork, QueryNetwork, ConstraintExpression, ECF, NetEmbedService,
    )

    hosting = HostingNetwork("lab")
    for node in "abc":
        hosting.add_node(node, osType="linux")
    hosting.add_edge("a", "b", avgDelay=10.0)
    hosting.add_edge("b", "c", avgDelay=50.0)

    query = QueryNetwork("experiment")
    query.add_node("x")
    query.add_node("y")
    query.add_edge("x", "y", maxDelay=20.0)

    request = SearchRequest.build(query, hosting,
                                  constraint="rEdge.avgDelay <= vEdge.maxDelay")
    result = ECF().request(request)
    print(result.status, result.mappings)

    # Repeated traffic against the same hosting model? Compile once, run many:
    plan = ECF().prepare(request)
    result = plan.execute()

Subpackages
-----------
``repro.api``
    The unified request/response API: :class:`SearchRequest`/:class:`Budget`,
    the capability-based :class:`AlgorithmRegistry` and selection policies.
``repro.core``
    The three NETEMBED algorithms (ECF, RWB, LNS), filters and results.
``repro.graphs``
    Attributed hosting/query networks and GraphML I/O.
``repro.constraints``
    The constraint expression language.
``repro.topology``
    PlanetLab-like, BRITE-like, regular and composite topology generators.
``repro.workloads``
    Query/workload generators mirroring the paper's experiments.
``repro.service``
    The NETEMBED service layer (registry, monitoring, reservations, sessions).
``repro.server``
    The asyncio serving tier: admission control, multi-tenant QoS, the
    JSON-lines front door and its async client (``repro serve``).
``repro.baselines``
    Reimplementations of the prior approaches NETEMBED is compared against.
``repro.extensions``
    Follow-on features sketched in §VIII (path mapping, optimisation,
    scheduling, hierarchical embedding).
``repro.analysis``
    The experiment harness that regenerates every figure of §VII.
"""

from repro.api import (
    AlgorithmRegistry,
    Budget,
    Capability,
    PaperSelectionPolicy,
    SearchRequest,
    SelectionPolicy,
    default_registry,
    register_algorithm,
)
from repro.constraints import ConstraintExpression
from repro.core import (
    ALGORITHMS,
    ECF,
    LNS,
    RWB,
    EmbeddingResult,
    Mapping,
    ResultStatus,
    is_valid_mapping,
    make_algorithm,
    validate_mapping,
)
from repro.graphs import (
    HostingNetwork,
    Network,
    QueryNetwork,
    read_graphml,
    write_graphml,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ConstraintExpression",
    "SearchRequest",
    "Budget",
    "Capability",
    "AlgorithmRegistry",
    "default_registry",
    "register_algorithm",
    "SelectionPolicy",
    "PaperSelectionPolicy",
    "ECF",
    "RWB",
    "LNS",
    "ALGORITHMS",
    "make_algorithm",
    "EmbeddingResult",
    "ResultStatus",
    "Mapping",
    "validate_mapping",
    "is_valid_mapping",
    "Network",
    "HostingNetwork",
    "QueryNetwork",
    "read_graphml",
    "write_graphml",
    "NetEmbedService",
]


def __getattr__(name: str):
    # NetEmbedService is imported lazily to keep the base import light and to
    # avoid import cycles while the service subpackage itself imports core.
    if name == "NetEmbedService":
        from repro.service import NetEmbedService
        return NetEmbedService
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
