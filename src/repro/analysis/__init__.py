"""Experiment harness: drivers, statistics and reporting for §VII's figures."""

from repro.analysis.experiments import (
    DEFAULT_TIMEOUT,
    EXPERIMENTS,
    aggregate_series,
    baseline_comparison_experiment,
    brite_experiment,
    clique_experiment,
    composite_experiment,
    default_algorithms,
    filter_ablation_experiment,
    infeasible_experiment,
    ordering_ablation_experiment,
    planetlab_subgraph_experiment,
    result_quality_distribution,
    result_quality_experiment,
    run_workloads,
)
from repro.analysis.metrics import Summary, group_summaries, proportions, summarize
from repro.analysis.reporting import (
    csv_string,
    format_figure,
    format_table,
    pivot_series,
    write_csv,
)

__all__ = [
    "DEFAULT_TIMEOUT",
    "EXPERIMENTS",
    "run_workloads",
    "aggregate_series",
    "default_algorithms",
    "planetlab_subgraph_experiment",
    "infeasible_experiment",
    "brite_experiment",
    "clique_experiment",
    "composite_experiment",
    "result_quality_experiment",
    "result_quality_distribution",
    "baseline_comparison_experiment",
    "ordering_ablation_experiment",
    "filter_ablation_experiment",
    "Summary",
    "summarize",
    "group_summaries",
    "proportions",
    "format_table",
    "format_figure",
    "pivot_series",
    "write_csv",
    "csv_string",
]
