"""Experiment drivers: one function per figure of the paper's §VII.

Every driver follows the same pattern:

1. build (or accept) a hosting network;
2. build the figure's query workload through :mod:`repro.workloads`;
3. run the requested algorithms on every workload with a per-query timeout;
4. return the raw per-query rows (dictionaries) — aggregation into the
   figure's series is done by :func:`aggregate_series` /
   :func:`repro.analysis.metrics.group_summaries` so the benchmarks and
   EXPERIMENTS.md can both consume the same data.

All drivers accept a ``scaled`` flag: ``True`` (default) uses the
benchmark-sized parameters from :data:`repro.workloads.suites.SUITES`,
``False`` uses the paper-sized ones (expect much longer runtimes).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import repro.baselines  # noqa: F401 — registers the baselines with the registry
from repro.api import SearchRequest, default_registry
from repro.core import ECF, EmbeddingAlgorithm
from repro.graphs.hosting import HostingNetwork
from repro.analysis.metrics import group_summaries, proportions
from repro.utils.rng import RandomSource, as_rng
from repro.workloads import (
    SUITES,
    Workload,
    brite_host,
    build_clique_suite,
    build_composite_suite,
    build_subgraph_suite,
    make_globally_infeasible,
    planetlab_host,
)

#: Default per-query wall-clock budget (seconds) at benchmark scale.
DEFAULT_TIMEOUT = 5.0


def default_algorithms(rng: RandomSource = None) -> List[EmbeddingAlgorithm]:
    """Fresh instances of the three NETEMBED algorithms (RWB seeded from *rng*)."""
    registry = default_registry()
    seed = as_rng(rng).getrandbits(32) if rng is not None else None
    return [registry.create("ECF"), registry.create("RWB", rng=seed),
            registry.create("LNS")]


# --------------------------------------------------------------------------- #
# Generic runner
# --------------------------------------------------------------------------- #

def run_workloads(hosting: HostingNetwork, workloads: Sequence[Workload],
                  algorithms: Sequence[EmbeddingAlgorithm],
                  timeout: float = DEFAULT_TIMEOUT,
                  max_results: Optional[int] = None,
                  extra_fields: Optional[Dict[str, object]] = None) -> List[Dict]:
    """Run every algorithm on every workload; one row per (workload, algorithm).

    Row fields: ``algorithm``, ``size`` (query nodes), ``edges`` (query
    edges), ``status``, ``found`` (count), ``total_ms``, ``first_ms`` (None if
    nothing found), ``timed_out``, plus search-statistics counters and any
    *extra_fields*.
    """
    rows: List[Dict] = []
    for workload in workloads:
        for algorithm in algorithms:
            result = algorithm.request(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                timeout=timeout, max_results=max_results))
            row = {
                "algorithm": algorithm.name,
                "size": workload.query.num_nodes,
                "edges": workload.query.num_edges,
                "status": result.status.value,
                "found": result.count,
                "total_ms": result.elapsed_seconds * 1000.0,
                "first_ms": (result.time_to_first_seconds * 1000.0
                             if result.time_to_first_seconds is not None else None),
                "timed_out": result.timed_out,
                "nodes_expanded": result.stats.nodes_expanded,
                "candidates_considered": result.stats.candidates_considered,
                "constraint_evaluations": result.stats.constraint_evaluations,
                "filter_entries": result.stats.filter_entries,
                "backtracks": result.stats.backtracks,
                "description": workload.description,
            }
            if extra_fields:
                row.update(extra_fields)
            rows.append(row)
    return rows


def aggregate_series(rows: Sequence[Dict], value_field: str = "total_ms",
                     key_fields: Sequence[str] = ("algorithm", "size")) -> List[Dict]:
    """Aggregate raw rows into per-(algorithm, size) mean ± CI series."""
    return group_summaries(rows, key_fields, value_field)


# --------------------------------------------------------------------------- #
# Fig. 8 / Fig. 9 — PlanetLab subgraph queries
# --------------------------------------------------------------------------- #

def planetlab_subgraph_experiment(seed: RandomSource = 0, scaled: bool = True,
                                  timeout: float = DEFAULT_TIMEOUT,
                                  max_results: Optional[int] = None) -> List[Dict]:
    """Figs. 8 and 9: ECF/RWB/LNS on random PlanetLab subgraph queries."""
    rng = as_rng(seed)
    scale = SUITES["fig8"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_subgraph_suite(hosting, scale, rng=rng)
    return run_workloads(hosting, workloads, default_algorithms(rng),
                         timeout=timeout, max_results=max_results,
                         extra_fields={"experiment": "fig8"})


# --------------------------------------------------------------------------- #
# Fig. 10 — feasible vs infeasible queries
# --------------------------------------------------------------------------- #

def infeasible_experiment(seed: RandomSource = 0, scaled: bool = True,
                          timeout: float = DEFAULT_TIMEOUT) -> List[Dict]:
    """Fig. 10: matching vs (provably) non-matching queries, per algorithm."""
    rng = as_rng(seed)
    scale = SUITES["fig10"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    feasible = build_subgraph_suite(hosting, scale, rng=rng)
    rows: List[Dict] = []
    rows.extend(run_workloads(hosting, feasible, default_algorithms(rng),
                              timeout=timeout,
                              extra_fields={"experiment": "fig10", "feasible": True}))
    infeasible = [make_globally_infeasible(w, hosting, num_edges=2, rng=rng)
                  for w in feasible]
    rows.extend(run_workloads(hosting, infeasible, default_algorithms(rng),
                              timeout=timeout,
                              extra_fields={"experiment": "fig10", "feasible": False}))
    return rows


# --------------------------------------------------------------------------- #
# Figs. 11 / 12 — BRITE hosting networks
# --------------------------------------------------------------------------- #

def brite_experiment(seed: RandomSource = 0, scaled: bool = True,
                     timeout: float = DEFAULT_TIMEOUT,
                     host_sizes: Optional[Sequence[int]] = None) -> List[Dict]:
    """Figs. 11 and 12: subgraph queries over BRITE power-law hosts of several sizes.

    The paper uses hosts of 1500/2000/2500 nodes; at benchmark scale the same
    1 : 1.33 : 1.67 ratio is kept over a smaller base size.
    """
    rng = as_rng(seed)
    scale = SUITES["fig11"].scale(scaled)
    if host_sizes is None:
        base = scale.hosting_nodes
        host_sizes = [base, int(base * 4 / 3), int(base * 5 / 3)]
    rows: List[Dict] = []
    for host_size in host_sizes:
        hosting = brite_host(host_size, rng=rng)
        sizes = [s for s in scale.query_sizes if s <= host_size]
        # Sparse power-law hosts leave tree-like queries loosely constrained;
        # the paper's BRITE queries are correspondingly tighter, so use a
        # narrower delay window than the PlanetLab suite.
        workloads = build_subgraph_suite(hosting, type(scale)(
            hosting_nodes=host_size, query_sizes=tuple(sizes),
            queries_per_size=scale.queries_per_size), slack=0.1, rng=rng)
        rows.extend(run_workloads(hosting, workloads, default_algorithms(rng),
                                  timeout=timeout,
                                  extra_fields={"experiment": "fig11",
                                                "host_size": host_size,
                                                "host_edges": hosting.num_edges}))
    return rows


# --------------------------------------------------------------------------- #
# Fig. 13 — clique queries
# --------------------------------------------------------------------------- #

def clique_experiment(seed: RandomSource = 0, scaled: bool = True,
                      timeout: float = DEFAULT_TIMEOUT,
                      delay_window=(10.0, 100.0)) -> List[Dict]:
    """Fig. 13: cliques of increasing size against the PlanetLab-like host.

    Runs each algorithm twice per clique: once capped at the first match
    (Fig. 13b) and once uncapped under the timeout (Fig. 13a).  Rows carry a
    ``mode`` field ("first" / "all").
    """
    rng = as_rng(seed)
    scale = SUITES["fig13"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_clique_suite(scale, *delay_window)
    rows: List[Dict] = []
    rows.extend(run_workloads(hosting, workloads, default_algorithms(rng),
                              timeout=timeout, max_results=1,
                              extra_fields={"experiment": "fig13", "mode": "first"}))
    rows.extend(run_workloads(hosting, workloads, default_algorithms(rng),
                              timeout=timeout, max_results=None,
                              extra_fields={"experiment": "fig13", "mode": "all"}))
    return rows


# --------------------------------------------------------------------------- #
# Fig. 14 — composite queries
# --------------------------------------------------------------------------- #

def composite_experiment(seed: RandomSource = 0, scaled: bool = True,
                         timeout: float = DEFAULT_TIMEOUT) -> List[Dict]:
    """Fig. 14: two-level composite queries, regular vs irregular constraints.

    Only the time to the first match matters (the paper notes there are
    usually thousands of matches), so every run is capped at one result.
    Rows carry ``constraints`` = "regular" / "irregular".
    """
    rng = as_rng(seed)
    scale = SUITES["fig14"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    rows: List[Dict] = []
    for irregular, label in ((False, "regular"), (True, "irregular")):
        workloads = build_composite_suite(scale, irregular=irregular, rng=rng)
        rows.extend(run_workloads(hosting, workloads, default_algorithms(rng),
                                  timeout=timeout, max_results=1,
                                  extra_fields={"experiment": "fig14",
                                                "constraints": label}))
    return rows


# --------------------------------------------------------------------------- #
# Fig. 15 — quality (classification) of returned results
# --------------------------------------------------------------------------- #

def result_quality_experiment(seed: RandomSource = 0, scaled: bool = True,
                              timeout: float = 1.0) -> List[Dict]:
    """Fig. 15: probability of complete / partial / inconclusive per query class.

    A deliberately tight timeout is used so the partial/inconclusive outcomes
    the figure is about actually occur at benchmark scale.
    """
    rng = as_rng(seed)
    rows: List[Dict] = []

    fig8 = SUITES["fig8"].scale(scaled)
    hosting = planetlab_host(fig8.hosting_nodes, rng=rng)
    subgraphs = build_subgraph_suite(hosting, fig8, rng=rng)
    rows.extend(run_workloads(hosting, subgraphs, default_algorithms(rng),
                              timeout=timeout,
                              extra_fields={"experiment": "fig15",
                                            "query_class": "subgraph"}))

    fig13 = SUITES["fig13"].scale(scaled)
    cliques = build_clique_suite(fig13)
    rows.extend(run_workloads(hosting, cliques, default_algorithms(rng),
                              timeout=timeout,
                              extra_fields={"experiment": "fig15",
                                            "query_class": "clique"}))

    fig14 = SUITES["fig14"].scale(scaled)
    composites = build_composite_suite(fig14, irregular=False, rng=rng)
    rows.extend(run_workloads(hosting, composites, default_algorithms(rng),
                              timeout=timeout,
                              extra_fields={"experiment": "fig15",
                                            "query_class": "composite"}))
    return rows


def result_quality_distribution(rows: Sequence[Dict]) -> List[Dict]:
    """Aggregate Fig. 15 rows into per-(query_class, algorithm) status fractions."""
    return proportions(rows, ("query_class", "algorithm"), "status")


# --------------------------------------------------------------------------- #
# §VII-F — comparison with previously published techniques
# --------------------------------------------------------------------------- #

def baseline_comparison_experiment(seed: RandomSource = 0, scaled: bool = True,
                                   timeout: float = DEFAULT_TIMEOUT,
                                   query_sizes: Optional[Sequence[int]] = None) -> List[Dict]:
    """§VII-F: NETEMBED algorithms vs reimplemented prior techniques.

    Every solver — ECF, RWB, LNS plus the four baselines — looks for a single
    feasible embedding of the same subgraph queries, so success rate and time
    to first match are directly comparable.
    """
    rng = as_rng(seed)
    scale = SUITES["fig8"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    sizes = list(query_sizes) if query_sizes is not None else list(scale.query_sizes)[:4]
    workloads = build_subgraph_suite(
        hosting, type(scale)(hosting_nodes=scale.hosting_nodes,
                             query_sizes=tuple(sizes),
                             queries_per_size=scale.queries_per_size), rng=rng)
    registry = default_registry()
    solvers: List[EmbeddingAlgorithm] = default_algorithms(rng)
    solvers.extend([
        registry.create("bruteforce"),
        registry.create("annealing", max_iterations=4000, restarts=2,
                        rng=rng.getrandbits(32)),
        registry.create("genetic", population_size=24, generations=60,
                        rng=rng.getrandbits(32)),
        registry.create("stress"),
    ])
    return run_workloads(hosting, workloads, solvers, timeout=timeout, max_results=1,
                         extra_fields={"experiment": "baselines"})


# --------------------------------------------------------------------------- #
# Ablations (design-choice benchmarks called out in DESIGN.md)
# --------------------------------------------------------------------------- #

def ordering_ablation_experiment(seed: RandomSource = 0, scaled: bool = True,
                                 timeout: float = DEFAULT_TIMEOUT) -> List[Dict]:
    """Lemma 1 ablation: ECF with candidate-count, connectivity and natural orderings."""
    rng = as_rng(seed)
    scale = SUITES["fig8"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    workloads = build_subgraph_suite(hosting, scale, rng=rng)
    algorithms = [ECF(ordering="candidate-count"), ECF(ordering="connectivity"),
                  ECF(ordering="natural")]
    rows: List[Dict] = []
    for algorithm in algorithms:
        label = f"ECF[{algorithm.ordering}]"
        for workload in workloads:
            result = algorithm.request(SearchRequest.build(
                workload.query, hosting, constraint=workload.constraint,
                timeout=timeout, max_results=1))
            rows.append({
                "algorithm": label,
                "ordering": algorithm.ordering,
                "size": workload.query.num_nodes,
                "status": result.status.value,
                "total_ms": result.elapsed_seconds * 1000.0,
                "first_ms": (result.time_to_first_seconds * 1000.0
                             if result.time_to_first_seconds is not None else None),
                "nodes_expanded": result.stats.nodes_expanded,
                "experiment": "ablation-ordering",
            })
    return rows


def filter_ablation_experiment(seed: RandomSource = 0, scaled: bool = True,
                               timeout: float = DEFAULT_TIMEOUT) -> List[Dict]:
    """Filter ablation: ECF (with filter matrices) vs the unfiltered brute-force DFS."""
    rng = as_rng(seed)
    scale = SUITES["fig8"].scale(scaled)
    hosting = planetlab_host(scale.hosting_nodes, rng=rng)
    # Keep the sizes modest: the whole point is that brute force blows up.
    sizes = tuple(list(scale.query_sizes)[:3])
    workloads = build_subgraph_suite(
        hosting, type(scale)(hosting_nodes=scale.hosting_nodes, query_sizes=sizes,
                             queries_per_size=scale.queries_per_size), rng=rng)
    algorithms = [ECF(), default_registry().create("bruteforce")]
    return run_workloads(hosting, workloads, algorithms, timeout=timeout, max_results=1,
                         extra_fields={"experiment": "ablation-filters"})


#: Registry used by EXPERIMENTS.md tooling and the benchmark files.
EXPERIMENTS: Dict[str, Callable[..., List[Dict]]] = {
    "fig8": planetlab_subgraph_experiment,
    "fig9": planetlab_subgraph_experiment,    # same raw data, different aggregation
    "fig10": infeasible_experiment,
    "fig11": brite_experiment,
    "fig12": brite_experiment,                # first-match aggregation of fig11 data
    "fig13": clique_experiment,
    "fig14": composite_experiment,
    "fig15": result_quality_experiment,
    "baselines": baseline_comparison_experiment,
    "ablation-ordering": ordering_ablation_experiment,
    "ablation-filters": filter_ablation_experiment,
}
