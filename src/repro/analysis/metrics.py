"""Timing statistics used by the experiment harness.

The paper reports, for every figure, the *mean* response time per query size
together with a confidence interval over the 5 queries generated per size
(§VII-B).  These helpers compute exactly that: means, standard deviations and
Student-t confidence intervals over small samples, plus a generic
``summarize`` used when building the series that back each figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

try:  # scipy is available in the target environment, but keep a fallback.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None

#: Two-sided 97.5 % Student-t quantiles for small degrees of freedom, used when
#: scipy is unavailable.  Index = degrees of freedom (1-based); beyond the
#: table the normal quantile 1.96 is used.
_T_TABLE = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
            2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
            2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
            2.048, 2.045, 2.042]


def _t_quantile(degrees_of_freedom: int, confidence: float = 0.95) -> float:
    if degrees_of_freedom < 1:
        return float("nan")
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, degrees_of_freedom))
    if confidence != 0.95:
        # Without scipy only the 95 % table is available; fall back to normal.
        return 1.96
    if degrees_of_freedom <= len(_T_TABLE):
        return _T_TABLE[degrees_of_freedom - 1]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample of response times (or any numbers)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the confidence interval around the mean."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize(values: Iterable[float], confidence: float = 0.95) -> Summary:
    """Mean, spread and a Student-t confidence interval of *values*.

    A single observation gets a degenerate (zero-width) interval; an empty
    sample raises ``ValueError`` because a figure point cannot be built from
    nothing.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return Summary(count=1, mean=mean, std=0.0, minimum=mean, maximum=mean,
                       ci_low=mean, ci_high=mean)
    std = float(data.std(ddof=1))
    half = _t_quantile(data.size - 1, confidence) * std / math.sqrt(data.size)
    return Summary(count=int(data.size), mean=mean, std=std,
                   minimum=float(data.min()), maximum=float(data.max()),
                   ci_low=mean - half, ci_high=mean + half)


def group_summaries(rows: Sequence[Dict], key_fields: Sequence[str], value_field: str,
                    confidence: float = 0.95) -> List[Dict]:
    """Group *rows* by *key_fields* and summarise *value_field* within each group.

    Rows whose value is ``None`` (e.g. time-to-first for a query with no
    match) are dropped from that group's sample; groups that end up empty are
    omitted.  The output rows carry the key fields plus the summary columns
    (``mean``, ``std``, ``ci_low``, ``ci_high``, ``count``) and are sorted by
    the key fields.
    """
    groups: Dict[tuple, List[float]] = {}
    for row in rows:
        key = tuple(row[field] for field in key_fields)
        value = row.get(value_field)
        if value is None:
            continue
        groups.setdefault(key, []).append(float(value))

    out: List[Dict] = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        summary = summarize(groups[key], confidence)
        record = {field: part for field, part in zip(key_fields, key)}
        record.update({
            "count": summary.count,
            "mean": summary.mean,
            "std": summary.std,
            "ci_low": summary.ci_low,
            "ci_high": summary.ci_high,
            "min": summary.minimum,
            "max": summary.maximum,
        })
        out.append(record)
    return out


def proportions(rows: Sequence[Dict], key_fields: Sequence[str], category_field: str
                ) -> List[Dict]:
    """Per-group distribution of a categorical field (used for Fig. 15).

    Returns one row per group with a column per category value holding the
    fraction of the group's rows in that category.
    """
    groups: Dict[tuple, List[str]] = {}
    categories = set()
    for row in rows:
        key = tuple(row[field] for field in key_fields)
        value = str(row[category_field])
        categories.add(value)
        groups.setdefault(key, []).append(value)

    out = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        values = groups[key]
        record = {field: part for field, part in zip(key_fields, key)}
        record["count"] = len(values)
        for category in sorted(categories):
            record[category] = values.count(category) / len(values)
        out.append(record)
    return out
