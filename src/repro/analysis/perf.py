"""Machine-readable performance records for the core-engine benchmarks.

``benchmarks/bench_perf_core.py`` times the bitset candidate engine against
the preserved set-semantics reference engine and writes the numbers through
this module as ``BENCH_core.json`` — one JSON document per run, so every
perf-oriented PR leaves a recorded trajectory instead of a claim in prose.

The document shape (``schema_version`` 1)::

    {
      "schema_version": 1,
      "workload": {...},            # scale name, hosting size, query sizes
      "environment": {...},         # python / platform fingerprint
      "engines": [PerfSample, ...], # one aggregate per engine
      "comparison": {               # present when a baseline engine ran
        "baseline": "ECF-reference",
        "candidate": "ECF",
        "speedup_total": 3.7,       # combined filter-build + search time
        "speedup_filter_build": ...,
        "speedup_search": ...
      }
    }
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence

SCHEMA_VERSION = 1


@dataclass
class PerfSample:
    """Aggregate timing of one engine over one workload suite."""

    engine: str
    queries: int
    mappings_found: int
    #: Seconds spent in build_filters across all queries.
    filter_build_seconds: float
    #: Seconds spent in the tree search proper (total minus filter build).
    search_seconds: float
    #: Combined wall-clock seconds (filter build + search).
    total_seconds: float
    nodes_expanded: int
    #: Search-tree nodes expanded per second of search time.
    nodes_per_second: float
    filter_entries: int
    constraint_evaluations: int
    timed_out_queries: int

    @classmethod
    def from_results(cls, engine: str, results: Sequence) -> "PerfSample":
        """Aggregate a list of :class:`~repro.core.result.EmbeddingResult`."""
        build = sum(r.stats.filter_build_seconds for r in results)
        total = sum(r.elapsed_seconds for r in results)
        search = max(total - build, 0.0)
        expanded = sum(r.stats.nodes_expanded for r in results)
        return cls(
            engine=engine,
            queries=len(results),
            mappings_found=sum(r.count for r in results),
            filter_build_seconds=build,
            search_seconds=search,
            total_seconds=total,
            nodes_expanded=expanded,
            nodes_per_second=expanded / search if search > 0 else 0.0,
            filter_entries=sum(r.stats.filter_entries for r in results),
            constraint_evaluations=sum(r.stats.constraint_evaluations
                                       for r in results),
            timed_out_queries=sum(1 for r in results if r.timed_out),
        )


def speedup(baseline: PerfSample, candidate: PerfSample) -> Dict[str, float]:
    """Baseline-over-candidate time ratios (> 1 means the candidate is faster)."""
    def ratio(base: float, cand: float) -> float:
        return base / cand if cand > 0 else float("inf")

    return {
        "baseline": baseline.engine,
        "candidate": candidate.engine,
        "speedup_total": ratio(baseline.total_seconds, candidate.total_seconds),
        "speedup_filter_build": ratio(baseline.filter_build_seconds,
                                      candidate.filter_build_seconds),
        "speedup_search": ratio(baseline.search_seconds, candidate.search_seconds),
    }


def environment_info() -> Dict[str, str]:
    """A small fingerprint of the machine the numbers were taken on."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def build_report(samples: Sequence[PerfSample],
                 workload: Optional[Dict] = None,
                 comparison: Optional[Dict] = None) -> Dict:
    """Assemble the BENCH_core.json document (pure data, no I/O)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": dict(workload or {}),
        "environment": environment_info(),
        "engines": [asdict(sample) for sample in samples],
        "comparison": dict(comparison) if comparison else None,
    }


def write_bench_json(path, report: Dict) -> Path:
    """Write *report* as pretty-printed JSON; returns the written path.

    When the target is a default run's output location —
    ``<repo>/benchmarks/results/BENCH_*.json`` directly, not the committed
    ``smoke/``/``full/`` baseline subdirectories — the summary is mirrored to
    ``<repo>/BENCH_*.json`` so the latest numbers sit at the repo root
    (gitignored there; see ``.gitignore``).  Mirroring is best-effort: a
    read-only or unexpected layout never fails the benchmark itself.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    target.write_text(payload, encoding="utf-8")
    resolved = target.resolve()
    if (resolved.parent.name == "results"
            and resolved.parent.parent.name == "benchmarks"
            and resolved.name.startswith("BENCH_")):
        try:
            mirror = resolved.parent.parent.parent / resolved.name
            mirror.write_text(payload, encoding="utf-8")
        except OSError:  # pragma: no cover - mirroring is best-effort
            pass
    return target


def load_bench_json(path) -> Dict:
    """Read a previously written BENCH_core.json document."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
