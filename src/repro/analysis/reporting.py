"""Plain-text and CSV rendering of experiment results.

The paper presents its evaluation as line plots; the reproduction prints the
same series as aligned text tables (one row per query size, one column per
algorithm) so ``pytest benchmarks/ --benchmark-only`` output and
EXPERIMENTS.md can show them without a plotting dependency.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.1f}", title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        if value is None:
            return "-"
        return str(value)

    table = [[render(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(str(col)), *(len(row[i]) for row in table))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in table:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def pivot_series(series: Sequence[Dict], x_field: str = "size",
                 group_field: str = "algorithm", value_field: str = "mean") -> List[Dict]:
    """Pivot long-form series rows into one row per x value, one column per group.

    This matches the visual layout of the paper's figures: x axis = query
    size, one curve per algorithm.
    """
    groups = sorted({str(row[group_field]) for row in series})
    by_x: Dict[object, Dict] = {}
    for row in series:
        x = row[x_field]
        record = by_x.setdefault(x, {x_field: x})
        record[str(row[group_field])] = row.get(value_field)
    out = [by_x[x] for x in sorted(by_x, key=lambda v: (isinstance(v, str), v))]
    # Ensure all group columns exist on every row (missing = None).
    for record in out:
        for group in groups:
            record.setdefault(group, None)
    return out


def format_figure(series: Sequence[Dict], title: str, x_field: str = "size",
                  group_field: str = "algorithm", value_field: str = "mean",
                  unit: str = "ms") -> str:
    """The standard per-figure rendering: pivoted table with a captioned title."""
    pivoted = pivot_series(series, x_field=x_field, group_field=group_field,
                           value_field=value_field)
    caption = f"{title}  (values: {value_field} {unit})"
    return format_table(pivoted, title=caption)


def write_csv(rows: Sequence[Dict], path: Union[str, Path],
              columns: Optional[Sequence[str]] = None) -> Path:
    """Write dict rows to a CSV file; returns the path.

    The parent directory is created if needed, so benchmarks writing into
    ``benchmarks/results/`` work on a fresh clone.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("", encoding="utf-8")
        return path
    if columns is None:
        columns = list(rows[0].keys())
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
    return path


def csv_string(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows to a CSV string (used by tests and examples)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()
