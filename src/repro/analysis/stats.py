"""Shared sample statistics for benchmarks and the load-test harness.

This module is the single home of the latency math every benchmark and
harness scenario reports, hoisted out of ``benchmarks/bench_serving.py``
where two bugs lived:

* an **empty sample reported 0.0** for every percentile, so a run in which
  admission shed 100 % of requests printed p50/p95/p99 = 0 s — the best
  latency ever recorded — and sailed through the regression gate.  Here an
  empty sample answers ``None`` (JSON ``null``), and
  ``benchmarks/compare_bench.py`` treats a ``null`` latency metric as a
  gate *failure*, never a pass.
* the nearest-rank index used ``int(round(...))``, i.e. banker's rounding
  (``round(0.5) == 0``), biasing small-sample tail percentiles low.  The
  percentile here is the textbook **ceil-based nearest rank**: the q-th
  percentile of n sorted values is the value at rank ``ceil(q · n)``
  (1-based, clamped to ``[1, n]``) — the smallest sample value such that at
  least a fraction q of the sample is ≤ it.  It never interpolates and
  never rounds a tail rank *down*.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "percentile",
    "latency_block",
    "slip_block",
]


def percentile(values: Iterable[float], fraction: float) -> Optional[float]:
    """Ceil-based nearest-rank percentile; ``None`` for an empty sample.

    Parameters
    ----------
    values:
        The sample — any iterable.  Need not be pre-sorted (a sorted copy
        is taken).
    fraction:
        The percentile as a fraction in ``[0, 1]`` (0.95 = p95).

    Returns the element at 1-based rank ``ceil(fraction * len(values))``
    of the sorted sample (rank 1 for ``fraction = 0``), and ``None`` —
    never a fabricated 0.0 — when the sample is empty.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    if not ordered:
        return None
    rank = min(len(ordered), max(1, math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]


def latency_block(latencies: Iterable[float],
                  fractions: Sequence[float] = (0.50, 0.95, 0.99)) -> Dict:
    """The standard latency summary block of a benchmark report.

    ``{"served": n, "p50_seconds": …, "p95_seconds": …, "p99_seconds": …,
    "mean_seconds": …, "max_seconds": …}`` with every statistic ``None``
    when the sample is empty — an all-shed run must *look* like one.
    """
    sample: List[float] = sorted(latencies)
    block: Dict[str, object] = {"served": len(sample)}
    for fraction in fractions:
        label = f"p{round(fraction * 100):d}_seconds"
        block[label] = percentile(sample, fraction)
    block["mean_seconds"] = (sum(sample) / len(sample)) if sample else None
    block["max_seconds"] = sample[-1] if sample else None
    return block


def slip_block(slips: Iterable[float]) -> Dict:
    """Summary of per-request schedule slip (actual send − scheduled offset).

    Slip is the open-loop driver's own lag behind the trace schedule.  It is
    reported first-class because latency is measured from the *scheduled*
    offset: driver lag inflates the latency numbers (coordinated omission
    made visible) and this block says how much of that inflation is the
    driver's fault rather than the server's queue.
    """
    sample: List[float] = sorted(slips)
    return {
        "count": len(sample),
        "max_seconds": sample[-1] if sample else None,
        "mean_seconds": (sum(sample) / len(sample)) if sample else None,
        "p99_seconds": percentile(sample, 0.99),
        "total_seconds": sum(sample) if sample else 0.0,
    }
