"""The unified embedding API: request objects, the algorithm registry and
selection policies.

This package is the stable contract between callers and algorithms:

* :class:`SearchRequest` / :class:`Budget` — the immutable request model all
  entry points funnel into (validation and constraint coercion happen once,
  here, instead of in every algorithm);
* :class:`AlgorithmRegistry` / :func:`register_algorithm` /
  :class:`Capability` — capability-annotated discovery of every algorithm
  (the three NETEMBED searchers and the four baselines register themselves);
* :class:`SelectionPolicy` / :class:`PaperSelectionPolicy` — pluggable
  auto-selection consulting declared capabilities plus the paper's §VII-E
  guidance.

It deliberately does **not** import :mod:`repro.core`: the algorithm modules
import the registry to register themselves, so the dependency must point that
way only.
"""

from repro.api.registry import (
    AlgorithmInfo,
    AlgorithmRegistry,
    Capability,
    DuplicateAlgorithmError,
    UnknownAlgorithmError,
    default_registry,
    register_algorithm,
)
from repro.api.request import (
    UNLIMITED,
    Budget,
    SearchRequest,
    coerce_constraint,
)
from repro.api.selection import (
    FixedSelectionPolicy,
    PaperSelectionPolicy,
    SelectionPolicy,
    looks_regular,
)

__all__ = [
    "SearchRequest",
    "Budget",
    "UNLIMITED",
    "coerce_constraint",
    "AlgorithmRegistry",
    "AlgorithmInfo",
    "Capability",
    "DuplicateAlgorithmError",
    "UnknownAlgorithmError",
    "default_registry",
    "register_algorithm",
    "SelectionPolicy",
    "PaperSelectionPolicy",
    "FixedSelectionPolicy",
    "looks_regular",
]
