"""Capability-based algorithm registry.

The seed hardwired its algorithms twice: ``repro.core.ALGORITHMS`` held the
three NETEMBED algorithms, ``repro.baselines.BASELINES`` held the four
baselines, and the service's auto-selection was an if/elif chain over
isinstance-style knowledge.  :class:`AlgorithmRegistry` replaces all three:
every :class:`~repro.core.base.EmbeddingAlgorithm` subclass registers itself
with the :func:`register_algorithm` decorator, declaring *capabilities* —
machine-readable facts about its behaviour (complete enumeration, randomised,
proves infeasibility, ...) — that selection policies and tooling query
instead of hardcoding class names.

The registry is deliberately independent of :mod:`repro.core` (it stores
opaque factories) so the core algorithm modules can import it without cycles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Union


class Capability(str, Enum):
    """Declarative facts about an embedding algorithm's behaviour.

    Selection policies, the CLI's ``list-algorithms`` table and tests consume
    these instead of switching on concrete classes.
    """

    #: Enumerates every feasible embedding when given enough time.
    COMPLETE_ENUMERATION = "complete-enumeration"
    #: Uses randomness; repeated runs may return different embeddings.
    RANDOMIZED = "randomized"
    #: Same inputs always produce the same output.
    DETERMINISTIC = "deterministic"
    #: Designed to stop at the first feasible embedding (paper footnote 7).
    FIRST_MATCH_ONLY = "first-match-only"
    #: Handles directed query/hosting networks.
    SUPPORTS_DIRECTED = "supports-directed"
    #: An exhausted run with no results is a proof of infeasibility.
    PROVES_INFEASIBILITY = "proves-infeasibility"
    #: Incomplete heuristic: may fail to find an embedding that exists.
    HEURISTIC = "heuristic"
    #: Avoids the O(n·|E_Q|·|E_R|) filter matrices (lazy constraint checks).
    LOW_MEMORY = "low-memory"
    #: Accepts an ``rng``/seed argument for reproducible runs.
    SEEDABLE = "seedable"

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.value


#: What callers may pass wherever a capability is expected.
CapabilityLike = Union[Capability, str]


def _coerce_capability(value: CapabilityLike) -> Capability:
    if isinstance(value, Capability):
        return value
    try:
        return Capability(value)
    except ValueError:
        known = sorted(c.value for c in Capability)
        raise ValueError(
            f"unknown capability {value!r}; expected one of {known}") from None


class DuplicateAlgorithmError(ValueError):
    """Raised when a name is registered twice without ``replace=True``."""


class UnknownAlgorithmError(ValueError):
    """Raised when a lookup names an algorithm that is not registered."""

    def __init__(self, name: str, available: Iterable[str]):
        super().__init__(
            f"unknown algorithm {name!r}; registered algorithms: "
            f"{sorted(available)}")
        self.name = name


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: how to build an algorithm and what it can do."""

    name: str
    factory: Callable[..., object]
    capabilities: FrozenSet[Capability] = frozenset()
    summary: str = ""
    tags: FrozenSet[str] = frozenset()

    def has(self, *capabilities: CapabilityLike) -> bool:
        """Whether this algorithm declares every one of *capabilities*."""
        return all(_coerce_capability(c) in self.capabilities
                   for c in capabilities)

    def create(self, **kwargs):
        """Instantiate the algorithm (keyword arguments go to the factory)."""
        return self.factory(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        caps = ", ".join(sorted(c.value for c in self.capabilities))
        return f"<AlgorithmInfo {self.name} [{caps}]>"


class AlgorithmRegistry:
    """Named, capability-annotated store of embedding-algorithm factories.

    Lookups are case-insensitive (``"ecf"`` and ``"ECF"`` resolve to the same
    entry) while :meth:`names` preserves the registered display names.  The
    registry is thread-safe: the batch service may consult it from worker
    threads while a plugin registers late.
    """

    def __init__(self) -> None:
        self._infos: Dict[str, AlgorithmInfo] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def register(self, name: str, factory: Callable[..., object],
                 capabilities: Iterable[CapabilityLike] = (),
                 summary: str = "", tags: Iterable[str] = (),
                 replace: bool = False) -> AlgorithmInfo:
        """Register *factory* under *name*; returns the stored entry."""
        if not name or not isinstance(name, str):
            raise ValueError(f"algorithm name must be a non-empty string, got {name!r}")
        if not callable(factory):
            raise TypeError(f"factory must be callable, got {type(factory).__name__}")
        info = AlgorithmInfo(
            name=name,
            factory=factory,
            capabilities=frozenset(_coerce_capability(c) for c in capabilities),
            summary=summary,
            tags=frozenset(tags),
        )
        key = name.lower()
        with self._lock:
            if key in self._infos and not replace:
                raise DuplicateAlgorithmError(
                    f"algorithm {name!r} is already registered "
                    f"(as {self._infos[key].name!r}); pass replace=True to override")
            self._infos[key] = info
        return info

    def unregister(self, name: str) -> None:
        """Remove a registered algorithm (mainly for tests and plugins)."""
        key = name.lower()
        with self._lock:
            if key not in self._infos:
                raise UnknownAlgorithmError(name, self._display_names())
            del self._infos[key]

    # ------------------------------------------------------------------ #

    def get(self, name: str) -> AlgorithmInfo:
        """The entry registered under *name* (case-insensitive)."""
        key = name.lower() if isinstance(name, str) else name
        with self._lock:
            try:
                return self._infos[key]
            except (KeyError, TypeError, AttributeError):
                raise UnknownAlgorithmError(str(name), self._display_names()) from None

    def create(self, name: str, **kwargs):
        """Instantiate the algorithm registered under *name*."""
        return self.get(name).create(**kwargs)

    def names(self) -> List[str]:
        """All registered display names, sorted."""
        with self._lock:
            return sorted(self._display_names())

    def infos(self) -> List[AlgorithmInfo]:
        """All entries, sorted by display name."""
        with self._lock:
            return sorted(self._infos.values(), key=lambda info: info.name.lower())

    def with_capabilities(self, *capabilities: CapabilityLike) -> List[AlgorithmInfo]:
        """Entries declaring every one of *capabilities*."""
        wanted = [_coerce_capability(c) for c in capabilities]
        return [info for info in self.infos() if info.has(*wanted)]

    def with_tag(self, tag: str) -> List[AlgorithmInfo]:
        """Entries carrying *tag* (e.g. ``"core"`` vs ``"baseline"``)."""
        return [info for info in self.infos() if tag in info.tags]

    # ------------------------------------------------------------------ #

    def _display_names(self) -> List[str]:
        return [info.name for info in self._infos.values()]

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._infos

    def __len__(self) -> int:
        return len(self._infos)

    def __iter__(self) -> Iterator[AlgorithmInfo]:
        return iter(self.infos())


#: The process-wide registry that `@register_algorithm` populates.
_DEFAULT_REGISTRY = AlgorithmRegistry()


def default_registry() -> AlgorithmRegistry:
    """The process-wide registry holding all built-in algorithms."""
    return _DEFAULT_REGISTRY


def register_algorithm(name: Optional[str] = None, *,
                       capabilities: Iterable[CapabilityLike] = (),
                       summary: Optional[str] = None,
                       tags: Iterable[str] = (),
                       registry: Optional[AlgorithmRegistry] = None,
                       replace: bool = False):
    """Class decorator registering an :class:`EmbeddingAlgorithm` subclass.

    ``name`` defaults to the class's ``name`` attribute; ``summary`` defaults
    to the first line of the class docstring.  Usage::

        @register_algorithm(capabilities=[Capability.COMPLETE_ENUMERATION])
        class ECF(EmbeddingAlgorithm):
            ...
    """

    def decorate(cls):
        target = registry if registry is not None else _DEFAULT_REGISTRY
        display = name or getattr(cls, "name", None) or cls.__name__
        doc = (cls.__doc__ or "").strip().splitlines()
        target.register(
            display, cls,
            capabilities=capabilities,
            summary=summary if summary is not None else (doc[0] if doc else ""),
            tags=tags,
            replace=replace,
        )
        return cls

    return decorate
