"""The request/response object model of the embedding API.

Historically every algorithm and baseline exposed a growing keyword list on
:meth:`~repro.core.base.EmbeddingAlgorithm.search`, each re-validating and
re-documenting the same arguments.  :class:`SearchRequest` centralises that:
it is an immutable value object holding the query, the hosting network, the
(coerced) constraint expressions and a :class:`Budget`, validated exactly
once at construction time.  Algorithms consume it through
:meth:`EmbeddingAlgorithm.request`; the old ``search(**kwargs)`` signature
survives as a thin shim that builds a request.

Being frozen dataclasses, requests are hashable-by-identity, safe to share
across threads (the batch service submits the same request objects to a
thread pool) and cheap to derive from one another via :meth:`SearchRequest.replace`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Optional, Union

from repro.constraints import ConstraintExpression
from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork

#: What callers may pass wherever a constraint is expected.
ConstraintLike = Union[None, str, ConstraintExpression]


@dataclass(frozen=True)
class Budget:
    """Resource limits for one embedding search.

    Attributes
    ----------
    timeout:
        Wall-clock budget in seconds (``None`` = unlimited).
    max_results:
        Stop after this many embeddings (``None`` = all the algorithm is
        designed to find).
    """

    timeout: Optional[float] = None
    max_results: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")
        if self.max_results is not None and self.max_results < 1:
            raise ValueError(
                f"max_results must be >= 1 or None, got {self.max_results}")

    @classmethod
    def first_match(cls, timeout: Optional[float] = None) -> "Budget":
        """A budget that stops at the first feasible embedding."""
        return cls(timeout=timeout, max_results=1)

    def with_default_timeout(self, default: Optional[float]) -> "Budget":
        """This budget with *default* filled in when no timeout is set."""
        if self.timeout is not None or default is None:
            return self
        return Budget(timeout=default, max_results=self.max_results)

    def clamped(self, limit: Optional[float]) -> "Budget":
        """This budget with its timeout capped at *limit* seconds.

        Deadline-aware dispatch: a request that waited in a queue must run
        under its *remaining* deadline, not its originally requested
        timeout.  ``None`` or infinite limits leave the budget unchanged;
        a non-positive limit is invalid (an already-expired request should
        be shed, not executed).
        """
        if limit is None or limit == float("inf"):
            return self
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if self.timeout is not None and self.timeout <= limit:
            return self
        return Budget(timeout=limit, max_results=self.max_results)

    @property
    def wants_single(self) -> bool:
        """Whether the caller asked for exactly one embedding."""
        return self.max_results == 1


#: The do-nothing budget: unlimited time, all results.
UNLIMITED = Budget()


def validate_parallelism(value: Optional[int]) -> Optional[int]:
    """Validate a parallelism knob (``None`` or an int >= 1); returns it.

    Shared by :class:`SearchRequest` and the service's ``QuerySpec`` so the
    two surfaces cannot drift in what they accept.
    """
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(
            f"parallelism must be an int or None, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"parallelism must be >= 1 or None, got {value}")
    return value


def coerce_constraint(value: ConstraintLike, *,
                      default_true: bool) -> Optional[ConstraintExpression]:
    """Accept ``None``, a source string or a ConstraintExpression uniformly."""
    if value is None:
        return ConstraintExpression.always_true() if default_true else None
    if isinstance(value, ConstraintExpression):
        return value
    if isinstance(value, str):
        return ConstraintExpression(value)
    raise TypeError(
        f"constraint must be a ConstraintExpression, a source string or None, "
        f"got {type(value).__name__}")


#: Attribute caching a query network's structure digest, keyed by its
#: mutation epoch, so a hot request path hashes each query once rather than
#: once per arrival.
_QUERY_DIGEST_ATTR = "_structure_digest"


def _query_digest(query: QueryNetwork) -> str:
    """Digest of a query's directedness, nodes, edges and attributes.

    Memoised on the query object against its
    :attr:`~repro.graphs.network.Network.mutation_count`, so repeated
    fingerprints of unchanged queries — the plan-cache hot path — skip the
    full structural walk.
    """
    epoch = query.mutation_count
    cached = getattr(query, _QUERY_DIGEST_ATTR, None)
    if cached is not None and cached[0] == epoch:
        return cached[1]
    digest = hashlib.sha256()
    digest.update(f"directed={query.directed};".encode())
    for node in sorted(query.nodes(), key=str):
        attrs = sorted((k, repr(v)) for k, v in query.node_attrs(node).items())
        digest.update(f"n:{node!r}:{attrs!r};".encode())
    for u, v in sorted(query.edges(), key=lambda e: (str(e[0]), str(e[1]))):
        attrs = sorted((k, repr(v)) for k, v in query.edge_attrs(u, v).items())
        digest.update(f"e:{u!r}->{v!r}:{attrs!r};".encode())
    value = digest.hexdigest()
    try:
        setattr(query, _QUERY_DIGEST_ATTR, (epoch, value))
    except AttributeError:  # slotted subclass: recompute next time
        pass
    return value


@dataclass(frozen=True)
class SearchRequest:
    """A fully validated embedding request.

    Attributes
    ----------
    query:
        The virtual network to embed.
    hosting:
        The real infrastructure to embed into.
    constraint:
        Edge constraint expression; strings are parsed at construction and
        ``None`` becomes the always-true expression, so consumers always see
        a :class:`ConstraintExpression`.
    node_constraint:
        Optional node-level constraint over ``vNode``/``rNode`` (``None`` is
        preserved: "no node constraint" is cheaper than an always-true one).
    budget:
        Timeout and result-cap limits (:data:`UNLIMITED` by default).
    parallelism:
        Shard the search stage across this many process-pool workers
        (``None``/``1`` = serial).  An execution concern like the budget:
        the mapping stream is identical either way, so it is excluded from
        :meth:`fingerprint` and plans compiled from this request serve any
        parallelism.
    """

    query: QueryNetwork
    hosting: Network
    constraint: ConstraintExpression = field(
        default_factory=ConstraintExpression.always_true)
    node_constraint: Optional[ConstraintExpression] = None
    budget: Budget = UNLIMITED
    parallelism: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.query, QueryNetwork):
            raise TypeError(
                f"query must be a QueryNetwork, got {type(self.query).__name__}")
        if not isinstance(self.hosting, Network):
            raise TypeError(
                f"hosting must be a Network, got {type(self.hosting).__name__}")
        if self.query.directed != self.hosting.directed:
            raise ValueError(
                "query and hosting networks must agree on directedness "
                f"(query directed={self.query.directed}, "
                f"hosting directed={self.hosting.directed})")
        if not isinstance(self.budget, Budget):
            raise TypeError(
                f"budget must be a Budget, got {type(self.budget).__name__}")
        validate_parallelism(self.parallelism)
        # Coerce the constraints in place (frozen dataclass => object.__setattr__).
        object.__setattr__(self, "constraint",
                           coerce_constraint(self.constraint, default_true=True))
        object.__setattr__(self, "node_constraint",
                           coerce_constraint(self.node_constraint,
                                             default_true=False))

    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, query: QueryNetwork, hosting: Network,
              constraint: ConstraintLike = None,
              node_constraint: ConstraintLike = None,
              timeout: Optional[float] = None,
              max_results: Optional[int] = None,
              budget: Optional[Budget] = None,
              parallelism: Optional[int] = None) -> "SearchRequest":
        """Construct a request from the legacy keyword-argument surface.

        ``budget`` and the flat ``timeout``/``max_results`` pair are mutually
        exclusive ways of expressing the same limits.
        """
        if budget is not None:
            if timeout is not None or max_results is not None:
                raise ValueError(
                    "pass either budget or timeout/max_results, not both")
        else:
            budget = Budget(timeout=timeout, max_results=max_results)
        return cls(query=query, hosting=hosting, constraint=constraint,
                   node_constraint=node_constraint, budget=budget,
                   parallelism=parallelism)

    def replace(self, **changes) -> "SearchRequest":
        """A copy of this request with *changes* applied (re-validated)."""
        return _dc_replace(self, **changes)

    def fingerprint(self) -> str:
        """A stable digest of the query topology/attributes and constraints.

        Two requests with equal fingerprints against the same hosting model
        version compile interchangeable :class:`~repro.core.plan.EmbeddingPlan`
        artifacts, which is how the service's plan cache recognises repeated
        traffic.  The budget is deliberately excluded — timeouts and result
        caps are per-execution concerns, applied when a plan runs — and so is
        the hosting network, which the cache keys by (name, model version)
        instead of by content.
        """
        digest = hashlib.sha256()
        digest.update(_query_digest(self.query).encode())
        digest.update(f"c:{self.constraint.source}"
                      f"|{getattr(self.constraint, 'strict', False)};".encode())
        node_constraint = self.node_constraint
        digest.update(
            f"nc:{None if node_constraint is None else node_constraint.source}"
            f"|{getattr(node_constraint, 'strict', False)};".encode())
        return digest.hexdigest()[:16]

    @property
    def timeout(self) -> Optional[float]:
        """Shortcut for ``budget.timeout``."""
        return self.budget.timeout

    @property
    def max_results(self) -> Optional[int]:
        """Shortcut for ``budget.max_results``."""
        return self.budget.max_results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SearchRequest {self.query.name!r} -> {self.hosting.name!r} "
                f"timeout={self.budget.timeout} max_results={self.budget.max_results}>")
