"""Capability-driven algorithm selection policies.

The service's old ``_auto_algorithm`` was an if/elif chain that named ECF,
RWB and LNS directly.  A :class:`SelectionPolicy` instead *describes* what
kind of algorithm a request needs — in terms of the declared
:class:`~repro.api.registry.Capability` flags — and lets the registry answer.
New algorithms (or replacements registered by plugins) participate in
auto-selection simply by declaring honest capabilities; the policy never has
to learn their names.

:class:`PaperSelectionPolicy` encodes the paper's own guidance (§VII-E,
§VIII): ECF/RWB "perform well in situations where the query is tightly
constrained and when the network density is low", whereas LNS "performs much
better with less constrained queries and higher density networks" and is the
best choice for regular structures when only the first match is needed.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.api.registry import (
    AlgorithmInfo,
    AlgorithmRegistry,
    Capability,
    UnknownAlgorithmError,
    default_registry,
)
from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork


class SelectionPolicy(abc.ABC):
    """Strategy object answering "which algorithm should serve this request?".

    Policies receive the query, the hosting network and the result cap — the
    request features §VII-E conditions on — plus the registry to choose from,
    and return an :class:`AlgorithmInfo` (never an instance: the caller
    decides construction arguments such as the RNG seed).
    """

    @abc.abstractmethod
    def select(self, query: QueryNetwork, hosting: Network,
               max_results: Optional[int] = None,
               registry: Optional[AlgorithmRegistry] = None) -> AlgorithmInfo:
        """Pick the algorithm for one request."""

    # -- shared helpers ------------------------------------------------- #

    @staticmethod
    def candidate_pool(registry: AlgorithmRegistry, query: QueryNetwork,
                       tag: Optional[str] = "core") -> List[AlgorithmInfo]:
        """Selectable entries: optionally tag-filtered, directedness-capable.

        Baselines are registered for benchmarking but tagged out of
        auto-selection by default — a production service should never
        silently pick an incomplete baseline.
        """
        pool = registry.with_tag(tag) if tag is not None else registry.infos()
        if query.directed:
            pool = [info for info in pool
                    if info.has(Capability.SUPPORTS_DIRECTED)]
        if not pool:
            raise UnknownAlgorithmError(
                "<auto>", [info.name for info in registry.infos()])
        return pool


def looks_regular(query: QueryNetwork) -> bool:
    """Heuristic regularity check: all node degrees equal (ring/clique/torus-like)."""
    if query.num_nodes <= 2:
        return True
    degrees = {query.degree(node) for node in query.nodes()}
    return len(degrees) == 1


class PaperSelectionPolicy(SelectionPolicy):
    """§VII-E/§VIII guidance expressed over declared capabilities.

    * Only the first match wanted, on a dense hosting network or a regular
      query → the low-memory lazy searcher (LNS's strength per Figs. 13–14).
    * All matches wanted → a complete enumerator with up-front filters (ECF).
    * A single match on sparse, constrained problems → a randomized complete
      searcher (RWB).

    Parameters
    ----------
    density_threshold:
        Hosting-network edge density above which the network counts as
        "dense" for the first-match rule (default 0.3, the seed's value).
    """

    def __init__(self, density_threshold: float = 0.3) -> None:
        if not 0 <= density_threshold <= 1:
            raise ValueError(
                f"density_threshold must be in [0, 1], got {density_threshold}")
        self.density_threshold = density_threshold

    def select(self, query: QueryNetwork, hosting: Network,
               max_results: Optional[int] = None,
               registry: Optional[AlgorithmRegistry] = None) -> AlgorithmInfo:
        registry = registry if registry is not None else default_registry()
        pool = self.candidate_pool(registry, query)

        wants_single = max_results == 1
        dense = hosting.density() > self.density_threshold

        if wants_single and (dense or looks_regular(query)):
            choice = self._first_with(
                pool, [Capability.LOW_MEMORY, Capability.COMPLETE_ENUMERATION])
            if choice is not None:
                return choice
        if max_results is None:
            # Full enumeration: prefer the filter-based complete enumerator
            # (deterministic, not the lazy low-memory one — §V-C's tradeoff).
            choice = self._first_with(
                pool, [Capability.COMPLETE_ENUMERATION, Capability.DETERMINISTIC],
                prefer_without=Capability.LOW_MEMORY)
            if choice is not None:
                return choice
        if wants_single:
            choice = self._first_with(
                pool, [Capability.RANDOMIZED, Capability.PROVES_INFEASIBILITY])
            if choice is not None:
                return choice
        choice = self._first_with(pool, [Capability.COMPLETE_ENUMERATION])
        return choice if choice is not None else pool[0]

    @staticmethod
    def _first_with(pool: Sequence[AlgorithmInfo],
                    capabilities: Sequence[Capability],
                    prefer_without: Optional[Capability] = None
                    ) -> Optional[AlgorithmInfo]:
        matches = [info for info in pool if info.has(*capabilities)]
        if not matches:
            return None
        if prefer_without is not None:
            preferred = [info for info in matches
                         if not info.has(prefer_without)]
            if preferred:
                return preferred[0]
        return matches[0]


class FixedSelectionPolicy(SelectionPolicy):
    """Always selects one named algorithm (useful for tests and pinning)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def select(self, query: QueryNetwork, hosting: Network,
               max_results: Optional[int] = None,
               registry: Optional[AlgorithmRegistry] = None) -> AlgorithmInfo:
        registry = registry if registry is not None else default_registry()
        return registry.get(self.name)
