"""Baseline mappers: the prior approaches NETEMBED is compared against (§II, §VII-F).

All baselines implement the same :class:`~repro.core.base.EmbeddingAlgorithm`
interface as ECF/RWB/LNS so the comparison benchmark can run them on
identical workloads:

* :class:`BruteForceCSP` — Considine & Byers-style unfiltered, unordered
  constraint-satisfaction DFS (complete, but without NETEMBED's heuristics);
* :class:`SimulatedAnnealingMapper` — Emulab ``assign``-style annealing over
  complete assignments (incomplete, cannot prove infeasibility);
* :class:`GeneticAlgorithmMapper` — ``wanassign``-style genetic algorithm
  (incomplete, cannot prove infeasibility);
* :class:`StressGreedyMapper` — Zhu & Ammar-style greedy stress-minimising
  constructive mapper (fast, no backtracking, incomplete).
"""

from repro.api.registry import default_registry
from repro.baselines.annealing import SimulatedAnnealingMapper
from repro.baselines.bruteforce import BruteForceCSP
from repro.baselines.common import assignment_violations, random_injective_assignment
from repro.baselines.genetic import GeneticAlgorithmMapper
from repro.baselines.stress import StressGreedyMapper

#: All baselines keyed by a short name used in benchmark reports.  Built from
#: the capability registry (the classes register themselves on import above).
BASELINES = {info.name: info.factory
             for info in default_registry().with_tag("baseline")}

__all__ = [
    "BruteForceCSP",
    "SimulatedAnnealingMapper",
    "GeneticAlgorithmMapper",
    "StressGreedyMapper",
    "BASELINES",
    "assignment_violations",
    "random_injective_assignment",
]
