"""Simulated-annealing mapper in the style of Emulab's ``assign`` [13].

``assign`` treats testbed mapping as combinatorial optimisation and uses
simulated annealing to minimise a cost that penalises violated requirements
and scarce-resource usage.  For the head-to-head feasibility comparison of
§VII-F the reimplementation minimises the number of violated query edges
(topology or constraint violations); an assignment of zero cost is a feasible
embedding and is returned immediately.

Characteristics the paper calls out — and which the comparison benchmark
shows — carry over directly: the annealer may need many iterations to land on
a feasible assignment, gives no guarantee it ever will, and cannot prove that
no feasible embedding exists (it simply runs out of iterations, yielding an
*inconclusive* result).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.baselines.common import (
    assignment_violations,
    node_level_allowed,
    random_injective_assignment,
    swap_or_move,
)
from repro.api.registry import Capability, register_algorithm
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.graphs.network import NodeId
from repro.utils.rng import RandomSource, as_rng


@register_algorithm(
    "annealing",
    capabilities=[
        Capability.RANDOMIZED,
        Capability.FIRST_MATCH_ONLY,
        Capability.HEURISTIC,
        Capability.SUPPORTS_DIRECTED,
        Capability.SEEDABLE,
    ],
    summary="Emulab assign-style simulated annealing (incomplete).",
    tags=["baseline"],
)
class SimulatedAnnealingMapper(EmbeddingAlgorithm):
    """``assign``-style simulated annealing over complete assignments.

    Parameters
    ----------
    max_iterations:
        Total annealing steps before giving up.
    initial_temperature, cooling:
        Geometric cooling schedule: ``T_k = initial_temperature * cooling**k``.
    restarts:
        Independent annealing runs (each from a fresh random assignment).
    rng:
        Randomness source.
    """

    name = "SA-assign"

    def __init__(self, max_iterations: int = 20_000, initial_temperature: float = 2.0,
                 cooling: float = 0.999, restarts: int = 3,
                 rng: RandomSource = None) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if not 0 < cooling < 1:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0:
            raise ValueError(f"initial_temperature must be positive, got {initial_temperature}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self._max_iterations = max_iterations
        self._initial_temperature = initial_temperature
        self._cooling = cooling
        self._restarts = restarts
        self._rng_source = rng

    # ------------------------------------------------------------------ #

    def _run(self, context: SearchContext) -> bool:
        rng = as_rng(self._rng_source)
        allowed = node_level_allowed(context)
        if any(not allowed[node] for node in context.query.nodes()):
            # No host can ever carry some query node: provably infeasible.
            return True

        for _restart in range(self._restarts):
            context.check_deadline()
            solution = self._anneal(context, allowed, rng)
            if solution is not None:
                context.record_mapping(solution)
                # A metaheuristic cannot certify completeness: report the single
                # feasible assignment it found without claiming exhaustion.
                return False
        # Ran out of iterations without a feasible assignment.  This is not a
        # proof of infeasibility, so the search is "not exhausted".
        return False

    def _anneal(self, context: SearchContext, allowed, rng
                ) -> Optional[Dict[NodeId, NodeId]]:
        current = random_injective_assignment(context, rng, allowed)
        if current is None:
            return None
        current_cost = assignment_violations(context, current)
        if current_cost == 0:
            return current
        best, best_cost = dict(current), current_cost
        temperature = self._initial_temperature

        for iteration in range(self._max_iterations):
            if iteration % 64 == 0:
                context.check_deadline()
            candidate = swap_or_move(context, current, rng, allowed)
            candidate_cost = assignment_violations(context, candidate)
            context.stats.candidates_considered += 1
            if candidate_cost == 0:
                return candidate
            delta = candidate_cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current, current_cost = candidate, candidate_cost
                if current_cost < best_cost:
                    best, best_cost = dict(current), current_cost
            temperature *= self._cooling
        context.stats.backtracks += 1   # counts failed annealing runs
        return None
