"""Brute-force constraint-satisfaction search (Considine & Byers style).

[16] solves testbed embedding as constraint satisfaction with "a brute-force
approach coupled with appropriate pruning techniques": partial mappings are
extended node by node and pruned when they cannot be completed, but there is
no candidate pre-filtering stage and no candidate-count ordering.  This
reimplementation is therefore exactly "ECF minus its two heuristics":

* query nodes are visited in their natural order;
* the candidate set at each step is *every unused hosting node*, checked
  against the placed neighbours on the fly (topology + constraint), instead
  of an intersection of pre-computed filter cells.

It is complete and correct, like ECF, but explores far more of the
permutation tree — which is what the filter ablation benchmark quantifies.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.api.registry import Capability, register_algorithm
from repro.baselines.common import node_level_allowed
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.graphs.network import NodeId


@register_algorithm(
    "bruteforce",
    capabilities=[
        Capability.COMPLETE_ENUMERATION,
        Capability.DETERMINISTIC,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
    ],
    summary="Considine & Byers-style unfiltered, unordered CSP search.",
    tags=["baseline"],
)
class BruteForceCSP(EmbeddingAlgorithm):
    """Unfiltered, unordered depth-first constraint-satisfaction search."""

    name = "BruteForceCSP"

    def _run(self, context: SearchContext) -> bool:
        allowed = node_level_allowed(context)
        if any(not allowed[node] for node in context.query.nodes()):
            return True
        order = context.query.nodes()           # natural order: no Lemma-1 heuristic
        assignment: Dict[NodeId, NodeId] = {}
        used: Set[NodeId] = set()
        return self._descend(context, allowed, order, 0, assignment, used)

    def _descend(self, context: SearchContext, allowed, order: List[NodeId],
                 depth: int, assignment: Dict[NodeId, NodeId], used: Set[NodeId]) -> bool:
        context.check_deadline()
        if depth == len(order):
            stop = context.record_mapping(dict(assignment))
            return not stop

        node = order[depth]
        placed_neighbors = [(neighbor, assignment[neighbor])
                            for neighbor in context.query.neighbors(node)
                            if neighbor in assignment]
        context.stats.nodes_expanded += 1

        progressed = False
        for host in sorted(allowed[node], key=str):
            if host in used:
                continue
            context.stats.candidates_considered += 1
            if not self._consistent(context, node, host, placed_neighbors):
                continue
            progressed = True
            assignment[node] = host
            used.add(host)
            keep_going = self._descend(context, allowed, order, depth + 1,
                                       assignment, used)
            del assignment[node]
            used.discard(host)
            if not keep_going:
                return False
        if not progressed:
            context.stats.backtracks += 1
        return True

    @staticmethod
    def _consistent(context: SearchContext, node: NodeId, host: NodeId,
                    placed_neighbors) -> bool:
        """Check every query edge between *node* and its placed neighbours."""
        query = context.query
        for neighbor, neighbor_host in placed_neighbors:
            if query.has_edge(neighbor, node):
                if not context.query_edge_supported(neighbor, node, neighbor_host, host):
                    return False
            if query.directed and query.has_edge(node, neighbor):
                if not context.query_edge_supported(node, neighbor, host, neighbor_host):
                    return False
            if not query.directed and not query.has_edge(neighbor, node) \
                    and query.has_edge(node, neighbor):
                if not context.query_edge_supported(node, neighbor, host, neighbor_host):
                    return False
        return True
