"""Shared machinery for the baseline mappers NETEMBED is compared against.

§II and §VII-F position NETEMBED against four families of prior work:
Emulab's ``assign`` (simulated annealing), ``wanassign`` (genetic algorithm),
Zhu & Ammar's stress-minimising heuristic, and Considine & Byers' brute-force
constraint-satisfaction search.  The reimplementations in this package solve
the *same feasibility problem* as the NETEMBED algorithms — same query and
hosting networks, same constraint expressions, same
:class:`~repro.core.result.EmbeddingResult` return type — so they can be run
head-to-head by the §VII-F comparison benchmark.

The metaheuristic baselines (annealing, genetic) explore *complete but
possibly invalid* assignments and try to drive a violation count to zero,
which is how ``assign``/``wanassign`` treat mapping: an optimisation over
penalties rather than a systematic search.  They therefore inherit the
weaknesses the paper points out — no completeness guarantee and no ability to
prove infeasibility.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base import SearchContext
from repro.graphs.network import NodeId


def assignment_violations(context: SearchContext,
                          assignment: Dict[NodeId, NodeId]) -> int:
    """Number of query edges violated by a complete (injective) assignment.

    A query edge is violated when its endpoints' images are not adjacent in
    the hosting network or the constraint expression rejects the edge pair.
    Assignments that are not injective additionally pay one violation per
    duplicated hosting node, so zero energy implies a feasible embedding
    (injective, topology-preserving, constraint-satisfying).
    """
    violations = 0
    hosts = list(assignment.values())
    violations += len(hosts) - len(set(hosts))
    for q_source, q_target in context.query.edges():
        r_source, r_target = assignment[q_source], assignment[q_target]
        if not context.query_edge_supported(q_source, q_target, r_source, r_target):
            violations += 1
    return violations


def node_level_allowed(context: SearchContext) -> Dict[NodeId, set]:
    """Per-query-node candidate sets from the node constraint (all hosts if none)."""
    from repro.core.filters import compute_node_candidates

    return compute_node_candidates(context.query, context.hosting,
                                   context.node_constraint)


def random_injective_assignment(context: SearchContext, rng,
                                allowed: Optional[Dict[NodeId, set]] = None
                                ) -> Optional[Dict[NodeId, NodeId]]:
    """A random injective assignment respecting per-node candidate sets.

    Query nodes are placed in order of ascending candidate-set size (most
    constrained first) so the greedy random construction rarely dead-ends;
    returns ``None`` if it does.
    """
    allowed = allowed or node_level_allowed(context)
    order = sorted(context.query.nodes(), key=lambda n: (len(allowed[n]), str(n)))
    used: set = set()
    assignment: Dict[NodeId, NodeId] = {}
    for node in order:
        candidates = [host for host in allowed[node] if host not in used]
        if not candidates:
            return None
        choice = rng.choice(sorted(candidates, key=str))
        assignment[node] = choice
        used.add(choice)
    return assignment


def swap_or_move(context: SearchContext, assignment: Dict[NodeId, NodeId], rng,
                 allowed: Dict[NodeId, set]) -> Dict[NodeId, NodeId]:
    """A neighbouring assignment: re-place one query node, or swap two.

    This is the move set of the annealing baseline and the mutation operator
    of the genetic baseline.
    """
    new_assignment = dict(assignment)
    nodes = context.query.nodes()
    node = rng.choice(nodes)
    used = set(new_assignment.values())
    free_candidates = [host for host in allowed[node]
                       if host not in used or host == new_assignment[node]]
    if free_candidates and rng.random() < 0.5:
        new_assignment[node] = rng.choice(sorted(free_candidates, key=str))
        return new_assignment
    other = rng.choice(nodes)
    if other != node:
        new_assignment[node], new_assignment[other] = (
            new_assignment[other], new_assignment[node])
    return new_assignment
