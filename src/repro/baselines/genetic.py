"""Genetic-algorithm mapper in the style of Netbed's ``wanassign`` [10].

``wanassign`` evolves candidate wide-area mappings with a genetic algorithm.
The reported evaluations handled only small networks (up to 16 nodes in [10],
160 in [14]) with runtimes of tens of minutes, and — like all metaheuristics —
it offers no convergence or completeness guarantee.  This reimplementation
keeps the approach recognisable while fitting the common
:class:`~repro.core.base.EmbeddingAlgorithm` interface:

* an individual is a complete injective assignment of query nodes to hosts;
* fitness is the number of *satisfied* query edges (topology + constraint);
* selection is tournament-based, crossover keeps the assignment injective by
  resolving collisions from the unused-host pool, and mutation re-places or
  swaps nodes;
* the first individual whose fitness equals the number of query edges is a
  feasible embedding and is returned immediately.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.common import (
    assignment_violations,
    node_level_allowed,
    random_injective_assignment,
    swap_or_move,
)
from repro.api.registry import Capability, register_algorithm
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.graphs.network import NodeId
from repro.utils.rng import RandomSource, as_rng


@register_algorithm(
    "genetic",
    capabilities=[
        Capability.RANDOMIZED,
        Capability.FIRST_MATCH_ONLY,
        Capability.HEURISTIC,
        Capability.SUPPORTS_DIRECTED,
        Capability.SEEDABLE,
    ],
    summary="wanassign-style genetic algorithm (incomplete).",
    tags=["baseline"],
)
class GeneticAlgorithmMapper(EmbeddingAlgorithm):
    """``wanassign``-style genetic search over complete assignments.

    Parameters
    ----------
    population_size, generations:
        GA population size and generation budget.
    tournament:
        Tournament size for parent selection.
    crossover_rate, mutation_rate:
        Per-offspring probabilities of crossover and mutation.
    rng:
        Randomness source.
    """

    name = "GA-wanassign"

    def __init__(self, population_size: int = 40, generations: int = 150,
                 tournament: int = 3, crossover_rate: float = 0.8,
                 mutation_rate: float = 0.4, rng: RandomSource = None) -> None:
        if population_size < 2:
            raise ValueError(f"population_size must be >= 2, got {population_size}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        if tournament < 1:
            raise ValueError(f"tournament must be >= 1, got {tournament}")
        for name, rate in (("crossover_rate", crossover_rate), ("mutation_rate", mutation_rate)):
            if not 0 <= rate <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self._population_size = population_size
        self._generations = generations
        self._tournament = tournament
        self._crossover_rate = crossover_rate
        self._mutation_rate = mutation_rate
        self._rng_source = rng

    # ------------------------------------------------------------------ #

    def _run(self, context: SearchContext) -> bool:
        rng = as_rng(self._rng_source)
        allowed = node_level_allowed(context)
        if any(not allowed[node] for node in context.query.nodes()):
            return True

        population: List[Dict[NodeId, NodeId]] = []
        for _ in range(self._population_size):
            individual = random_injective_assignment(context, rng, allowed)
            if individual is None:
                continue
            if assignment_violations(context, individual) == 0:
                context.record_mapping(individual)
                return False
            population.append(individual)
        if not population:
            return False

        for _generation in range(self._generations):
            context.check_deadline()
            next_population: List[Dict[NodeId, NodeId]] = []
            while len(next_population) < self._population_size:
                parent_a = self._select(context, population, rng)
                parent_b = self._select(context, population, rng)
                child = dict(parent_a)
                if rng.random() < self._crossover_rate:
                    child = self._crossover(context, parent_a, parent_b, rng, allowed)
                if rng.random() < self._mutation_rate:
                    child = swap_or_move(context, child, rng, allowed)
                context.stats.candidates_considered += 1
                if assignment_violations(context, child) == 0:
                    context.record_mapping(child)
                    return False
                next_population.append(child)
            population = next_population

        context.stats.backtracks += 1   # evolution exhausted without success
        return False

    # ------------------------------------------------------------------ #

    def _select(self, context: SearchContext, population, rng) -> Dict[NodeId, NodeId]:
        """Tournament selection minimising the violation count."""
        contenders = [population[rng.randrange(len(population))]
                      for _ in range(min(self._tournament, len(population)))]
        return min(contenders, key=lambda ind: assignment_violations(context, ind))

    @staticmethod
    def _crossover(context: SearchContext, parent_a, parent_b, rng, allowed
                   ) -> Dict[NodeId, NodeId]:
        """Uniform crossover that repairs duplicate hosting-node assignments."""
        child: Dict[NodeId, NodeId] = {}
        used: set = set()
        nodes = context.query.nodes()
        for node in nodes:
            preferred = parent_a[node] if rng.random() < 0.5 else parent_b[node]
            fallback = parent_b[node] if preferred == parent_a[node] else parent_a[node]
            for choice in (preferred, fallback):
                if choice not in used:
                    child[node] = choice
                    used.add(choice)
                    break
        # Repair nodes that lost both parental hosts to collisions.
        for node in nodes:
            if node in child:
                continue
            candidates = [host for host in sorted(allowed[node], key=str)
                          if host not in used]
            if not candidates:
                # Degenerate: fall back to the first parent's host even if it
                # collides; the fitness function will penalise it away.
                child[node] = parent_a[node]
                continue
            choice = rng.choice(candidates)
            child[node] = choice
            used.add(choice)
        return child
