"""Stress-minimising greedy mapper in the style of Zhu & Ammar [15].

Zhu & Ammar assign substrate (hosting) resources to virtual networks so as to
minimise *stress* — the number of virtual nodes/links already mapped onto
each substrate node/link — thereby spreading load and leaving room for future
virtual networks.  Their algorithm is a greedy constructive heuristic, not a
systematic search, and the paper notes it can be adapted to the constrained
problem "by filtering out infeasible assignments".

This reimplementation follows that recipe:

* query nodes are placed one at a time in descending-degree order;
* for each node, candidate hosts are those that satisfy the node constraint,
  are adjacent (with satisfying edges) to every already-placed neighbour and
  are not yet used;
* among the candidates, the host with the lowest current stress (here: the
  node's ``cpuLoad``/``stress`` attribute plus the count of embeddings placed
  on it in this run) is chosen greedily — no backtracking.

Being greedy, it is fast but incomplete: when the greedy choice dead-ends the
mapper simply fails (an *inconclusive* outcome), which is exactly the
behavioural contrast with NETEMBED that §VII-F highlights.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.registry import Capability, register_algorithm
from repro.baselines.common import node_level_allowed
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.graphs.network import NodeId

#: Hosting-node attribute treated as pre-existing stress/load if present.
STRESS_ATTR = "stress"


@register_algorithm(
    "stress",
    capabilities=[
        Capability.DETERMINISTIC,
        Capability.FIRST_MATCH_ONLY,
        Capability.HEURISTIC,
        Capability.SUPPORTS_DIRECTED,
    ],
    summary="Zhu & Ammar-style greedy stress-minimising mapper (no backtracking).",
    tags=["baseline"],
)
class StressGreedyMapper(EmbeddingAlgorithm):
    """Zhu–Ammar-style greedy, stress-aware constructive mapper (no backtracking)."""

    name = "Greedy-stress"

    def _run(self, context: SearchContext) -> bool:
        allowed = node_level_allowed(context)
        if any(not allowed[node] for node in context.query.nodes()):
            return True

        placement_order = context.query.nodes_by_degree(descending=True)
        assignment: Dict[NodeId, NodeId] = {}
        used: set = set()
        local_stress: Dict[NodeId, int] = {}

        for node in placement_order:
            context.check_deadline()
            context.stats.nodes_expanded += 1
            best_host: Optional[NodeId] = None
            best_stress: Optional[float] = None
            for host in sorted(allowed[node], key=str):
                if host in used:
                    continue
                context.stats.candidates_considered += 1
                if not self._consistent(context, node, host, assignment):
                    continue
                stress = self._stress_of(context, host, local_stress)
                if best_stress is None or stress < best_stress:
                    best_host, best_stress = host, stress
            if best_host is None:
                # Greedy dead end: give up without backtracking.  This is not a
                # proof of infeasibility, so the search is not "exhausted".
                context.stats.backtracks += 1
                return False
            assignment[node] = best_host
            used.add(best_host)
            local_stress[best_host] = local_stress.get(best_host, 0) + 1

        context.record_mapping(assignment)
        # Greedy construction finds at most one embedding and explores nothing
        # else; never claim the result set is complete.
        return False

    # ------------------------------------------------------------------ #

    @staticmethod
    def _consistent(context: SearchContext, node: NodeId, host: NodeId,
                    assignment: Dict[NodeId, NodeId]) -> bool:
        query = context.query
        for neighbor in query.neighbors(node):
            if neighbor not in assignment:
                continue
            neighbor_host = assignment[neighbor]
            if query.has_edge(neighbor, node):
                if not context.query_edge_supported(neighbor, node, neighbor_host, host):
                    return False
            if query.has_edge(node, neighbor) and (query.directed or
                                                   not query.has_edge(neighbor, node)):
                if not context.query_edge_supported(node, neighbor, host, neighbor_host):
                    return False
        return True

    @staticmethod
    def _stress_of(context: SearchContext, host: NodeId,
                   local_stress: Dict[NodeId, int]) -> float:
        """Pre-existing stress attribute (or cpuLoad) plus stress added in this run."""
        attrs = context.hosting.node_attrs(host)
        base = attrs.get(STRESS_ATTR)
        if base is None:
            base = attrs.get("cpuLoad", 0.0)
        return float(base) + local_stress.get(host, 0)
