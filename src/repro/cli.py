"""Command-line interface to the NETEMBED service.

Five subcommands cover the common workflows::

    python -m repro embed --hosting host.graphml --query query.graphml \
        --constraint "rEdge.avgDelay <= vEdge.maxDelay" --algorithm ECF

    python -m repro batch --hosting host.graphml --specs batch.json --json

    python -m repro list-algorithms

    python -m repro generate planetlab --sites 120 --seed 7 --output pl.graphml

    python -m repro experiment fig8 --seed 1 --timeout 5 --csv fig8.csv

``embed`` reads both networks from GraphML, runs the requested algorithm and
prints the embeddings (optionally as JSON); ``batch`` feeds a JSON file of
query specs through :meth:`NetEmbedService.submit_batch`; ``list-algorithms``
prints the capability registry; ``generate`` materialises the synthetic
hosting networks used throughout the evaluation; ``experiment`` runs one of
the figure drivers from :mod:`repro.analysis` and prints the same series the
paper plots.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import repro.baselines  # noqa: F401 — registers the baselines for by-name use
from repro.analysis import EXPERIMENTS, aggregate_series, format_figure, format_table, write_csv
from repro.api import Capability, default_registry
from repro.constraints import ConstraintExpression
from repro.core import make_algorithm
from repro.graphs import HostingNetwork, QueryNetwork, read_graphml, write_graphml
from repro.topology import barabasi_albert, synthetic_planetlab_trace, transit_stub


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NETEMBED: map virtual network requests onto a hosting network.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    algorithm_names = default_registry().names()

    embed = subparsers.add_parser(
        "embed", help="embed a GraphML query network into a GraphML hosting network")
    embed.add_argument("--hosting", required=True, type=Path,
                       help="GraphML file describing the hosting (real) network")
    embed.add_argument("--query", required=True, type=Path,
                       help="GraphML file describing the query (virtual) network")
    embed.add_argument("--constraint", default=None,
                       help="edge constraint expression (NETEMBED constraint language)")
    embed.add_argument("--node-constraint", default=None,
                       help="node constraint expression over vNode/rNode")
    embed.add_argument("--algorithm", default="ECF", choices=algorithm_names,
                       help="which registered algorithm to run (default: ECF)")
    embed.add_argument("--timeout", type=float, default=30.0,
                       help="search budget in seconds (default: 30)")
    embed.add_argument("--max-results", type=int, default=None,
                       help="stop after this many embeddings (default: all)")
    embed.add_argument("--seed", type=int, default=None,
                       help="random seed (only used by seedable algorithms)")
    embed.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of plain text")

    batch = subparsers.add_parser(
        "batch", help="run a JSON file of query specs through the batch service")
    batch.add_argument("--hosting", required=True, type=Path,
                       help="GraphML file registered as the batch's hosting network")
    batch.add_argument("--specs", required=True, type=Path,
                       help="JSON file: a list of spec objects with a 'query' "
                            "GraphML path and optional constraint/algorithm/"
                            "timeout/max_results/seed fields")
    batch.add_argument("--workers", type=int, default=None,
                       help="thread-pool size (default: executor default)")
    batch.add_argument("--timeout", type=float, default=30.0,
                       help="default per-query budget in seconds (default: 30)")
    batch.add_argument("--json", action="store_true",
                       help="print the responses as JSON instead of plain text")

    list_algorithms = subparsers.add_parser(
        "list-algorithms", help="list the registered algorithms and their capabilities")
    list_algorithms.add_argument("--json", action="store_true",
                                 help="print the registry as JSON")
    list_algorithms.add_argument("--capability", action="append", default=None,
                                 metavar="CAP",
                                 choices=sorted(c.value for c in Capability),
                                 help="only show algorithms declaring this "
                                      "capability (repeatable)")

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic hosting network as GraphML")
    generate.add_argument("kind", choices=["planetlab", "brite", "transit-stub"],
                          help="which topology family to generate")
    generate.add_argument("--sites", type=int, default=296,
                          help="number of nodes/sites (default: 296)")
    generate.add_argument("--seed", type=int, default=None, help="random seed")
    generate.add_argument("--output", type=Path, required=True,
                          help="output GraphML path")

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's evaluation experiments")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS),
                            help="experiment id (figure number or ablation name)")
    experiment.add_argument("--seed", type=int, default=0, help="random seed")
    experiment.add_argument("--timeout", type=float, default=5.0,
                            help="per-query timeout in seconds (default: 5)")
    experiment.add_argument("--paper-scale", action="store_true",
                            help="use the paper's instance sizes instead of the "
                                 "scaled-down benchmark sizes (slow)")
    experiment.add_argument("--csv", type=Path, default=None,
                            help="also write the raw per-query rows to this CSV file")

    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #

def _run_embed(args: argparse.Namespace) -> int:
    hosting = read_graphml(args.hosting, cls=HostingNetwork)
    query = read_graphml(args.query, cls=QueryNetwork)
    info = default_registry().get(args.algorithm)
    kwargs = {}
    if args.seed is not None and info.has(Capability.SEEDABLE):
        kwargs["rng"] = args.seed
    algorithm = info.create(**kwargs)
    constraint = ConstraintExpression(args.constraint) if args.constraint else None
    node_constraint = (ConstraintExpression(args.node_constraint)
                       if args.node_constraint else None)

    result = algorithm.search(query, hosting, constraint=constraint,
                              node_constraint=node_constraint,
                              timeout=args.timeout, max_results=args.max_results)

    if args.json:
        print(json.dumps(_result_payload(result), indent=2))
    else:
        print(f"{result.algorithm}: {result.status.value}, {result.count} embedding(s) "
              f"in {result.elapsed_seconds * 1000:.1f} ms")
        for index, mapping in enumerate(result.mappings):
            rendered = ", ".join(f"{q}->{r}" for q, r in sorted(mapping.items(), key=str))
            print(f"  [{index}] {rendered}")
    return 0 if result.found or result.status.value == "complete" else 1


def _result_payload(result) -> dict:
    return {
        "algorithm": result.algorithm,
        "status": result.status.value,
        "elapsed_seconds": result.elapsed_seconds,
        "time_to_first_seconds": result.time_to_first_seconds,
        "mappings": [{str(q): str(r) for q, r in m.items()} for m in result.mappings],
    }


def _run_batch(args: argparse.Namespace) -> int:
    from repro.service import NetEmbedService, QuerySpec

    raw = json.loads(Path(args.specs).read_text())
    if not isinstance(raw, list):
        print("error: the specs file must contain a JSON list of spec objects",
              file=sys.stderr)
        return 2

    base_dir = Path(args.specs).parent
    with NetEmbedService(default_timeout=args.timeout,
                         max_workers=args.workers) as service:
        service.register_network_from_graphml(args.hosting)
        specs = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict) or "query" not in entry:
                print(f"error: spec #{index} must be an object with a 'query' path",
                      file=sys.stderr)
                return 2
            query_path = Path(entry["query"])
            if not query_path.is_absolute():
                query_path = base_dir / query_path
            specs.append(QuerySpec(
                query=read_graphml(query_path, cls=QueryNetwork),
                constraint=entry.get("constraint"),
                node_constraint=entry.get("node_constraint"),
                algorithm=entry.get("algorithm", "auto"),
                timeout=entry.get("timeout"),
                max_results=entry.get("max_results"),
                seed=entry.get("seed"),
            ))
        responses = service.submit_batch(specs)

    if args.json:
        payload = [{
            "index": index,
            "query": response.spec.query.name,
            "network": response.network_name,
            "algorithm": response.algorithm_used,
            **_result_payload(response.result),
        } for index, response in enumerate(responses)]
        print(json.dumps(payload, indent=2))
    else:
        for index, response in enumerate(responses):
            result = response.result
            print(f"[{index}] {response.spec.query.name}: {response.algorithm_used} "
                  f"{result.status.value}, {result.count} embedding(s) in "
                  f"{result.elapsed_seconds * 1000:.1f} ms")
    return 0 if all(r.found or r.status.value == "complete" for r in responses) else 1


def _run_list_algorithms(args: argparse.Namespace) -> int:
    registry = default_registry()
    infos = (registry.with_capabilities(*args.capability)
             if args.capability else registry.infos())
    if args.json:
        payload = [{
            "name": info.name,
            "capabilities": sorted(c.value for c in info.capabilities),
            "tags": sorted(info.tags),
            "summary": info.summary,
        } for info in infos]
        print(json.dumps(payload, indent=2))
        return 0
    if not infos:
        print("no registered algorithms match")
        return 1
    width = max(len(info.name) for info in infos)
    for info in infos:
        caps = ", ".join(sorted(c.value for c in info.capabilities))
        print(f"{info.name:<{width}}  {info.summary}")
        print(f"{'':<{width}}  capabilities: {caps or '(none declared)'}")
    return 0


def _run_generate(args: argparse.Namespace) -> int:
    if args.kind == "planetlab":
        network = synthetic_planetlab_trace(num_sites=args.sites, rng=args.seed)
    elif args.kind == "brite":
        network = barabasi_albert(args.sites, edges_per_node=2, rng=args.seed)
    else:
        network = transit_stub(rng=args.seed)
    write_graphml(network, args.output)
    print(f"wrote {network.num_nodes} nodes / {network.num_edges} edges to {args.output}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    rows = driver(seed=args.seed, scaled=not args.paper_scale, timeout=args.timeout)
    if args.csv is not None:
        write_csv(rows, args.csv)
        print(f"raw rows written to {args.csv}")
    value_field = "total_ms"
    series = aggregate_series(rows, value_field=value_field)
    if series:
        print(format_figure(series, title=f"experiment {args.name}",
                            value_field="mean"))
    else:
        print(format_table(rows, title=f"experiment {args.name} (raw rows)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "embed":
        return _run_embed(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "list-algorithms":
        return _run_list_algorithms(args)
    if args.command == "generate":
        return _run_generate(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error(f"unknown command {args.command!r}")   # pragma: no cover
    return 2


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
