"""Command-line interface to the NETEMBED service.

Three subcommands cover the common workflows::

    python -m repro embed --hosting host.graphml --query query.graphml \
        --constraint "rEdge.avgDelay <= vEdge.maxDelay" --algorithm ECF

    python -m repro generate planetlab --sites 120 --seed 7 --output pl.graphml

    python -m repro experiment fig8 --seed 1 --timeout 5 --csv fig8.csv

``embed`` reads both networks from GraphML, runs the requested algorithm and
prints the embeddings (optionally as JSON); ``generate`` materialises the
synthetic hosting networks used throughout the evaluation; ``experiment``
runs one of the figure drivers from :mod:`repro.analysis` and prints the same
series the paper plots.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import EXPERIMENTS, aggregate_series, format_figure, format_table, write_csv
from repro.constraints import ConstraintExpression
from repro.core import make_algorithm
from repro.graphs import HostingNetwork, QueryNetwork, read_graphml, write_graphml
from repro.topology import barabasi_albert, synthetic_planetlab_trace, transit_stub


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NETEMBED: map virtual network requests onto a hosting network.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    embed = subparsers.add_parser(
        "embed", help="embed a GraphML query network into a GraphML hosting network")
    embed.add_argument("--hosting", required=True, type=Path,
                       help="GraphML file describing the hosting (real) network")
    embed.add_argument("--query", required=True, type=Path,
                       help="GraphML file describing the query (virtual) network")
    embed.add_argument("--constraint", default=None,
                       help="edge constraint expression (NETEMBED constraint language)")
    embed.add_argument("--node-constraint", default=None,
                       help="node constraint expression over vNode/rNode")
    embed.add_argument("--algorithm", default="ECF", choices=["ECF", "RWB", "LNS"],
                       help="which NETEMBED algorithm to run (default: ECF)")
    embed.add_argument("--timeout", type=float, default=30.0,
                       help="search budget in seconds (default: 30)")
    embed.add_argument("--max-results", type=int, default=None,
                       help="stop after this many embeddings (default: all)")
    embed.add_argument("--seed", type=int, default=None,
                       help="random seed (only used by RWB)")
    embed.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of plain text")

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic hosting network as GraphML")
    generate.add_argument("kind", choices=["planetlab", "brite", "transit-stub"],
                          help="which topology family to generate")
    generate.add_argument("--sites", type=int, default=296,
                          help="number of nodes/sites (default: 296)")
    generate.add_argument("--seed", type=int, default=None, help="random seed")
    generate.add_argument("--output", type=Path, required=True,
                          help="output GraphML path")

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's evaluation experiments")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS),
                            help="experiment id (figure number or ablation name)")
    experiment.add_argument("--seed", type=int, default=0, help="random seed")
    experiment.add_argument("--timeout", type=float, default=5.0,
                            help="per-query timeout in seconds (default: 5)")
    experiment.add_argument("--paper-scale", action="store_true",
                            help="use the paper's instance sizes instead of the "
                                 "scaled-down benchmark sizes (slow)")
    experiment.add_argument("--csv", type=Path, default=None,
                            help="also write the raw per-query rows to this CSV file")

    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #

def _run_embed(args: argparse.Namespace) -> int:
    hosting = read_graphml(args.hosting, cls=HostingNetwork)
    query = read_graphml(args.query, cls=QueryNetwork)
    kwargs = {"rng": args.seed} if args.algorithm == "RWB" else {}
    algorithm = make_algorithm(args.algorithm, **kwargs)
    constraint = ConstraintExpression(args.constraint) if args.constraint else None
    node_constraint = (ConstraintExpression(args.node_constraint)
                       if args.node_constraint else None)

    result = algorithm.search(query, hosting, constraint=constraint,
                              node_constraint=node_constraint,
                              timeout=args.timeout, max_results=args.max_results)

    if args.json:
        payload = {
            "algorithm": result.algorithm,
            "status": result.status.value,
            "elapsed_seconds": result.elapsed_seconds,
            "time_to_first_seconds": result.time_to_first_seconds,
            "mappings": [{str(q): str(r) for q, r in m.items()} for m in result.mappings],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"{result.algorithm}: {result.status.value}, {result.count} embedding(s) "
              f"in {result.elapsed_seconds * 1000:.1f} ms")
        for index, mapping in enumerate(result.mappings):
            rendered = ", ".join(f"{q}->{r}" for q, r in sorted(mapping.items(), key=str))
            print(f"  [{index}] {rendered}")
    return 0 if result.found or result.status.value == "complete" else 1


def _run_generate(args: argparse.Namespace) -> int:
    if args.kind == "planetlab":
        network = synthetic_planetlab_trace(num_sites=args.sites, rng=args.seed)
    elif args.kind == "brite":
        network = barabasi_albert(args.sites, edges_per_node=2, rng=args.seed)
    else:
        network = transit_stub(rng=args.seed)
    write_graphml(network, args.output)
    print(f"wrote {network.num_nodes} nodes / {network.num_edges} edges to {args.output}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    rows = driver(seed=args.seed, scaled=not args.paper_scale, timeout=args.timeout)
    if args.csv is not None:
        write_csv(rows, args.csv)
        print(f"raw rows written to {args.csv}")
    value_field = "total_ms"
    series = aggregate_series(rows, value_field=value_field)
    if series:
        print(format_figure(series, title=f"experiment {args.name}",
                            value_field="mean"))
    else:
        print(format_table(rows, title=f"experiment {args.name} (raw rows)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "embed":
        return _run_embed(args)
    if args.command == "generate":
        return _run_generate(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error(f"unknown command {args.command!r}")   # pragma: no cover
    return 2


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
