"""Command-line interface to the NETEMBED service.

The subcommands cover the common workflows::

    python -m repro embed --hosting host.graphml --query query.graphml \
        --constraint "rEdge.avgDelay <= vEdge.maxDelay" --algorithm ECF

    python -m repro batch --hosting host.graphml --specs batch.json --json

    python -m repro plan --hosting host.graphml --query query.graphml \
        --repeat 3 --tick 1

    python -m repro churn --sites 60 --queries 4 --ticks 10

    python -m repro loadtest --scenario steady --scenario overload \
        --record trace.jsonl --output-dir results/harness

    python -m repro serve --hosting host.graphml --port 7478

    python -m repro list-algorithms

    python -m repro generate planetlab --sites 120 --seed 7 --output pl.graphml

    python -m repro partition --hosting host.graphml --attribute region \
        --query query.graphml --constraint "..."

    python -m repro experiment fig8 --seed 1 --timeout 5 --csv fig8.csv

``embed`` reads both networks from GraphML, runs the requested algorithm and
prints the embeddings (optionally as JSON); ``batch`` feeds a JSON file of
query specs through :meth:`NetEmbedService.submit_batch`; ``plan`` compiles
an :class:`~repro.core.plan.EmbeddingPlan`, runs it repeatedly through the
service's version-aware plan cache and explains the cache state (hits,
misses, per-entry statistics, invalidation after monitor ticks);
``churn`` drives an embed→tick→repair loop under sparse network churn and
reports repair-vs-reembed cost;
``loadtest`` replays recorded arrival traces open-loop against a live
serving tier across a scenario matrix (steady/overload/burst/diurnal/churn)
and reports honest latency percentiles — measured from each request's
*scheduled* offset, ``null`` on an empty sample (see :mod:`repro.harness`);
``serve`` runs the asyncio serving tier — admission control, per-tenant
QoS, deadline-aware shedding, and a ``metrics`` endpoint — over a
registered hosting model (see :mod:`repro.server`);
``list-algorithms`` prints the capability registry; ``generate`` materialises
the synthetic hosting networks used throughout the evaluation; ``partition``
shards a hosting network for the cluster tier (see :mod:`repro.cluster`) and
optionally answers a query through the two-level coarse/fine search;
``experiment``
runs one of the figure drivers from :mod:`repro.analysis` and prints the same
series the paper plots.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import repro.baselines  # noqa: F401 — registers the baselines for by-name use
from repro.analysis import EXPERIMENTS, aggregate_series, format_figure, format_table, write_csv
from repro.api import Capability, SearchRequest, default_registry
from repro.constraints import ConstraintExpression
from repro.graphs import HostingNetwork, QueryNetwork, read_graphml, write_graphml
from repro.topology import barabasi_albert, synthetic_planetlab_trace, transit_stub


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NETEMBED: map virtual network requests onto a hosting network.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    algorithm_names = default_registry().names()

    embed = subparsers.add_parser(
        "embed", help="embed a GraphML query network into a GraphML hosting network")
    embed.add_argument("--hosting", required=True, type=Path,
                       help="GraphML file describing the hosting (real) network")
    embed.add_argument("--query", required=True, type=Path,
                       help="GraphML file describing the query (virtual) network")
    embed.add_argument("--constraint", default=None,
                       help="edge constraint expression (NETEMBED constraint language)")
    embed.add_argument("--node-constraint", default=None,
                       help="node constraint expression over vNode/rNode")
    embed.add_argument("--algorithm", default="ECF", choices=algorithm_names,
                       help="which registered algorithm to run (default: ECF)")
    embed.add_argument("--timeout", type=float, default=30.0,
                       help="search budget in seconds (default: 30)")
    embed.add_argument("--max-results", type=int, default=None,
                       help="stop after this many embeddings (default: all)")
    embed.add_argument("--seed", type=int, default=None,
                       help="random seed (only used by seedable algorithms)")
    embed.add_argument("--parallelism", type=int, default=None,
                       help="shard the search across this many worker "
                            "processes (same mapping stream as serial; "
                            "default: serial)")
    embed.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of plain text")

    batch = subparsers.add_parser(
        "batch", help="run a JSON file of query specs through the batch service")
    batch.add_argument("--hosting", required=True, type=Path,
                       help="GraphML file registered as the batch's hosting network")
    batch.add_argument("--specs", required=True, type=Path,
                       help="JSON file: a list of spec objects with a 'query' "
                            "GraphML path and optional constraint/algorithm/"
                            "timeout/max_results/seed fields")
    batch.add_argument("--workers", type=int, default=None,
                       help="thread-pool size (default: executor default)")
    batch.add_argument("--timeout", type=float, default=30.0,
                       help="default per-query budget in seconds (default: 30)")
    batch.add_argument("--json", action="store_true",
                       help="print the responses as JSON instead of plain text")

    list_algorithms = subparsers.add_parser(
        "list-algorithms", help="list the registered algorithms and their capabilities")
    list_algorithms.add_argument("--json", action="store_true",
                                 help="print the registry as JSON")
    list_algorithms.add_argument("--capability", action="append", default=None,
                                 metavar="CAP",
                                 choices=sorted(c.value for c in Capability),
                                 help="only show algorithms declaring this "
                                      "capability (repeatable)")

    plan = subparsers.add_parser(
        "plan", help="compile an embedding plan, exercise the plan cache and "
                     "explain its state")
    plan.add_argument("--hosting", required=True, type=Path,
                      help="GraphML file describing the hosting (real) network")
    plan.add_argument("--query", required=True, type=Path,
                      help="GraphML file describing the query (virtual) network")
    plan.add_argument("--constraint", default=None,
                      help="edge constraint expression")
    plan.add_argument("--node-constraint", default=None,
                      help="node constraint expression over vNode/rNode")
    plan.add_argument("--algorithm", default="ECF", choices=algorithm_names,
                      help="which registered algorithm to plan for (default: ECF)")
    plan.add_argument("--repeat", type=int, default=3,
                      help="how many times to run the query against the "
                           "cache (default: 3; first run compiles, the rest hit)")
    plan.add_argument("--tick", type=int, default=0,
                      help="monitor refreshes applied after the repeats, "
                           "followed by one more run, to demonstrate "
                           "version-based invalidation (default: 0)")
    plan.add_argument("--timeout", type=float, default=30.0,
                      help="per-run search budget in seconds (default: 30)")
    plan.add_argument("--max-results", type=int, default=None,
                      help="per-run result cap (default: all)")
    plan.add_argument("--seed", type=int, default=None,
                      help="per-run seed for seedable algorithms and the monitor")
    plan.add_argument("--json", action="store_true",
                      help="print the cache explanation as JSON")

    churn = subparsers.add_parser(
        "churn", help="run an embed→tick→repair loop under sparse network "
                      "churn and report repair-vs-reembed cost")
    churn.add_argument("--hosting", type=Path, default=None,
                       help="GraphML hosting network (default: synthetic "
                            "PlanetLab trace with --sites sites)")
    churn.add_argument("--sites", type=int, default=60,
                       help="synthetic PlanetLab size when no --hosting "
                            "file is given (default: 60)")
    churn.add_argument("--queries", type=int, default=4,
                       help="reserved embeddings to keep healthy (default: 4)")
    churn.add_argument("--query-size", type=int, default=8,
                       help="nodes per query (default: 8)")
    churn.add_argument("--slack", type=float, default=0.35,
                       help="delay-window slack of the generated queries "
                            "(default: 0.35)")
    churn.add_argument("--ticks", type=int, default=10,
                       help="churn ticks to apply (default: 10)")
    churn.add_argument("--link-fraction", type=float, default=0.05,
                       help="fraction of links jittered per tick (default: 0.05)")
    churn.add_argument("--node-fraction", type=float, default=0.05,
                       help="fraction of nodes perturbed per tick (default: 0.05)")
    churn.add_argument("--capacity", type=float, default=4.0,
                       help="per-host reservation capacity (default: 4)")
    churn.add_argument("--timeout", type=float, default=30.0,
                       help="per-operation budget in seconds (default: 30)")
    churn.add_argument("--seed", type=int, default=0,
                       help="workload + churn RNG seed (default: 0)")
    churn.add_argument("--json", action="store_true",
                       help="print the scenario report as JSON")

    loadtest = subparsers.add_parser(
        "loadtest", help="replay trace-driven load scenarios against a live "
                         "serving tier and report honest latency/shed numbers")
    loadtest.add_argument("--scenario", action="append", default=None,
                          metavar="NAME|CONFIG.json",
                          help="named scenario or JSON config file "
                               "(repeatable; default: the core matrix "
                               "steady, overload, burst, diurnal)")
    loadtest.add_argument("--seed", type=int, default=9,
                          help="scene + trace RNG seed (default: 9)")
    loadtest.add_argument("--record", type=Path, default=None,
                          help="write the scenario's trace to this JSONL "
                               "artifact (requires exactly one scenario)")
    loadtest.add_argument("--replay", type=Path, default=None,
                          help="replay this recorded JSONL trace instead of "
                               "regenerating one (requires exactly one "
                               "scenario; the scene is verified against the "
                               "trace's workload fingerprints)")
    loadtest.add_argument("--output-dir", type=Path,
                          default=Path("benchmarks") / "results" / "harness",
                          help="where per-scenario requests.csv/summary.json "
                               "and the combined loadtest.json are written "
                               "(default: benchmarks/results/harness)")
    loadtest.add_argument("--partitions", type=int, default=None,
                          help="serve every scenario through the partitioned "
                               "cluster tier with this many balanced "
                               "partitions (see repro.cluster)")
    loadtest.add_argument("--list", action="store_true",
                          help="list the named scenarios and exit")
    loadtest.add_argument("--json", action="store_true",
                          help="print the combined summary document as JSON")

    serve = subparsers.add_parser(
        "serve", help="run the asyncio serving tier over a hosting network")
    serve.add_argument("--hosting", required=True, type=Path,
                       help="GraphML file registered as the served hosting "
                            "network (the server's default model)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 = pick a free port; the "
                            "chosen port is announced on stdout)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="default per-request search budget in seconds "
                            "(default: 30)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent engine executions (default: 2)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue bound; arrivals beyond it are "
                            "shed (default: 64)")
    serve.add_argument("--qos", type=Path, default=None,
                       help="JSON file of tenant QoS policies: "
                            '{"default": {...}, "tenants": {name: {...}}} '
                            "with rate/burst/max_queued/max_inflight/"
                            "max_plans fields")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for this many seconds then exit "
                            "(default: run until interrupted)")
    serve.add_argument("--wal", type=Path, default=None,
                       help="journal reservations to this write-ahead log; "
                            "an existing log is replayed on startup so the "
                            "server resumes with its pre-crash reservations")
    serve.add_argument("--fault-plan", type=Path, default=None,
                       help="JSON fault plan installed for the server's "
                            "lifetime (deterministic fault injection; see "
                            "repro.faults.FaultPlan)")
    serve.add_argument("--partitions", type=int, default=None,
                       help="serve through the partitioned cluster tier "
                            "with this many balanced partitions "
                            "(see repro.cluster)")
    serve.add_argument("--partition-attribute", default=None,
                       help="serve through the cluster tier, partitioning "
                            "by this categorical node attribute "
                            "(overrides --partitions)")
    serve.add_argument("--json", action="store_true",
                       help="print the final stats snapshot as JSON on exit")

    recover = subparsers.add_parser(
        "recover", help="replay a reservation write-ahead log and report "
                        "the recovered state")
    recover.add_argument("--wal", required=True, type=Path,
                         help="write-ahead log to replay")
    recover.add_argument("--hosting", required=True, type=Path,
                         help="GraphML hosting network the reservations "
                              "were granted against")
    recover.add_argument("--compact", action="store_true",
                         help="after replay, rewrite the log keeping only "
                              "records for still-active reservations")
    recover.add_argument("--json", action="store_true",
                         help="print the recovery report as JSON")

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic hosting network as GraphML")
    generate.add_argument("kind", choices=["planetlab", "brite", "transit-stub"],
                          help="which topology family to generate")
    generate.add_argument("--sites", type=int, default=296,
                          help="number of nodes/sites (default: 296)")
    generate.add_argument("--seed", type=int, default=None, help="random seed")
    generate.add_argument("--output", type=Path, required=True,
                          help="output GraphML path")

    partition = subparsers.add_parser(
        "partition", help="shard a hosting network for the cluster tier and "
                          "optionally answer a query through the two-level "
                          "search")
    partition.add_argument("--hosting", required=True, type=Path,
                           help="GraphML file describing the hosting network")
    partition.add_argument("--partitions", type=int, default=None,
                           help="balanced-connected partition count "
                                "(default: 8 unless --attribute is given)")
    partition.add_argument("--attribute", default=None,
                           help="partition by this categorical node attribute "
                                "(e.g. 'region' or 'zone') instead of "
                                "balanced slicing")
    partition.add_argument("--query", type=Path, default=None,
                           help="optional GraphML query to embed through the "
                                "cluster coordinator")
    partition.add_argument("--constraint", default=None,
                           help="edge constraint expression")
    partition.add_argument("--node-constraint", default=None,
                           help="node constraint expression over vNode/rNode")
    partition.add_argument("--algorithm", default="ECF", choices=algorithm_names,
                           help="intra-partition algorithm (default: ECF)")
    partition.add_argument("--timeout", type=float, default=30.0,
                           help="search budget in seconds (default: 30)")
    partition.add_argument("--max-results", type=int, default=1,
                           help="stop after this many embeddings (default: 1)")
    partition.add_argument("--seed", type=int, default=None,
                           help="seed for the per-partition searches")
    partition.add_argument("--no-cross-partition", action="store_true",
                           help="disable the cross-partition split-and-stitch "
                                "stage (single-partition placement only)")
    partition.add_argument("--json", action="store_true",
                           help="print the partition/search report as JSON")

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's evaluation experiments")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS),
                            help="experiment id (figure number or ablation name)")
    experiment.add_argument("--seed", type=int, default=0, help="random seed")
    experiment.add_argument("--timeout", type=float, default=5.0,
                            help="per-query timeout in seconds (default: 5)")
    experiment.add_argument("--paper-scale", action="store_true",
                            help="use the paper's instance sizes instead of the "
                                 "scaled-down benchmark sizes (slow)")
    experiment.add_argument("--csv", type=Path, default=None,
                            help="also write the raw per-query rows to this CSV file")

    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #

def _run_embed(args: argparse.Namespace) -> int:
    hosting = read_graphml(args.hosting, cls=HostingNetwork)
    query = read_graphml(args.query, cls=QueryNetwork)
    info = default_registry().get(args.algorithm)
    kwargs = {}
    if args.seed is not None and info.has(Capability.SEEDABLE):
        kwargs["rng"] = args.seed
    algorithm = info.create(**kwargs)
    constraint = ConstraintExpression(args.constraint) if args.constraint else None
    node_constraint = (ConstraintExpression(args.node_constraint)
                       if args.node_constraint else None)

    result = algorithm.request(SearchRequest.build(
        query, hosting, constraint=constraint, node_constraint=node_constraint,
        timeout=args.timeout, max_results=args.max_results,
        parallelism=args.parallelism))

    if args.json:
        print(json.dumps(_result_payload(result), indent=2))
    else:
        print(f"{result.algorithm}: {result.status.value}, {result.count} embedding(s) "
              f"in {result.elapsed_seconds * 1000:.1f} ms")
        for index, mapping in enumerate(result.mappings):
            rendered = ", ".join(f"{q}->{r}" for q, r in sorted(mapping.items(), key=str))
            print(f"  [{index}] {rendered}")
    return 0 if result.found or result.status.value == "complete" else 1


def _result_payload(result) -> dict:
    return {
        "algorithm": result.algorithm,
        "status": result.status.value,
        "elapsed_seconds": result.elapsed_seconds,
        "time_to_first_seconds": result.time_to_first_seconds,
        "mappings": [{str(q): str(r) for q, r in m.items()} for m in result.mappings],
    }


def _run_batch(args: argparse.Namespace) -> int:
    from repro.service import NetEmbedService, QuerySpec

    raw = json.loads(Path(args.specs).read_text())
    if not isinstance(raw, list):
        print("error: the specs file must contain a JSON list of spec objects",
              file=sys.stderr)
        return 2

    base_dir = Path(args.specs).parent
    with NetEmbedService(default_timeout=args.timeout,
                         max_workers=args.workers) as service:
        service.register_network_from_graphml(args.hosting)
        specs = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict) or "query" not in entry:
                print(f"error: spec #{index} must be an object with a 'query' path",
                      file=sys.stderr)
                return 2
            query_path = Path(entry["query"])
            if not query_path.is_absolute():
                query_path = base_dir / query_path
            specs.append(QuerySpec(
                query=read_graphml(query_path, cls=QueryNetwork),
                constraint=entry.get("constraint"),
                node_constraint=entry.get("node_constraint"),
                algorithm=entry.get("algorithm", "auto"),
                timeout=entry.get("timeout"),
                max_results=entry.get("max_results"),
                seed=entry.get("seed"),
                parallelism=entry.get("parallelism"),
            ))
        responses = service.submit_batch(specs)

    if args.json:
        payload = [{
            "index": index,
            "query": response.spec.query.name,
            "network": response.network_name,
            "algorithm": response.algorithm_used,
            **_result_payload(response.result),
        } for index, response in enumerate(responses)]
        print(json.dumps(payload, indent=2))
    else:
        for index, response in enumerate(responses):
            result = response.result
            print(f"[{index}] {response.spec.query.name}: {response.algorithm_used} "
                  f"{result.status.value}, {result.count} embedding(s) in "
                  f"{result.elapsed_seconds * 1000:.1f} ms")
    return 0 if all(r.found or r.status.value == "complete" for r in responses) else 1


def _run_plan(args: argparse.Namespace) -> int:
    """Warm the plan cache with repeated runs and explain the resulting state."""
    from repro.service import NetEmbedService, QuerySpec

    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2

    query = read_graphml(args.query, cls=QueryNetwork)
    service = NetEmbedService(default_timeout=args.timeout)
    network_name = service.register_network_from_graphml(args.hosting)

    spec = QuerySpec(query=query, constraint=args.constraint,
                     node_constraint=args.node_constraint,
                     algorithm=args.algorithm, timeout=args.timeout,
                     max_results=args.max_results, seed=args.seed)

    def cache_label(before, after):
        # "bypass" = the cache was never consulted (non-preparable algorithm).
        if after["hits"] > before["hits"]:
            return "hit"
        if after["misses"] > before["misses"]:
            return "miss"
        return "bypass"

    runs = []
    for _ in range(args.repeat):
        before = service.plans.stats()
        response = service.submit(spec)
        after = service.plans.stats()
        runs.append({
            "cache": cache_label(before, after),
            "status": response.status.value,
            "mappings": len(response.mappings),
            "elapsed_ms": response.elapsed_seconds * 1000,
        })

    invalidation = None
    if args.tick > 0:
        monitor = service.attach_monitor(network_name, rng=args.seed)
        version = monitor.run(args.tick)
        before = service.plans.stats()
        response = service.submit(spec)
        after = service.plans.stats()
        invalidation = {
            "ticks": args.tick,
            "model_version": version,
            "cache": cache_label(before, after),
            "mappings": len(response.mappings),
        }

    service_stats = service.stats()
    stats = service_stats["plan_cache"]
    entries = [{
        "network": entry.key[0],
        "model_version": entry.key[1],
        "signature": list(entry.key[2]),
        "fingerprint": entry.key[3],
        "hits": entry.hits,
        **entry.plan.describe(),
    } for entry in service.plans.entries()]

    if args.json:
        # "cache" stays for compatibility; "service" is the same
        # consolidated snapshot the serving tier's metrics endpoint returns.
        print(json.dumps({"cache": stats, "service": service_stats,
                          "entries": entries, "runs": runs,
                          "invalidation": invalidation}, indent=2))
        return 0

    print(f"plan cache: {stats['size']}/{stats['capacity']} entries, "
          f"{stats['hits']} hits / {stats['misses']} misses "
          f"({stats['evictions']} evictions, "
          f"{stats['invalidations']} stale invalidations)")
    for index, entry in enumerate(entries):
        print(f"  [{index}] {entry['algorithm']} on {entry['network']!r} "
              f"v{entry['model_version']} fingerprint={entry['fingerprint']}")
        print(f"      hits={entry['hits']} executions={entry['executions']} "
              f"filter_cells={entry['filter_cells']} "
              f"filter_entries={entry['filter_entries']} "
              f"prepare={entry['prepare_seconds'] * 1000:.1f}ms "
              f"stale={'yes' if entry['stale'] else 'no'}")
    for index, run in enumerate(runs):
        print(f"  run {index}: cache {run['cache']:<6} {run['status']}, "
              f"{run['mappings']} mapping(s) in {run['elapsed_ms']:.1f} ms")
    if invalidation is not None:
        label = invalidation["cache"]
        if label == "miss":
            label = "miss (plan invalidated)"
        print(f"  after {invalidation['ticks']} monitor tick(s) -> model "
              f"v{invalidation['model_version']}: cache {label}, "
              f"{invalidation['mappings']} mapping(s)")
    return 0


def _run_churn(args: argparse.Namespace) -> int:
    """The embed→tick→repair scenario: keep reservations healthy under churn.

    Embeds and reserves a suite of feasible queries, then applies sparse
    attribute churn tick by tick.  After every tick each reservation is
    repaired in place (only violated assignments move) and, for comparison,
    the same query is answered from scratch — the cost the service would pay
    by re-embedding instead.  One cache-routed traffic query per tick also
    demonstrates the plan cache's patched-vs-recompiled refresh path.
    """
    import time as _time

    from repro.service import NetEmbedService
    from repro.workloads import ChurnConfig, ChurnProcess, churn_embedding_suite
    from repro.utils.rng import as_rng

    if args.ticks < 1:
        print("error: --ticks must be >= 1", file=sys.stderr)
        return 2
    rng = as_rng(args.seed)
    if args.hosting is not None:
        hosting = read_graphml(args.hosting, cls=HostingNetwork)
    else:
        from repro.topology import synthetic_planetlab_trace as _planetlab
        hosting = _planetlab(num_sites=args.sites, rng=rng)
    for node in hosting.nodes():
        hosting.set_capacity(node, args.capacity)

    service = NetEmbedService(default_timeout=args.timeout)
    network_name = service.register_network(hosting, name=hosting.name)
    workloads = churn_embedding_suite(hosting, num_queries=args.queries,
                                      query_size=args.query_size,
                                      slack=args.slack, rng=rng)

    from repro.service import QuerySpec

    reservations = []
    for workload in workloads:
        response = service.submit(QuerySpec(
            query=workload.query, constraint=workload.constraint,
            algorithm="ECF", max_results=1, reserve=True,
            timeout=args.timeout))
        if response.reservation_id is None:
            print(f"error: query {workload.query.name!r} found no embedding "
                  f"to reserve", file=sys.stderr)
            return 1
        reservations.append((response.reservation_id, workload))
    traffic_spec = QuerySpec(query=workloads[0].query,
                             constraint=workloads[0].constraint,
                             algorithm="ECF", max_results=1,
                             timeout=args.timeout)

    churn = ChurnProcess(hosting, ChurnConfig(
        link_fraction=args.link_fraction,
        node_fraction=args.node_fraction), rng=rng)

    totals = {"intact": 0, "repaired": 0, "failed": 0, "timeout": 0,
              "moved_nodes": 0}
    repair_seconds = 0.0
    reembed_seconds = 0.0
    ticks = []
    for _ in range(args.ticks):
        tick = churn.tick()
        service.registry.touch(network_name)
        tick_row = {"tick": tick.index,
                    "touched_edges": len(tick.touched_edges),
                    "touched_nodes": len(tick.touched_nodes),
                    "repairs": []}
        for reservation_id, workload in reservations:
            repair = service.repair(reservation_id, timeout=args.timeout)
            repair_seconds += repair.result.elapsed_seconds
            started = _time.perf_counter()
            fresh = service.submit(QuerySpec(
                query=workload.query, constraint=workload.constraint,
                algorithm="ECF", max_results=1, timeout=args.timeout))
            reembed_seconds += _time.perf_counter() - started
            totals[repair.status] = totals.get(repair.status, 0) + 1
            totals["moved_nodes"] += len(repair.moved)
            tick_row["repairs"].append({
                "reservation": reservation_id,
                "status": repair.status,
                "moved": len(repair.moved),
                "repair_ms": repair.result.elapsed_seconds * 1000,
                "reembed_found": fresh.found,
            })
        service.submit(traffic_spec)   # exercise the plan cache under churn
        ticks.append(tick_row)

    cache = service.plans.stats()
    ratio = reembed_seconds / repair_seconds if repair_seconds > 0 else float("inf")
    report = {
        "network": {"name": network_name, "nodes": hosting.num_nodes,
                    "edges": hosting.num_edges},
        "scenario": {"queries": len(reservations), "ticks": args.ticks,
                     "link_fraction": args.link_fraction,
                     "node_fraction": args.node_fraction, "seed": args.seed},
        "repair": dict(totals),
        "cost": {"repair_seconds": repair_seconds,
                 "reembed_seconds": reembed_seconds,
                 "reembed_over_repair": ratio},
        "plan_cache": cache,
        "ticks": ticks,
    }
    if args.json:
        print(json.dumps(report, indent=2))
        return 0

    print(f"churn scenario on {network_name!r}: {hosting.num_nodes} nodes / "
          f"{hosting.num_edges} edges, {len(reservations)} reserved "
          f"embeddings, {args.ticks} ticks "
          f"(link fraction {args.link_fraction}, node fraction "
          f"{args.node_fraction})")
    checks = sum(totals.get(k, 0) for k in ("intact", "repaired", "failed",
                                            "timeout"))
    print(f"repairs: {checks} checks -> {totals['intact']} intact, "
          f"{totals['repaired']} repaired ({totals['moved_nodes']} node "
          f"moves), {totals['failed']} failed, {totals['timeout']} timed out")
    print(f"cost:    repair {repair_seconds * 1000:8.1f} ms total vs "
          f"re-embed {reembed_seconds * 1000:8.1f} ms total "
          f"({ratio:.1f}x in favour of repair)")
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses, "
          f"{cache['patched']} patched vs {cache['recompiled']} recompiled "
          f"refreshes")
    return 0 if totals["failed"] == 0 and totals["timeout"] == 0 else 1


def _run_loadtest(args: argparse.Namespace) -> int:
    """Replay trace-driven scenarios against a live server and report."""
    import dataclasses

    from repro.analysis import environment_info
    from repro.harness import (
        DEFAULT_MATRIX,
        SCENARIOS,
        load_scenario,
        run_scenario,
        scenario_summary,
        write_scenario_artifacts,
    )
    from repro.workloads import read_trace, write_trace

    if args.list:
        for name in sorted(SCENARIOS):
            config = SCENARIOS[name]
            print(f"{name}: {config.arrival} arrivals, "
                  f"horizon {config.horizon:g}s")
        return 0

    sources = list(args.scenario) if args.scenario else list(DEFAULT_MATRIX)
    if (args.record or args.replay) and len(sources) != 1:
        print("error: --record/--replay require exactly one --scenario",
              file=sys.stderr)
        return 2
    try:
        configs = [load_scenario(source) for source in sources]
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.partitions is not None:
        configs = [dataclasses.replace(config, partitions=args.partitions)
                   for config in configs]

    replay_trace = None
    if args.replay is not None:
        try:
            replay_trace = read_trace(args.replay)
        except (ValueError, OSError) as exc:
            print(f"error: cannot read trace {args.replay}: {exc}",
                  file=sys.stderr)
            return 2

    summaries = {}
    exit_code = 0
    for config in configs:
        try:
            run = run_scenario(config, seed=args.seed, trace=replay_trace)
        except ValueError as exc:
            print(f"error: scenario {config.name!r}: {exc}", file=sys.stderr)
            return 2
        if args.record is not None:
            write_trace(run.trace, args.record)
            print(f"recorded {len(run.trace.arrivals)} arrival(s) / "
                  f"{len(run.trace.departures)} departure(s) to {args.record}")
        write_scenario_artifacts(run, args.output_dir)
        summary = scenario_summary(run)
        summaries[config.name] = summary

        latency = summary["latency"]
        outcomes = summary["outcomes"]
        slip = summary["schedule_slip"]
        healthy = (summary["accounting"]["consistent"]
                   and outcomes["errors"] == 0
                   and summary["server"]["protocol_errors"] == 0
                   and summary["reservations"]["release_failures"] == 0)
        if not healthy:
            exit_code = 1

        def _ms(value):
            return "n/a" if value is None else f"{value * 1000:.1f}ms"

        print(f"{config.name}: {outcomes['offered']} offered -> "
              f"{outcomes['served']} served / {outcomes['shed']} shed / "
              f"{outcomes['errors']} error(s); "
              f"p50 {_ms(latency['p50_seconds'])} "
              f"p99 {_ms(latency['p99_seconds'])}, "
              f"slip max {_ms(slip['max_seconds'])}; "
              f"accounting {'ok' if summary['accounting']['consistent'] else 'INCONSISTENT'}")

    combined = {
        "schema_version": 1,
        "seed": args.seed,
        "scenarios": summaries,
        "environment": environment_info(),
    }
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    combined_path = output_dir / "loadtest.json"
    combined_path.write_text(
        json.dumps(combined, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    if args.json:
        print(json.dumps(combined, indent=2, sort_keys=True))
    else:
        print(f"wrote per-scenario artifacts and {combined_path}")
    return exit_code


def _run_serve(args: argparse.Namespace) -> int:
    """Run the asyncio serving tier until interrupted (or for --duration)."""
    import asyncio

    from repro.server import (
        AdmissionConfig,
        EmbeddingServer,
        ServerConfig,
        ServiceRegistry,
        TenantPolicy,
    )

    admission_kwargs = {"max_queue_depth": args.queue_depth}
    if args.qos is not None:
        try:
            qos = json.loads(args.qos.read_text())
            if "default" in qos:
                admission_kwargs["default_policy"] = TenantPolicy(**qos["default"])
            admission_kwargs["tenants"] = {
                name: TenantPolicy(**policy)
                for name, policy in qos.get("tenants", {}).items()}
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot load QoS policies from {args.qos}: {exc}",
                  file=sys.stderr)
            return 2
    config = ServerConfig(default_timeout=args.timeout,
                          engine_workers=args.workers,
                          admission=AdmissionConfig(**admission_kwargs))
    service = None
    if args.partitions is not None or args.partition_attribute is not None:
        from repro.cluster import ClusterService
        service = ClusterService(
            default_timeout=config.default_timeout,
            plan_cache_size=config.plan_cache_size,
            num_partitions=args.partitions if args.partitions else 8,
            attribute=args.partition_attribute)
    registry = ServiceRegistry(config, service=service)
    name = registry.service.register_network_from_graphml(args.hosting,
                                                          default=True)
    hosting = registry.models.get(name)

    if args.wal is not None:
        from repro.service.wal import WALError
        try:
            report = registry.service.attach_wal(args.wal)
        except (WALError, OSError, ValueError) as exc:
            print(f"error: cannot recover WAL {args.wal}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wal: replayed {report['records']} record(s) from "
              f"{args.wal} ({report['active']} active reservation(s), "
              f"{report['skipped']} torn line(s) skipped)", flush=True)

    fault_plan = None
    if args.fault_plan is not None:
        from repro import faults
        try:
            fault_plan = faults.FaultPlan.from_json(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load fault plan from {args.fault_plan}: "
                  f"{exc}", file=sys.stderr)
            return 2

    async def run() -> dict:
        server = EmbeddingServer(registry, host=args.host, port=args.port)
        await server.start()
        print(f"serving {name!r} ({hosting.num_nodes} nodes, "
              f"{hosting.num_edges} links) on {server.host}:{server.port}",
              flush=True)
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
        return server.stats()

    try:
        if fault_plan is not None:
            from repro import faults
            with faults.injecting(fault_plan):
                stats = asyncio.run(run())
                fault_stats = faults.active()
                fired = fault_stats.stats() if fault_stats else None
            if fired is not None:
                print(f"faults: fired {fired['total_fired']} "
                      f"({json.dumps(fired['fired_counts'])})", flush=True)
        else:
            stats = asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        return 0
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        admission = stats["admission"]
        cache = stats["service"]["plan_cache"]
        print(f"served {admission['completed']} request(s), "
              f"shed {admission['shed_total']} "
              f"({json.dumps(admission['shed'])}), "
              f"plan cache {cache['hits']} hit(s) / {cache['misses']} miss(es)")
    return 0


def _run_recover(args: argparse.Namespace) -> int:
    """Replay a reservation WAL against a hosting network and report."""
    from repro.service import NetEmbedService
    from repro.service.wal import WALError

    service = NetEmbedService()
    name = service.register_network_from_graphml(args.hosting, default=True)
    try:
        report = service.attach_wal(args.wal)
    except (WALError, OSError, ValueError) as exc:
        print(f"error: cannot recover WAL {args.wal}: {exc}", file=sys.stderr)
        return 2
    report["network"] = name
    report["reservations"] = service.reservations.snapshot()
    if args.compact:
        report["compacted_records"] = service.reservations.compact_wal()
    service.shutdown()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    applied = report["applied"]
    print(f"replayed {report['records']} record(s) from {args.wal}: "
          f"{applied['reserve']} reserve / {applied['rebind']} rebind / "
          f"{applied['release']} release, {report['active']} active "
          f"reservation(s), {report['skipped']} torn line(s) skipped")
    for entry in report["reservations"]:
        print(f"  {entry['id']}: {len(entry['mapping'])} node(s) on "
              f"{entry['network']} ({entry['rebinds']} rebind(s))")
    if args.compact:
        print(f"compacted log to {report['compacted_records']} record(s)")
    return 0


def _run_list_algorithms(args: argparse.Namespace) -> int:
    registry = default_registry()
    infos = (registry.with_capabilities(*args.capability)
             if args.capability else registry.infos())
    if args.json:
        payload = [{
            "name": info.name,
            "capabilities": sorted(c.value for c in info.capabilities),
            "tags": sorted(info.tags),
            "summary": info.summary,
        } for info in infos]
        print(json.dumps(payload, indent=2))
        return 0
    if not infos:
        print("no registered algorithms match")
        return 1
    width = max(len(info.name) for info in infos)
    for info in infos:
        caps = ", ".join(sorted(c.value for c in info.capabilities))
        print(f"{info.name:<{width}}  {info.summary}")
        print(f"{'':<{width}}  capabilities: {caps or '(none declared)'}")
    return 0


def _run_generate(args: argparse.Namespace) -> int:
    if args.kind == "planetlab":
        network = synthetic_planetlab_trace(num_sites=args.sites, rng=args.seed)
    elif args.kind == "brite":
        network = barabasi_albert(args.sites, edges_per_node=2, rng=args.seed)
    else:
        network = transit_stub(rng=args.seed)
    write_graphml(network, args.output)
    print(f"wrote {network.num_nodes} nodes / {network.num_edges} edges to {args.output}")
    return 0


def _run_partition(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterCoordinator

    hosting = read_graphml(args.hosting, cls=HostingNetwork)
    info = default_registry().get(args.algorithm)
    coordinator = ClusterCoordinator(
        hosting, attribute=args.attribute,
        num_partitions=args.partitions, algorithm=info.create())
    stats = coordinator.stats()
    report = {"partition": stats}

    if args.query is not None:
        query = read_graphml(args.query, cls=QueryNetwork)
        result = coordinator.embed(
            query, constraint=args.constraint,
            node_constraint=args.node_constraint, timeout=args.timeout,
            max_results=args.max_results, seed=args.seed,
            cross_partition=not args.no_cross_partition)
        report["search"] = {
            "verdict": result.verdict,
            "found": result.found,
            "partition": result.partition,
            "used_cross_partition": result.used_cross_partition,
            "fragment_assignment": result.fragment_assignment,
            "partitions_pruned": result.partitions_pruned,
            "partitions_searched": result.partitions_searched,
            "coarse_placements_tried": result.coarse_placements_tried,
            "stitch_checks": result.stitch_checks,
            "elapsed_seconds": result.elapsed_seconds,
            "mappings": [{str(q): str(r) for q, r in m.items()}
                         for m in result.mappings],
        }

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"{hosting.name}: {stats['partitions']} partitions over "
              f"{stats['primary_nodes']} nodes "
              f"(largest {stats['max_partition_nodes']} nodes, "
              f"boundary {stats['boundary_edges']} edges, "
              f"quotient {stats['quotient_edges']} super-edges)")
        for name, size in sorted(stats["partition_nodes"].items()):
            print(f"  {name}: {size} nodes")
        if args.query is not None:
            search = report["search"]
            where = (" + ".join(sorted(set(search["fragment_assignment"].values())))
                     if search["fragment_assignment"] else search["partition"])
            print(f"search: {search['verdict']} via {where or 'n/a'} "
                  f"({'cross-partition' if search['used_cross_partition'] else 'single partition'}, "
                  f"{search['partitions_pruned']} pruned, "
                  f"{search['elapsed_seconds'] * 1000:.1f} ms)")
            for index, mapping in enumerate(search["mappings"]):
                rendered = ", ".join(f"{q}->{r}"
                                     for q, r in sorted(mapping.items()))
                print(f"  [{index}] {rendered}")
    if args.query is None:
        return 0
    return 0 if report["search"]["verdict"] != "infeasible" else 1


def _run_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    rows = driver(seed=args.seed, scaled=not args.paper_scale, timeout=args.timeout)
    if args.csv is not None:
        write_csv(rows, args.csv)
        print(f"raw rows written to {args.csv}")
    value_field = "total_ms"
    series = aggregate_series(rows, value_field=value_field)
    if series:
        print(format_figure(series, title=f"experiment {args.name}",
                            value_field="mean"))
    else:
        print(format_table(rows, title=f"experiment {args.name} (raw rows)"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "embed":
        return _run_embed(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "plan":
        return _run_plan(args)
    if args.command == "churn":
        return _run_churn(args)
    if args.command == "loadtest":
        return _run_loadtest(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "recover":
        return _run_recover(args)
    if args.command == "list-algorithms":
        return _run_list_algorithms(args)
    if args.command == "generate":
        return _run_generate(args)
    if args.command == "partition":
        return _run_partition(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error(f"unknown command {args.command!r}")   # pragma: no cover
    return 2


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
