"""Partitioned scale-out embedding (paper §VIII's decentralized sketch).

The subsystem shards a large hosting network across partition workers and
answers embedding requests with a two-level search — coarse placement over a
contracted quotient graph, then ordinary intra-partition ECF/RWB/LNS — while
journal-delta replication keeps every worker's bounded replica fresh and the
PR 5 repair path re-places embeddings stranded by partition loss.

Entry points: :class:`ClusterService` (the drop-in service facade),
:class:`ClusterCoordinator` (the search engine), :class:`PartitionMap`
(the sharding), :func:`repair_placement` (cross-partition repair).
"""

from repro.cluster.partition import (
    CUT_MAX_ATTR,
    CUT_MIN_ATTR,
    UNASSIGNED,
    PartitionIndex,
    PartitionMap,
    PartitionSummary,
    bfs_order,
    boundary_network,
    cut_edges,
    quotient_graph,
    summarize_partition,
)
from repro.cluster.replica import (
    DeltaPayload,
    PartitionReplica,
    ReplicationStats,
    StructuralDeltaError,
    apply_payload,
    encode_delta,
    transport_copy,
)
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterResult,
    PartitionOutcome,
    PartitionUnavailable,
    PartitionWorker,
    split_query,
)
from repro.cluster.repair import ClusterRepairResult, repair_placement
from repro.cluster.service import ClusterService

__all__ = [
    "CUT_MAX_ATTR",
    "CUT_MIN_ATTR",
    "UNASSIGNED",
    "PartitionIndex",
    "PartitionMap",
    "PartitionSummary",
    "bfs_order",
    "boundary_network",
    "cut_edges",
    "quotient_graph",
    "summarize_partition",
    "DeltaPayload",
    "PartitionReplica",
    "ReplicationStats",
    "StructuralDeltaError",
    "apply_payload",
    "encode_delta",
    "transport_copy",
    "ClusterCoordinator",
    "ClusterResult",
    "PartitionOutcome",
    "PartitionUnavailable",
    "PartitionWorker",
    "split_query",
    "ClusterRepairResult",
    "repair_placement",
    "ClusterService",
]
