"""Two-level embedding search over a partitioned hosting network.

:class:`ClusterCoordinator` answers embedding requests without any worker
ever holding the full hosting view:

1. **Coarse stage** — partitions that cannot host the query are pruned with
   bitmask screens over the :class:`~repro.cluster.partition.PartitionSummary`
   aggregates (single-partition placement), or by running ECF over the
   contracted quotient graph (cross-partition placement of query fragments).
   Both are sound relaxations: a pruned partition/pair provably cannot host
   the fragment, a surviving one merely might.
2. **Fine stage** — each surviving partition runs the ordinary intra-
   partition ECF/RWB/LNS search against its *replica* through the standard
   prepare/execute + :class:`~repro.core.plan.PlanCache` path, so repeated
   queries against an unchurned shard skip compilation entirely.

Cross-partition queries are split along query-graph cuts (the same BFS
slicing that partitions hosting networks, applied to the query), fragments
are placed coarsely on the quotient graph, embedded independently per
partition, and stitched back with **boundary-consistency checks**: every cut
query edge must land on a real inter-partition hosting edge (from the
coordinator's bounded boundary network) satisfying the original constraint.

Replication keeps all coordinator-side state fresh between requests — see
:meth:`ClusterCoordinator.refresh` and :mod:`repro.cluster.replica`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx

from repro import faults
from repro.api.request import SearchRequest, coerce_constraint
from repro.constraints import ConstraintExpression, edge_context
from repro.constraints.builder import host_delay_within_query_window
from repro.core.base import EmbeddingAlgorithm
from repro.core.ecf import ECF
from repro.core.mapping import Mapping, validate_mapping
from repro.core.plan import PlanCache, PlanInvalidatedError
from repro.core.result import EmbeddingResult, classify
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork
from repro.cluster.partition import (
    CUT_MIN_ATTR,
    CUT_MAX_ATTR,
    PartitionIndex,
    PartitionMap,
    PartitionSummary,
    bfs_order,
    boundary_network,
    cut_edges,
    quotient_graph,
    summarize_partition,
)
from repro.cluster.replica import (
    PartitionReplica,
    ReplicationStats,
    StructuralDeltaError,
    apply_payload,
    encode_delta,
)
from repro.utils.timing import Deadline, Stopwatch

#: The constraint family the coarse relaxation understands (the paper's own
#: workload constraint).  Any other constraint disables summary pruning —
#: the sound default is "cannot prune" — while intra-partition searches and
#: boundary checks still enforce it exactly.
_WINDOW_SOURCE = host_delay_within_query_window()

#: The quotient-graph counterpart of the delay-window constraint: a super
#: edge survives when its cut's delay range intersects the fragment edge's
#: aggregated window.
COARSE_CUT_CONSTRAINT = (f"rEdge.{CUT_MAX_ATTR} >= vEdge.minDelay && "
                         f"rEdge.{CUT_MIN_ATTR} <= vEdge.maxDelay")

#: Fragments only fit in partitions with enough nodes.
COARSE_NODE_CONSTRAINT = "vNode.nodes <= rNode.nodes"


class PartitionUnavailable(ConnectionError):
    """A partition worker is (really or injectedly) unreachable."""


@dataclass
class PartitionOutcome:
    """What one partition answered for one request."""

    partition: str
    status: str                      # complete/partial/inconclusive/lost/pruned
    found: bool = False
    lost: bool = False


@dataclass
class ClusterResult:
    """The coordinator's answer to one embedding request.

    ``verdict`` is three-valued: ``"feasible"`` (a validated embedding is in
    ``mappings``), ``"infeasible"`` (a *sound* proof — summary refutation or
    exhausted single-partition searches on a query that provably cannot span
    partitions), or ``"unknown"`` (nothing found within the search bounds).
    """

    verdict: str
    mappings: List[Mapping] = field(default_factory=list)
    partition: Optional[str] = None
    #: Query node -> partition that hosts it (for the first mapping).
    fragment_assignment: Dict[NodeId, str] = field(default_factory=dict)
    outcomes: List[PartitionOutcome] = field(default_factory=list)
    used_cross_partition: bool = False
    timed_out: bool = False
    elapsed_seconds: float = 0.0
    partitions_pruned: int = 0
    partitions_searched: int = 0
    coarse_placements_tried: int = 0
    stitch_checks: int = 0

    @property
    def found(self) -> bool:
        return bool(self.mappings)

    @property
    def first(self) -> Optional[Mapping]:
        return self.mappings[0] if self.mappings else None

    def to_embedding_result(self, algorithm: str = "cluster") -> EmbeddingResult:
        """Lower to the service-level result type (for EmbeddingResponse)."""
        status = classify(found_any=self.found,
                          exhausted=self.verdict == "infeasible",
                          timed_out=self.timed_out,
                          truncated=self.found)
        return EmbeddingResult(status=status, mappings=list(self.mappings),
                               algorithm=algorithm,
                               elapsed_seconds=self.elapsed_seconds,
                               timed_out=self.timed_out,
                               truncated=self.found)


class PartitionWorker:
    """The per-shard search engine: a replica plus the plan-cache path."""

    def __init__(self, replica: PartitionReplica, plans: PlanCache,
                 cache_scope: str) -> None:
        self.replica = replica
        self.plans = plans
        self._cache_scope = cache_scope
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return self.replica.name

    @property
    def network(self) -> HostingNetwork:
        return self.replica.network  # type: ignore[return-value]

    def search(self, query: QueryNetwork, algorithm: EmbeddingAlgorithm,
               constraint, node_constraint, timeout: Optional[float],
               max_results: Optional[int], seed=None) -> EmbeddingResult:
        """One intra-partition search through prepare/execute + PlanCache."""
        faults.fire("cluster.partition-search")
        if not self.replica.available:
            raise PartitionUnavailable(
                f"partition {self.name!r} is marked unavailable")
        request = SearchRequest.build(
            query, self.network, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout,
            max_results=max_results)
        if not algorithm.supports_prepare:
            return algorithm.request(request)
        key = (f"{self._cache_scope}:{self.name}",
               self.network.mutation_count,
               algorithm.plan_signature(), request.fingerprint())
        plan = self.plans.get(key)
        if plan is None:
            refresh_mode = None
            with self._lock:
                predecessor = self.plans.pop_predecessor(key)
                if predecessor is not None:
                    refresh_mode = "recompiled"
                    if predecessor.request.hosting is request.hosting:
                        patched = predecessor.try_patch()
                        if patched is not None and not patched.stale:
                            self.plans.put(key, patched, refresh_mode="patched")
                            plan = patched
                if plan is None:
                    plan = algorithm.prepare(request)
                    self.plans.put(key, plan, refresh_mode=refresh_mode)
        try:
            return plan.execute(budget=request.budget, rng=seed)
        except PlanInvalidatedError:
            # Raced a replication tick between fetch and execute; degrade to
            # the one-shot path against the live replica.
            return algorithm.request(request)


def split_query(query: QueryNetwork, num_fragments: int
                ) -> List[Tuple[NodeId, ...]]:
    """Slice the query's BFS order into contiguous fragments (query cuts)."""
    order = bfs_order(query)
    chunk = max(1, (len(order) + num_fragments - 1) // num_fragments)
    fragments = [tuple(order[i * chunk:(i + 1) * chunk])
                 for i in range((len(order) + chunk - 1) // chunk)]
    return [frag for frag in fragments if frag]


class ClusterCoordinator:
    """Two-level search over partition workers (see module docstring).

    Parameters
    ----------
    hosting:
        The primary hosting network.  Only the coordinator holds it; every
        worker holds a transported replica of its slice.
    partition_map:
        An explicit :class:`PartitionMap` (or plain ``{name: nodes}`` dict);
        ``None`` builds one from *attribute* or *num_partitions*.
    attribute:
        Partition by this categorical node attribute instead of balanced
        slicing.
    num_partitions:
        Balanced-slicing partition count (default 8) when neither
        *partition_map* nor *attribute* is given.
    algorithm:
        Default intra-partition algorithm: a registered instance (shared
        across workers; prepared plans are seed/config independent).
    plans:
        A shared :class:`PlanCache` (``None`` = a private one), so a
        :class:`~repro.cluster.service.ClusterService` can expose one cache
        across all of its coordinators.
    delay_attr:
        The hosting edge attribute the coarse delay relaxation reads.
    """

    def __init__(self, hosting: HostingNetwork,
                 partition_map: Optional[Union[PartitionMap, Dict]] = None,
                 attribute: Optional[str] = None,
                 num_partitions: Optional[int] = None,
                 algorithm: Optional[EmbeddingAlgorithm] = None,
                 plans: Optional[PlanCache] = None,
                 plan_cache_size: int = 64,
                 delay_attr: str = "avgDelay") -> None:
        self.primary = hosting
        self._attribute = attribute
        self._delay_attr = delay_attr
        self.algorithm = algorithm if algorithm is not None else ECF()
        self.plans = plans if plans is not None else PlanCache(
            capacity=plan_cache_size)
        if partition_map is None:
            if attribute is not None:
                partition_map = PartitionMap.by_attribute(hosting, attribute)
            else:
                partition_map = PartitionMap.balanced(
                    hosting, num_partitions if num_partitions else 8)
        elif not isinstance(partition_map, PartitionMap):
            partition_map = PartitionMap(
                {name: tuple(nodes)
                 for name, nodes in partition_map.items()})
        self.partition_map = partition_map
        self.replication = ReplicationStats()
        self._lock = threading.Lock()
        self._rebuild()

    # ------------------------------------------------------------------ #
    # Construction / replication
    # ------------------------------------------------------------------ #

    def _rebuild(self) -> None:
        """(Re)build replicas, summaries, boundary and quotient wholesale."""
        self.workers: Dict[str, PartitionWorker] = {}
        for name, nodes in self.partition_map.partitions.items():
            replica = PartitionReplica(name, self.primary, nodes)
            self.workers[name] = PartitionWorker(
                replica, self.plans, cache_scope=self.primary.name)
        self.summaries: Dict[str, PartitionSummary] = {
            name: summarize_partition(name, worker.network)
            for name, worker in self.workers.items()}
        self._cuts = cut_edges(self.primary, self.partition_map)
        self.boundary = boundary_network(self.primary, self.partition_map,
                                         self._cuts)
        self.quotient = quotient_graph(self.partition_map, self.summaries,
                                       self._cuts, self.boundary,
                                       delay_attr=self._delay_attr,
                                       name=f"{self.primary.name}:quotient")
        self.index = PartitionIndex(self.partition_map.names)
        self._applied_epoch = self.primary.mutation_count

    def refresh(self) -> Dict[str, object]:
        """Bring replicas and coordinator summaries up to the primary epoch.

        Attribute-only churn ships one encoded delta payload and patches
        replicas, the boundary network, the touched summaries and the
        touched quotient aggregates in place.  Structural churn and journal
        overflow fall back to a full resync (and re-placement of new nodes).
        """
        with self._lock:
            current = self.primary.mutation_count
            if current == self._applied_epoch:
                return {"changed": False, "mode": "noop"}
            delta = self.primary.delta_since(self._applied_epoch)
            if delta is None:
                self.replication.full_resyncs += 1
                self.replication.overflow_resyncs += 1
                self._resync_structural()
                return {"changed": True, "mode": "overflow-resync"}
            if delta.structural:
                self.replication.full_resyncs += 1
                self.replication.structural_resyncs += 1
                self._resync_structural()
                return {"changed": True, "mode": "structural-resync"}
            try:
                payload = encode_delta(self.primary, delta)
            except StructuralDeltaError:   # pragma: no cover - guarded above
                self._resync_structural()
                return {"changed": True, "mode": "structural-resync"}
            touched = self._apply_payload(payload)
            self._applied_epoch = current
            return {"changed": True, "mode": "delta",
                    "partitions_touched": sorted(touched),
                    "subjects": len(payload.node_attrs) + len(payload.edge_attrs)}

    def _apply_payload(self, payload) -> set:
        """Patch replicas/boundary/summaries/quotient from one payload."""
        assignment = self.partition_map.assignment
        touched: set = set()
        for node in payload.node_attrs:
            name = assignment.get(node)
            if name is not None:
                touched.add(name)
        touched_pairs: set = set()
        for u, v in payload.edge_attrs:
            pu, pv = assignment.get(u), assignment.get(v)
            if pu is None or pv is None:
                continue
            if pu == pv:
                touched.add(pu)
            else:
                touched_pairs.add((pu, pv) if pu <= pv else (pv, pu))
        for name in sorted(touched):
            worker = self.workers[name]
            try:
                applied = worker.replica.apply(payload)
            except ConnectionError:
                # The replication channel dropped: this replica resyncs
                # wholesale (and comes back available).
                self.replication.dropped_connections += 1
                self.replication.full_resyncs += 1
                worker.replica.resync(self.primary)
                applied = 0
            self.replication.deltas_applied += 1
            self.replication.subjects_applied += applied
            self.summaries[name] = summarize_partition(name, worker.network)
            self._refresh_quotient_node(name)
        if touched_pairs:
            # Patch the boundary network in place, then re-aggregate only
            # the touched super-edges.
            apply_payload(self.boundary, payload)
            for pair in sorted(touched_pairs):
                self._refresh_quotient_edge(pair)
        return touched | {p for pair in touched_pairs for p in pair}

    def _refresh_quotient_node(self, name: str) -> None:
        summary = self.summaries[name]
        attrs: Dict[str, object] = {
            "nodes": summary.num_nodes,
            "edges": summary.num_edges,
            "capacity": summary.total_capacity,
        }
        span = summary.edge_ranges.get(self._delay_attr)
        if span is not None:
            attrs["intraMinDelay"] = span[0]
            attrs["intraMaxDelay"] = span[1]
        self.quotient.update_node(name, **attrs)

    def _refresh_quotient_edge(self, pair: Tuple[str, str]) -> None:
        edges = self._cuts.get(pair, [])
        low = high = None
        for u, v in edges:
            value = self.boundary.get_edge_attr(u, v, self._delay_attr)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            low = value if low is None else min(low, value)
            high = value if high is None else max(high, value)
        if low is not None and self.quotient.has_edge(*pair):
            self.quotient.update_edge(pair[0], pair[1],
                                      **{CUT_MIN_ATTR: low,
                                         CUT_MAX_ATTR: high})

    def _resync_structural(self) -> None:
        """Full rebuild after topology churn: keep names, re-place new nodes."""
        survivors = [n for n in self.partition_map.assignment
                     if self.primary.has_node(n)]
        pmap = self.partition_map.restricted_to(survivors)
        fresh = [n for n in self.primary.nodes()
                 if n not in pmap.assignment]
        if fresh:
            placements: Dict[NodeId, str] = {}
            for node in fresh:
                if self._attribute is not None:
                    value = self.primary.get_node_attr(node, self._attribute)
                    placements[node] = (str(value) if value is not None
                                        else str(pmap.names[0]))
                else:
                    smallest = min(pmap.names,
                                   key=lambda p: (len(pmap.partitions[p]), p))
                    placements[node] = smallest
            pmap = pmap.with_nodes_added(placements)
        self.partition_map = pmap
        self._rebuild()

    def mark_lost(self, name: str) -> None:
        """Take one partition out of rotation (fault handling / tests)."""
        self.workers[name].replica.available = False

    def restore(self, name: str) -> None:
        """Bring a lost partition back by resyncing it from the primary."""
        self.workers[name].replica.resync(self.primary)

    @property
    def lost_partitions(self) -> List[str]:
        return [name for name, worker in self.workers.items()
                if not worker.replica.available]

    # ------------------------------------------------------------------ #
    # Two-level search
    # ------------------------------------------------------------------ #

    def _relaxation_active(self, constraint, query: QueryNetwork) -> bool:
        """Whether the delay-window coarse relaxation applies to *constraint*."""
        expr = coerce_constraint(constraint, default_true=False)
        if expr is None or expr.source is None:
            return False
        if "".join(expr.source.split()) != "".join(_WINDOW_SOURCE.split()):
            return False
        for u, v in query.edges():
            low = query.get_edge_attr(u, v, "minDelay")
            high = query.get_edge_attr(u, v, "maxDelay")
            if not isinstance(low, (int, float)) or not isinstance(high, (int, float)):
                return False
        return True

    def _edge_windows(self, query: QueryNetwork) -> List[Tuple[float, float]]:
        return [(query.get_edge_attr(u, v, "minDelay"),
                 query.get_edge_attr(u, v, "maxDelay"))
                for u, v in query.edges()]

    def _cut_ranges(self) -> List[Tuple[float, float]]:
        ranges = []
        for pa, pb in self.quotient.edges():
            low = self.quotient.get_edge_attr(pa, pb, CUT_MIN_ATTR)
            high = self.quotient.get_edge_attr(pa, pb, CUT_MAX_ATTR)
            if isinstance(low, (int, float)) and isinstance(high, (int, float)):
                ranges.append((low, high))
        return ranges

    def candidate_partitions(self, query: QueryNetwork,
                             relaxed: bool) -> Tuple[List[str], int]:
        """Bitset screen: partitions that might host the *whole* query.

        Returns ``(ordered survivors, pruned count)``.  Ordering is largest
        partition first (ties by name) — the deterministic legacy try order.
        """
        mask = self.index.mask_where(
            lambda p: self.summaries[p].num_nodes >= query.num_nodes)
        if relaxed:
            for low, high in self._edge_windows(query):
                mask &= self.index.mask_where(
                    lambda p, lo=low, hi=high: self.summaries[p]
                    .edge_window_feasible(self._delay_attr, lo, hi))
                if not mask:
                    break
        survivors = self.index.names_of(mask)
        survivors.sort(key=lambda p: (-self.summaries[p].num_nodes, p))
        return survivors, len(self.workers) - len(survivors)

    def _resolve_algorithm(self, algorithm) -> EmbeddingAlgorithm:
        if algorithm is None or (isinstance(algorithm, str)
                                 and algorithm.lower() in ("auto", "")):
            return self.algorithm
        if isinstance(algorithm, EmbeddingAlgorithm):
            return algorithm
        from repro.api.registry import default_registry
        return default_registry().get(algorithm).create()

    def embed(self, query: QueryNetwork, constraint=None, node_constraint=None,
              timeout: Optional[float] = None, max_results: Optional[int] = 1,
              algorithm=None, seed=None,
              partition_order: Optional[Sequence[str]] = None,
              cross_partition: bool = True, max_fragments: int = 3,
              per_fragment_results: int = 6,
              stitch_limit: int = 96) -> ClusterResult:
        """Answer one embedding request with the two-level search."""
        stopwatch = Stopwatch().start()
        deadline = Deadline(timeout)
        algo = self._resolve_algorithm(algorithm)
        relaxed = self._relaxation_active(constraint, query)
        expr = coerce_constraint(constraint, default_true=False)
        node_expr = coerce_constraint(node_constraint, default_true=False)
        outcomes: List[PartitionOutcome] = []

        # -- sound refutation from summaries alone ----------------------- #
        if query.num_nodes > self.primary.num_nodes:
            return ClusterResult(verdict="infeasible", outcomes=outcomes,
                                 elapsed_seconds=stopwatch.stop())
        crossable = True
        if relaxed:
            cut_ranges = self._cut_ranges()
            crossable = False
            for low, high in self._edge_windows(query):
                intra_ok = any(s.edge_window_feasible(self._delay_attr, low, high)
                               for s in self.summaries.values())
                cut_ok = any(r[1] >= low and r[0] <= high for r in cut_ranges)
                if cut_ok:
                    crossable = True
                if not intra_ok and not cut_ok:
                    return ClusterResult(
                        verdict="infeasible", outcomes=outcomes,
                        elapsed_seconds=stopwatch.stop())

        # -- stage A: single-partition placement ------------------------- #
        if partition_order is not None:
            unknown = [p for p in partition_order if p not in self.workers]
            if unknown:
                raise KeyError(f"unknown partition(s) {unknown!r}")
            candidates = [p for p in partition_order
                          if self.summaries[p].num_nodes >= query.num_nodes]
            pruned = len(partition_order) - len(candidates)
        else:
            candidates, pruned = self.candidate_partitions(query, relaxed)

        searched = 0
        exhausted_all = True
        timed_out = False
        for name in candidates:
            if deadline.expired():
                timed_out = True
                exhausted_all = False
                break
            worker = self.workers[name]
            try:
                result = worker.search(
                    query, algo, constraint, node_constraint,
                    timeout=_remaining(deadline, timeout),
                    max_results=max_results, seed=seed)
            except ConnectionError:
                worker.replica.available = False
                outcomes.append(PartitionOutcome(name, "lost", lost=True))
                exhausted_all = False
                continue
            searched += 1
            outcomes.append(PartitionOutcome(name, result.status.value,
                                             found=result.found))
            if result.found:
                mapping = result.first
                violations = validate_mapping(mapping, query, self.primary,
                                              expr, node_expr)
                if violations:     # replica drift raced the search: skip it
                    exhausted_all = False
                    continue
                return ClusterResult(
                    verdict="feasible", mappings=list(result.mappings),
                    partition=name,
                    fragment_assignment={q: name for q in mapping},
                    outcomes=outcomes, elapsed_seconds=stopwatch.stop(),
                    partitions_pruned=pruned, partitions_searched=searched,
                    timed_out=False)
            if not result.proved_infeasible:
                exhausted_all = False
            if result.timed_out:
                timed_out = True

        # -- stage B: cross-partition split & stitch ---------------------- #
        coarse_tried = 0
        stitch_checks = 0
        if (cross_partition and query.num_nodes >= 2 and len(self.workers) >= 2
                and not deadline.expired() and (not relaxed or crossable)):
            found = self._embed_cross_partition(
                query, expr, node_expr, constraint, node_constraint, algo,
                seed, deadline, relaxed, max_fragments, per_fragment_results,
                stitch_limit, outcomes)
            coarse_tried, stitch_checks = found[1], found[2]
            if found[0] is not None:
                mapping, assignment = found[0]
                return ClusterResult(
                    verdict="feasible", mappings=[mapping],
                    fragment_assignment=assignment, outcomes=outcomes,
                    used_cross_partition=True,
                    elapsed_seconds=stopwatch.stop(),
                    partitions_pruned=pruned, partitions_searched=searched,
                    coarse_placements_tried=coarse_tried,
                    stitch_checks=stitch_checks)

        # -- classify the failure ----------------------------------------- #
        timed_out = timed_out or deadline.expired()
        verdict = "unknown"
        if (exhausted_all and not timed_out and relaxed and not crossable
                and _is_connected(query)):
            # Every partition exhausted its intra search and no query edge's
            # window intersects any cut range: a connected query cannot span
            # partitions, so the failure is a proof.
            verdict = "infeasible"
        return ClusterResult(verdict=verdict, outcomes=outcomes,
                             timed_out=timed_out,
                             elapsed_seconds=stopwatch.stop(),
                             partitions_pruned=pruned,
                             partitions_searched=searched,
                             coarse_placements_tried=coarse_tried,
                             stitch_checks=stitch_checks)

    # ------------------------------------------------------------------ #

    def _embed_cross_partition(self, query, expr, node_expr, constraint,
                               node_constraint, algo, seed, deadline, relaxed,
                               max_fragments, per_fragment_results,
                               stitch_limit, outcomes):
        """Split along query cuts, place coarsely, embed per shard, stitch.

        Returns ``((mapping, assignment) | None, coarse_tried, checks)``.
        """
        coarse_tried = 0
        checks = 0
        max_k = min(max_fragments, query.num_nodes, len(self.workers))
        for k in range(2, max_k + 1):
            if deadline.expired():
                break
            fragments = split_query(query, k)
            if len(fragments) < 2:
                continue
            coarse_query, frag_nodes, frag_cuts = self._coarse_query(
                query, fragments, relaxed)
            coarse = ECF().request(SearchRequest.build(
                coarse_query, self.quotient,
                constraint=COARSE_CUT_CONSTRAINT if relaxed else None,
                node_constraint=COARSE_NODE_CONSTRAINT,
                timeout=_remaining(deadline, None), max_results=8))
            for placement in coarse.mappings:
                if deadline.expired():
                    break
                coarse_tried += 1
                stitched = self._stitch(query, fragments, frag_nodes,
                                        frag_cuts, placement, expr, node_expr,
                                        constraint, node_constraint, algo,
                                        seed, deadline, per_fragment_results,
                                        stitch_limit, outcomes)
                checks += stitched[1]
                if stitched[0] is not None:
                    return stitched[0], coarse_tried, checks
        return None, coarse_tried, checks

    def _coarse_query(self, query, fragments, relaxed):
        """The contracted query: one node per fragment, cut edges aggregated.

        Cut windows aggregate to the *strongest* bound per pair —
        ``minDelay = max`` of the cut edges' lower bounds, ``maxDelay =
        min`` of the upper bounds — so a super-edge surviving the coarse
        constraint is necessary for every cut edge individually.
        """
        coarse = QueryNetwork(name=f"{query.name}:coarse")
        frag_of: Dict[NodeId, int] = {}
        for i, nodes in enumerate(fragments):
            coarse.add_node(f"f{i}", nodes=len(nodes))
            for node in nodes:
                frag_of[node] = i
        frag_cuts: Dict[Tuple[int, int], List[Tuple[NodeId, NodeId]]] = {}
        for u, v in query.edges():
            fu, fv = frag_of[u], frag_of[v]
            if fu == fv:
                continue
            key = (fu, fv) if fu < fv else (fv, fu)
            frag_cuts.setdefault(key, []).append((u, v))
        for (fa, fb), edges in sorted(frag_cuts.items()):
            attrs: Dict[str, object] = {}
            if relaxed:
                attrs["minDelay"] = max(
                    query.get_edge_attr(u, v, "minDelay") for u, v in edges)
                attrs["maxDelay"] = min(
                    query.get_edge_attr(u, v, "maxDelay") for u, v in edges)
            coarse.add_edge(f"f{fa}", f"f{fb}", **attrs)
        return coarse, frag_of, frag_cuts

    def _stitch(self, query, fragments, frag_of, frag_cuts, placement, expr,
                node_expr, constraint, node_constraint, algo, seed, deadline,
                per_fragment_results, stitch_limit, outcomes):
        """Embed each fragment in its assigned partition, then join them.

        Every combination of per-fragment embeddings (bounded by
        *stitch_limit*) is checked for boundary consistency: each cut query
        edge must land on a boundary-network edge satisfying the original
        constraint.  Partitions are disjoint, so cross-fragment injectivity
        is structural.
        """
        per_fragment: List[List[Mapping]] = []
        for i, nodes in enumerate(fragments):
            partition = placement[f"f{i}"]
            worker = self.workers[partition]
            fragment_query = query.subnetwork(nodes, name=f"{query.name}:f{i}")
            try:
                result = worker.search(
                    fragment_query, algo, constraint, node_constraint,
                    timeout=_remaining(deadline, None),
                    max_results=per_fragment_results, seed=seed)
            except ConnectionError:
                worker.replica.available = False
                outcomes.append(PartitionOutcome(partition, "lost", lost=True))
                return None, 0
            if not result.found:
                return None, 0
            per_fragment.append(list(result.mappings))

        checks = 0
        for combo in itertools.product(*per_fragment):
            if checks >= stitch_limit or deadline.expired():
                break
            checks += 1
            merged: Dict[NodeId, NodeId] = {}
            for fragment_mapping in combo:
                merged.update(fragment_mapping.as_dict())
            if self._boundary_consistent(query, frag_cuts, merged, expr):
                mapping = Mapping(merged)
                if validate_mapping(mapping, query, self.primary, expr,
                                    node_expr):
                    continue       # raced churn; try the next combination
                assignment = {q: placement[f"f{frag_of[q]}"] for q in merged}
                return (mapping, assignment), checks
        return None, checks

    def _boundary_consistent(self, query, frag_cuts, merged, expr) -> bool:
        for edges in frag_cuts.values():
            for u, v in edges:
                ru, rv = merged[u], merged[v]
                if not self.boundary.has_edge(ru, rv):
                    return False
                if expr is not None and not expr.is_trivial:
                    context = edge_context(query, (u, v), self.boundary,
                                           (ru, rv))
                    if not expr.evaluate(context):
                        return False
        return True

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Coordinator-level counters (JSON-serialisable)."""
        partition_sizes = {name: self.summaries[name].num_nodes
                           for name in self.partition_map.names}
        return {
            "partitions": len(self.workers),
            "partition_nodes": partition_sizes,
            "max_partition_nodes": max(partition_sizes.values(), default=0),
            "primary_nodes": self.primary.num_nodes,
            "boundary_nodes": self.boundary.num_nodes,
            "boundary_edges": self.boundary.num_edges,
            "quotient_edges": self.quotient.num_edges,
            "lost_partitions": self.lost_partitions,
            "applied_epoch": self._applied_epoch,
            "replication": self.replication.snapshot(),
            "plan_cache": self.plans.stats(),
        }


def _remaining(deadline: Deadline, fallback: Optional[float]
               ) -> Optional[float]:
    """The per-search timeout under an overall deadline (None = unlimited)."""
    remaining = deadline.remaining
    if remaining == float("inf"):
        return fallback
    return max(remaining, 0.001)


def _is_connected(query: QueryNetwork) -> bool:
    if query.num_nodes <= 1:
        return True
    return nx.is_connected(query.graph.to_undirected(as_view=True))
