"""Partitioning a hosting network into shards, and contracting it.

The scale-out tier (paper §VIII, "decentralized implementation") never lets a
single worker hold the full hosting view.  This module produces the two
artifacts everything else in :mod:`repro.cluster` is built from:

* a :class:`PartitionMap` — a named, disjoint, covering assignment of hosting
  nodes to partitions, built either by balanced connected slicing
  (:meth:`PartitionMap.balanced`) or from a categorical node attribute
  (:meth:`PartitionMap.by_attribute`, e.g. the ``region`` attribute of the
  PlanetLab-like traces);
* a contracted **quotient graph** (:func:`quotient_graph`) — one super-node
  per partition carrying aggregate capacity/attribute summaries
  (:class:`PartitionSummary`), and one super-edge per partition pair that
  shares at least one hosting edge, carrying the aggregate delay range of
  the cut.  The coordinator's coarse placement stage searches this graph
  with the ordinary filter/bitset machinery instead of the full network.

Aggregates are *sound over-approximations*: a query fragment that fails the
summary screen provably cannot be hosted by that partition, while passing it
only means "possibly hostable" — the intra-partition search has the final
word.  That is exactly the filter-matrix contract, lifted one level up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.indexing import NodeIndexer
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Network, NodeId


class _MissingAttribute:
    """Sentinel key for nodes lacking the partition attribute.

    A dedicated non-string singleton cannot collide with ``str(value)`` of
    any real attribute value (the legacy ``"unassigned"`` string could and
    did — see ``extensions/distributed.py``).
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<missing attribute>"

    __str__ = __repr__


#: The one sentinel instance; ``domains[UNASSIGNED]`` are the nodes without
#: the partition attribute.
UNASSIGNED = _MissingAttribute()


def bfs_order(network: Network) -> List[NodeId]:
    """Every node in BFS order, restarting per connected component."""
    order: List[NodeId] = []
    seen = set()
    undirected = network.graph.to_undirected(as_view=True)
    for start in network.nodes():
        if start in seen:
            continue
        for node in nx.bfs_tree(undirected, start):
            if node not in seen:
                order.append(node)
                seen.add(node)
    return order


@dataclass(frozen=True)
class PartitionMap:
    """A disjoint, covering assignment of hosting nodes to named partitions.

    Attributes
    ----------
    partitions:
        Partition name → its hosting nodes (insertion order preserved).
    assignment:
        The inverse map, hosting node → partition name.
    """

    partitions: Mapping[str, Tuple[NodeId, ...]]
    assignment: Mapping[NodeId, str] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        parts = {name: tuple(nodes) for name, nodes in self.partitions.items()}
        if not parts:
            raise ValueError("a PartitionMap needs at least one partition")
        assignment: Dict[NodeId, str] = {}
        for name, nodes in parts.items():
            for node in nodes:
                if node in assignment:
                    raise ValueError(
                        f"node {node!r} assigned to both {assignment[node]!r} "
                        f"and {name!r}")
                assignment[node] = name
        object.__setattr__(self, "partitions", parts)
        object.__setattr__(self, "assignment", assignment)

    # -- builders -------------------------------------------------------- #

    @classmethod
    def balanced(cls, hosting: Network, num_partitions: int,
                 prefix: str = "part") -> "PartitionMap":
        """Slice a BFS order into *num_partitions* contiguous chunks.

        Each chunk is connected within the BFS tree of its component, which
        keeps intra-partition searches meaningful without paying for a true
        balanced-connected-partition solve (NP-hard).
        """
        if num_partitions < 1:
            raise ValueError(
                f"num_partitions must be >= 1, got {num_partitions}")
        order = bfs_order(hosting)
        if not order:
            raise ValueError("cannot partition an empty network")
        chunk = max(1, (len(order) + num_partitions - 1) // num_partitions)
        count = (len(order) + chunk - 1) // chunk
        return cls({f"{prefix}{i}": tuple(order[i * chunk:(i + 1) * chunk])
                    for i in range(count)})

    @classmethod
    def by_attribute(cls, hosting: Network, attribute: str = "region"
                     ) -> "PartitionMap":
        """Group hosting nodes by a categorical node attribute.

        Nodes lacking the attribute land in a partition named after the
        :data:`UNASSIGNED` sentinel — they are never conflated with nodes
        whose attribute value happens to be the string ``"unassigned"``.
        """
        groups: Dict[Hashable, List[NodeId]] = {}
        for node in hosting.nodes():
            value = hosting.get_node_attr(node, attribute)
            key = UNASSIGNED if value is None else str(value)
            groups.setdefault(key, []).append(node)
        return cls({str(key): tuple(nodes) for key, nodes in groups.items()})

    # -- views ----------------------------------------------------------- #

    @property
    def names(self) -> List[str]:
        """Partition names in insertion order."""
        return list(self.partitions)

    def partition_of(self, node: NodeId) -> str:
        """The partition holding *node* (raises ``KeyError`` if unassigned)."""
        return self.assignment[node]

    def nodes_of(self, name: str) -> Tuple[NodeId, ...]:
        """The hosting nodes of one partition."""
        return self.partitions[name]

    def __len__(self) -> int:
        return len(self.partitions)

    def restricted_to(self, nodes: Iterable[NodeId]) -> "PartitionMap":
        """The map with membership restricted to *nodes* (same names).

        Used by the structural-resync path: removed hosting nodes drop out
        of their partition, empty partitions drop out of the map.
        """
        keep = set(nodes)
        parts = {name: tuple(n for n in members if n in keep)
                 for name, members in self.partitions.items()}
        return PartitionMap({name: members for name, members in parts.items()
                             if members})

    def with_nodes_added(self, placements: Mapping[NodeId, str]
                         ) -> "PartitionMap":
        """The map with new nodes appended to existing partitions."""
        parts = {name: list(members)
                 for name, members in self.partitions.items()}
        for node, name in placements.items():
            parts.setdefault(name, []).append(node)
        return PartitionMap({name: tuple(members)
                             for name, members in parts.items()})


# --------------------------------------------------------------------------- #
# Aggregate summaries
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class PartitionSummary:
    """Sound aggregates of one partition, as its replica currently stands.

    ``edge_ranges``/``node_ranges`` map a numeric attribute name to its
    ``(min, max)`` over the partition's intra edges / nodes; an attribute a
    partition has no numeric values for is simply absent (= unconstrained,
    the sound default).
    """

    name: str
    num_nodes: int
    num_edges: int
    edge_ranges: Mapping[str, Tuple[float, float]]
    node_ranges: Mapping[str, Tuple[float, float]]
    #: Sum of the declared ``capacity`` node attribute (0.0 when undeclared).
    total_capacity: float

    def edge_window_feasible(self, attr: str, low: float, high: float) -> bool:
        """Whether some intra edge *could* satisfy ``low <= attr <= high``."""
        span = self.edge_ranges.get(attr)
        if span is None:
            return False        # no intra edge carries the attribute at all
        return span[1] >= low and span[0] <= high


def _numeric_ranges(pairs: Iterable[Tuple[str, object]]
                    ) -> Dict[str, Tuple[float, float]]:
    ranges: Dict[str, Tuple[float, float]] = {}
    for attr, value in pairs:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        span = ranges.get(attr)
        if span is None:
            ranges[attr] = (value, value)
        else:
            ranges[attr] = (min(span[0], value), max(span[1], value))
    return ranges


def summarize_partition(name: str, replica: HostingNetwork) -> PartitionSummary:
    """Compute the aggregates of one partition from its replica network."""
    graph = replica.graph
    edge_pairs = [(attr, value)
                  for _, _, data in graph.edges(data=True)
                  for attr, value in data.items()]
    node_pairs = []
    capacity = 0.0
    for _, data in graph.nodes(data=True):
        for attr, value in data.items():
            node_pairs.append((attr, value))
        declared = data.get("capacity")
        if isinstance(declared, (int, float)) and not isinstance(declared, bool):
            capacity += float(declared)
    return PartitionSummary(
        name=name,
        num_nodes=replica.num_nodes,
        num_edges=replica.num_edges,
        edge_ranges=_numeric_ranges(edge_pairs),
        node_ranges=_numeric_ranges(node_pairs),
        total_capacity=capacity,
    )


# --------------------------------------------------------------------------- #
# The contracted quotient graph
# --------------------------------------------------------------------------- #

#: Super-edge attributes carrying the cut's aggregate delay range; the
#: coordinator's coarse constraint is written against these names.
CUT_MIN_ATTR = "cutMinDelay"
CUT_MAX_ATTR = "cutMaxDelay"


def cut_edges(hosting: Network, pmap: PartitionMap
              ) -> Dict[Tuple[str, str], List[Tuple[NodeId, NodeId]]]:
    """Hosting edges crossing partitions, keyed by sorted partition pair."""
    cuts: Dict[Tuple[str, str], List[Tuple[NodeId, NodeId]]] = {}
    assignment = pmap.assignment
    for u, v in hosting.edges():
        pu, pv = assignment.get(u), assignment.get(v)
        if pu is None or pv is None or pu == pv:
            continue
        key = (pu, pv) if pu <= pv else (pv, pu)
        cuts.setdefault(key, []).append((u, v))
    return cuts


def boundary_network(hosting: HostingNetwork, pmap: PartitionMap,
                     cuts: Optional[Dict[Tuple[str, str],
                                         List[Tuple[NodeId, NodeId]]]] = None
                     ) -> HostingNetwork:
    """The cut-edge sub-network: boundary nodes plus inter-partition edges.

    This is the only cross-partition structure the coordinator keeps — it is
    what boundary-consistency stitching checks run against, and it stays
    small (O(cut), not O(network)).
    """
    if cuts is None:
        cuts = cut_edges(hosting, pmap)
    boundary = HostingNetwork(name=f"{hosting.name}:boundary")
    graph = hosting.graph
    for pair_edges in cuts.values():
        for u, v in pair_edges:
            for node in (u, v):
                if not boundary.has_node(node):
                    boundary.add_node(node, **dict(graph.nodes[node]))
            boundary.add_edge(u, v, **dict(graph.edges[u, v]))
    return boundary


def quotient_graph(pmap: PartitionMap,
                   summaries: Mapping[str, PartitionSummary],
                   cuts: Mapping[Tuple[str, str], List[Tuple[NodeId, NodeId]]],
                   boundary: HostingNetwork,
                   delay_attr: str = "avgDelay",
                   name: str = "quotient") -> HostingNetwork:
    """Contract the partitioned network into one super-node per partition.

    Super-node attributes: ``nodes``/``edges`` (partition size),
    ``capacity`` (sum of declared node capacity), ``intraMinDelay`` /
    ``intraMaxDelay`` (the intra-edge delay range, when any intra edge
    carries *delay_attr*).  Super-edge attributes: ``links`` (cut width)
    plus :data:`CUT_MIN_ATTR`/:data:`CUT_MAX_ATTR` (the cut's delay range).
    """
    quotient = HostingNetwork(name=name)
    for pname in pmap.names:
        summary = summaries[pname]
        attrs: Dict[str, object] = {
            "nodes": summary.num_nodes,
            "edges": summary.num_edges,
            "capacity": summary.total_capacity,
        }
        span = summary.edge_ranges.get(delay_attr)
        if span is not None:
            attrs["intraMinDelay"] = span[0]
            attrs["intraMaxDelay"] = span[1]
        quotient.add_node(pname, **attrs)
    for (pa, pb), pair_edges in sorted(cuts.items()):
        low = high = None
        for u, v in pair_edges:
            value = boundary.get_edge_attr(u, v, delay_attr)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            low = value if low is None else min(low, value)
            high = value if high is None else max(high, value)
        attrs = {"links": len(pair_edges)}
        if low is not None:
            attrs[CUT_MIN_ATTR] = low
            attrs[CUT_MAX_ATTR] = high
        quotient.add_edge(pa, pb, **attrs)
    return quotient


# --------------------------------------------------------------------------- #
# Bitset screening over partitions
# --------------------------------------------------------------------------- #

class PartitionIndex:
    """Bitmask algebra over partition names — the filter idiom, lifted.

    The coarse single-partition screen ANDs one mask per query requirement
    (size, per-edge delay windows) exactly as the filter matrices AND
    per-edge candidate masks; decoding ascending bits yields partitions in
    canonical ``sorted(key=str)`` order.
    """

    def __init__(self, names: Iterable[str]) -> None:
        self.indexer = NodeIndexer(names)

    def mask_where(self, predicate) -> int:
        """The mask of partitions satisfying ``predicate(name)``."""
        mask = 0
        for i, name in enumerate(self.indexer.nodes):
            if predicate(name):
                mask |= 1 << i
        return mask

    def names_of(self, mask: int) -> List[str]:
        """Decode *mask* into partition names, ascending bit order."""
        return [self.indexer.node_at(i)
                for i in range(len(self.indexer)) if mask >> i & 1]

    @property
    def full_mask(self) -> int:
        return self.indexer.full_mask
