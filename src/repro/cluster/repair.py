"""Cross-partition re-placement of embeddings after partition loss/churn.

When a partition fails (fault injection, churn taking its hosts down) the
embeddings it hosted are broken, but the placements in *other* partitions
are usually still fine.  This module routes the breakage through the
ordinary repair path (:func:`repro.core.repair.repair_mapping`, PR 5): for
each healthy candidate partition it assembles a **repair view** — the
candidate's interior plus the surviving hosts of the mapping and the cut
edges that connect them — pins every healthy placement, and lets the core
repair search re-place only the stranded query nodes inside the candidate.

The view is deliberately bounded: ``|candidate partition| + |mapping|``
nodes, never the full hosting network, so repair keeps the same working-set
guarantee as the two-level search.  A successful repair therefore *moves
query nodes between partitions* — the coordinator's fragment assignment is
updated accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.request import coerce_constraint
from repro.core.mapping import Mapping, validate_mapping
from repro.core.repair import CandidateFilter, RepairResult, repair_mapping
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Deadline


@dataclass
class ClusterRepairResult:
    """Outcome of :func:`repair_placement`.

    ``status`` follows :class:`~repro.core.repair.RepairResult`:
    ``"intact"``, ``"repaired"``, ``"failed"`` or ``"timeout"``.
    """

    status: str
    mapping: Optional[Mapping]
    #: Healthy partitions the repair view was built around, in try order.
    partitions_tried: List[str] = field(default_factory=list)
    #: Query node -> partition, for every node of the repaired mapping.
    fragment_assignment: Dict[NodeId, str] = field(default_factory=dict)
    #: The core repair outcome of the winning (or last) attempt.
    core: Optional[RepairResult] = None

    @property
    def ok(self) -> bool:
        return self.status in ("intact", "repaired")

    @property
    def moved(self) -> Dict[NodeId, tuple]:
        return self.core.moved if self.core is not None else {}


def repair_placement(coordinator, query: QueryNetwork, mapping: Mapping,
                     constraint=None, node_constraint=None,
                     timeout: Optional[float] = None,
                     max_rounds: Optional[int] = None,
                     candidate_ok: Optional[CandidateFilter] = None,
                     ) -> ClusterRepairResult:
    """Repair *mapping* against *coordinator*'s partitioned hosting view.

    Hosts inside lost partitions are treated as gone regardless of what the
    primary still records for them — a partition that cannot be reached
    cannot host anything.  Stranded query nodes are re-placed into one
    healthy candidate partition at a time (largest first), with every
    surviving placement pinned and boundary consistency enforced by the
    repair view's cut edges.

    Parameters mirror :func:`repro.core.repair.repair_mapping`;
    *candidate_ok* composes with the per-candidate partition restriction.
    """
    expr = coerce_constraint(constraint, default_true=False)
    node_expr = coerce_constraint(node_constraint, default_true=False)
    deadline = Deadline(timeout)
    primary = coordinator.primary
    assignment = coordinator.partition_map.assignment
    lost = set(coordinator.lost_partitions)

    # Hosts that survive: mapped hosts that exist on the primary and are not
    # stranded inside a lost partition.
    surviving_hosts = [r for r in mapping.hosting_nodes()
                       if primary.has_node(r)
                       and assignment.get(r) not in lost]

    if not lost:
        violations = validate_mapping(mapping, query, primary, expr, node_expr)
        if not violations:
            return ClusterRepairResult(
                status="intact", mapping=mapping,
                fragment_assignment={q: assignment[r]
                                     for q, r in mapping.items()})

    healthy = [name for name in coordinator.partition_map.names
               if name not in lost]
    healthy.sort(key=lambda p: (-coordinator.summaries[p].num_nodes, p))

    tried: List[str] = []
    last: Optional[RepairResult] = None
    status = "failed"
    for candidate in healthy:
        if deadline.expired():
            status = "timeout"
            break
        tried.append(candidate)
        view_nodes = set(coordinator.partition_map.nodes_of(candidate))
        view_nodes.update(surviving_hosts)
        # Bounded: candidate interior + the mapping's surviving hosts.  The
        # induced subnetwork carries exactly the cut edges between them.
        view = primary.subnetwork(
            [n for n in view_nodes if primary.has_node(n)],
            name=f"{primary.name}:repair:{candidate}")
        allowed = set(coordinator.partition_map.nodes_of(candidate))
        allowed.update(surviving_hosts)

        def ok(q: NodeId, host: NodeId, _allowed=allowed) -> bool:
            if host not in _allowed:
                return False
            return candidate_ok is None or candidate_ok(q, host)

        result = repair_mapping(
            query, view, mapping, constraint=expr, node_constraint=node_expr,
            timeout=_remaining(deadline, timeout), max_rounds=max_rounds,
            candidate_ok=ok)
        last = result
        if result.ok:
            repaired = result.mapping
            fragment_assignment = {q: assignment[r]
                                   for q, r in repaired.items()}
            return ClusterRepairResult(
                status=result.status, mapping=repaired,
                partitions_tried=tried,
                fragment_assignment=fragment_assignment, core=result)
        if result.status == "timeout":
            status = "timeout"
            break
    return ClusterRepairResult(status=status, mapping=None,
                               partitions_tried=tried, core=last)


def _remaining(deadline: Deadline, fallback: Optional[float]
               ) -> Optional[float]:
    remaining = deadline.remaining
    if remaining == float("inf"):
        return fallback
    return max(remaining, 0.001)
