"""Journal-delta replication between a primary network and its shards.

The coordinator holds the *primary* hosting network (fed by monitors and
churn); each partition worker holds a *replica* of its slice only.  Keeping
replicas fresh cannot ship whole networks — a pickled
:class:`~repro.graphs.network.Network` deliberately resets its mutation
journal (``__getstate__`` floors the journal at the current epoch), so a
shipped copy can neither produce nor consume deltas, and re-shipping slices
wholesale is exactly the full-recompile cost this tier exists to avoid.

Instead the primary's :meth:`~repro.graphs.network.Network.delta_since`
yields a :class:`~repro.graphs.journal.NetworkDelta` — *which* nodes/edges
were touched and which attribute names were written — and
:func:`encode_delta` joins it with the current attribute **values** read
from the primary into a :class:`DeltaPayload`: a plain, pickleable record
that survives any transport.  :func:`apply_payload` replays the slice of a
payload that intersects a replica through the ordinary mutators, so the
replica's own journal and epoch advance and every compiled artifact on top
of it (plan caches, filter matrices) patches incrementally as usual.

Structural deltas (topology changes) and journal overflows cannot be
encoded; those force a full resync of the affected replicas — the bounded
fallback, counted by :class:`ReplicationStats`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import faults
from repro.graphs.journal import NetworkDelta
from repro.graphs.network import Network, NodeId

Edge = Tuple[NodeId, NodeId]


class StructuralDeltaError(ValueError):
    """A structural delta reached a value-encoding path; resync instead."""


@dataclass(frozen=True)
class DeltaPayload:
    """A transport-safe delta: touched subjects plus their current values.

    ``node_attrs``/``edge_attrs`` carry the post-mutation values of exactly
    the attribute names the journal recorded as written, read from the
    primary at encode time.  Everything here is plain data — the payload
    pickles and JSON-encodes without dragging a network along.
    """

    network_name: str
    base_epoch: int
    target_epoch: int
    node_attrs: Dict[NodeId, Dict[str, object]] = field(default_factory=dict)
    edge_attrs: Dict[Edge, Dict[str, object]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not self.node_attrs and not self.edge_attrs

    def touches(self, replica: Network) -> bool:
        """Whether any payload subject exists in *replica*."""
        return (any(replica.has_node(n) for n in self.node_attrs)
                or any(replica.has_edge(u, v) for u, v in self.edge_attrs))


def encode_delta(primary: Network, delta: NetworkDelta) -> DeltaPayload:
    """Join *delta*'s touch sets with current values from *primary*.

    Raises :class:`StructuralDeltaError` for structural deltas — their touch
    sets are not meaningful (see :class:`NetworkDelta`) and replicas must
    resync.
    """
    if delta.structural:
        raise StructuralDeltaError(
            "structural deltas cannot be value-encoded; resync the replicas")
    node_attrs: Dict[NodeId, Dict[str, object]] = {}
    for node, names in delta.touched_node_attrs.items():
        if not primary.has_node(node):
            continue
        node_attrs[node] = {name: primary.get_node_attr(node, name)
                            for name in sorted(names)}
    edge_attrs: Dict[Edge, Dict[str, object]] = {}
    for (u, v), names in delta.touched_edge_attrs.items():
        if not primary.has_edge(u, v):
            continue
        edge_attrs[(u, v)] = {name: primary.get_edge_attr(u, v, name)
                              for name in sorted(names)}
    return DeltaPayload(network_name=primary.name,
                        base_epoch=delta.base_epoch,
                        target_epoch=delta.target_epoch,
                        node_attrs=node_attrs, edge_attrs=edge_attrs)


def apply_payload(replica: Network, payload: DeltaPayload) -> int:
    """Replay the slice of *payload* that intersects *replica*.

    Subjects outside the replica (other partitions' nodes/edges) are
    skipped; applied subjects go through the ordinary mutators so the
    replica journals its own history.  Returns the number of subjects
    applied.
    """
    applied = 0
    for node, attrs in payload.node_attrs.items():
        if replica.has_node(node):
            replica.update_node(node, **attrs)
            applied += 1
    for (u, v), attrs in payload.edge_attrs.items():
        if replica.has_edge(u, v):
            replica.update_edge(u, v, **attrs)
            applied += 1
    return applied


def transport_copy(network: Network) -> Network:
    """A pickle round-trip of *network* — what a remote worker would hold.

    Run deliberately so replicas carry the serialization semantics of a real
    multi-host deployment (empty journal floored at the current epoch, no
    shared structure with the primary), keeping the in-process simulation
    honest.
    """
    return pickle.loads(pickle.dumps(network))


@dataclass
class ReplicationStats:
    """Counters of the replication channel, reported by ``stats()``."""

    deltas_applied: int = 0
    subjects_applied: int = 0
    full_resyncs: int = 0
    structural_resyncs: int = 0
    overflow_resyncs: int = 0
    dropped_connections: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "deltas_applied": self.deltas_applied,
            "subjects_applied": self.subjects_applied,
            "full_resyncs": self.full_resyncs,
            "structural_resyncs": self.structural_resyncs,
            "overflow_resyncs": self.overflow_resyncs,
            "dropped_connections": self.dropped_connections,
        }


class PartitionReplica:
    """One partition's shipped slice of the hosting network.

    The replica is created (and re-created on resync) through
    :func:`transport_copy`, so it never shares structure with the primary;
    the bounded working set of a partition worker is exactly this object
    plus the compiled plans built from it.
    """

    def __init__(self, name: str, primary: Network,
                 nodes: Tuple[NodeId, ...]) -> None:
        self.name = name
        self.nodes = tuple(nodes)
        self.network = None  # type: Optional[Network]
        self.applied_epoch = -1
        self.available = True
        self.resync(primary)

    def resync(self, primary: Network) -> None:
        """Rebuild the replica wholesale from the primary (full recompile)."""
        slice_net = primary.subnetwork(
            [n for n in self.nodes if primary.has_node(n)],
            name=f"{primary.name}:{self.name}")
        self.network = transport_copy(slice_net)
        self.applied_epoch = primary.mutation_count
        self.available = True

    def apply(self, payload: DeltaPayload) -> int:
        """Apply one payload; the replication fault site fires per replica."""
        faults.fire("cluster.replicate")
        applied = apply_payload(self.network, payload)
        self.applied_epoch = payload.target_epoch
        return applied
