"""A partitioned drop-in for :class:`~repro.service.netembed.NetEmbedService`.

:class:`ClusterService` speaks the same request/response surface —
:class:`~repro.service.spec.QuerySpec` in,
:class:`~repro.service.spec.EmbeddingResponse` out, plus the
``registry``/``plans``/``reservations`` attributes the serving tier's
:class:`~repro.server.registry.ServiceRegistry` reads — but answers every
query through a per-network :class:`~repro.cluster.coordinator
.ClusterCoordinator` instead of a monolithic search.  ``repro serve
--partitions N`` fronts exactly this object, so the async server, admission
control and fault plans all compose with the partitioned backend unchanged.

Monitors keep mutating the registered *primary* networks as before; the
service refreshes the affected coordinator (journal-delta replication) at
the top of every submit, which is the moment replicas, summaries and the
quotient graph catch up.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Union

import repro.baselines  # noqa: F401 — registers the baselines for by-name use
from repro import faults
from repro.api.registry import AlgorithmRegistry, default_registry
from repro.constraints import ConstraintExpression
from repro.core.mapping import Mapping
from repro.core.plan import PlanCache
from repro.graphs.graphml import read_graphml
from repro.graphs.hosting import HostingNetwork
from repro.graphs.query import QueryNetwork
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.partition import PartitionMap
from repro.cluster.repair import repair_placement
from repro.service.model import NetworkModelRegistry
from repro.service.monitor import MonitorConfig, SimulatedMonitor
from repro.service.reservation import ReservationError, ReservationManager
from repro.service.spec import EmbeddingResponse, QuerySpec, RepairResponse
from repro.utils.rng import RandomSource


class ClusterService:
    """An in-process NETEMBED service over partitioned hosting networks.

    Parameters
    ----------
    default_timeout:
        Timeout (seconds) applied to queries that do not set their own.
    rng:
        Randomness source for attached monitors.
    num_partitions:
        Default balanced-partition count for networks registered without an
        explicit map or attribute.
    attribute:
        Default attribute-domain partitioning for registered networks
        (overrides *num_partitions* when set).
    algorithms:
        Registry the per-request ``algorithm`` names resolve against.
    plan_cache_size:
        Capacity of the one :class:`~repro.core.plan.PlanCache` shared by
        every partition worker of every coordinator.
    max_workers:
        Thread-pool size for :meth:`submit_batch`.
    auto_refresh:
        Replicate pending journal deltas to the target coordinator at the
        top of every submit (default).  ``False`` hands refresh timing to
        the caller (benchmarks measure the two costs separately).
    """

    def __init__(self, default_timeout: float = 30.0, rng: RandomSource = None,
                 num_partitions: int = 8, attribute: Optional[str] = None,
                 algorithms: Optional[AlgorithmRegistry] = None,
                 plan_cache_size: int = 128,
                 max_workers: Optional[int] = None,
                 auto_refresh: bool = True) -> None:
        if default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be positive, got {default_timeout}")
        self.registry = NetworkModelRegistry()
        self.reservations = ReservationManager()
        self.algorithms = (algorithms if algorithms is not None
                           else default_registry())
        self.plans = PlanCache(capacity=plan_cache_size)
        self._default_timeout = default_timeout
        self._rng = rng
        self._num_partitions = num_partitions
        self._attribute = attribute
        self._auto_refresh = auto_refresh
        self._coordinators: Dict[str, ClusterCoordinator] = {}
        self._monitors: Dict[str, SimulatedMonitor] = {}
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Model management
    # ------------------------------------------------------------------ #

    def register_network(self, network: HostingNetwork,
                         name: Optional[str] = None, description: str = "",
                         default: bool = False,
                         partition_map: Optional[Union[PartitionMap, Dict]] = None,
                         num_partitions: Optional[int] = None,
                         attribute: Optional[str] = None) -> str:
        """Register a hosting network and build its partition coordinator."""
        stored = self.registry.register(network, name=name,
                                        description=description,
                                        default=default)
        attr = attribute if attribute is not None else (
            self._attribute if partition_map is None and num_partitions is None
            else None)
        self._coordinators[stored] = ClusterCoordinator(
            network, partition_map=partition_map, attribute=attr,
            num_partitions=(num_partitions if num_partitions is not None
                            else self._num_partitions),
            plans=self.plans)
        return stored

    def register_network_from_graphml(self, path, name: Optional[str] = None,
                                      default: bool = False, **kwargs) -> str:
        """Load a hosting network from a GraphML file and register it."""
        network = read_graphml(path, cls=HostingNetwork, name=name)
        return self.register_network(network, name=name, default=default,
                                     **kwargs)

    def coordinator(self, network_name: Optional[str] = None
                    ) -> ClusterCoordinator:
        """The partition coordinator serving a registered network."""
        key = network_name or self.registry.default_name
        if key is None or key not in self._coordinators:
            raise ValueError(
                f"no coordinator for network {network_name!r}; registered: "
                f"{sorted(self._coordinators)}")
        return self._coordinators[key]

    def attach_monitor(self, network_name: Optional[str] = None,
                       config: Optional[MonitorConfig] = None,
                       rng: RandomSource = None) -> SimulatedMonitor:
        """Attach a simulated monitoring service to a registered network.

        The monitor mutates the *primary*; replicas converge through
        journal-delta replication on the next submit (or explicit
        ``coordinator(name).refresh()``).
        """
        key = network_name or self.registry.default_name
        if key is None:
            raise ValueError("no hosting network registered yet")
        monitor = SimulatedMonitor(self.registry, network_name=key,
                                   config=config,
                                   rng=rng if rng is not None else self._rng)
        self._monitors[key] = monitor
        return monitor

    def monitor(self, network_name: Optional[str] = None
                ) -> Optional[SimulatedMonitor]:
        """The monitor attached to a network, if any."""
        key = network_name or self.registry.default_name
        return self._monitors.get(key) if key else None

    def attach_wal(self, path, recover: bool = True,
                   fsync_batch: int = 1) -> Dict[str, object]:
        """Journal reservations to a WAL at *path*, replaying it first."""
        from pathlib import Path

        from repro.service.wal import ReservationWAL

        report: Dict[str, object] = {
            "path": str(path), "records": 0,
            "applied": {"reserve": 0, "rebind": 0, "release": 0},
            "active": 0, "skipped": 0,
        }
        wal_path = Path(path)
        if recover and wal_path.exists() and wal_path.stat().st_size > 0:
            records, skipped = ReservationWAL.read(wal_path)
            replay = self.reservations.replay(records, self.registry.get)
            report.update(replay)
            report["skipped"] = skipped
        self.reservations.attach_wal(
            ReservationWAL(wal_path, fsync_batch=fsync_batch))
        return report

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #

    def submit(self, spec: QuerySpec) -> EmbeddingResponse:
        """Process one :class:`QuerySpec` through the two-level search."""
        faults.fire("service.submit")
        network_name, hosting = self._resolve_network(spec.network)
        coordinator = self._coordinators[network_name]
        if self._auto_refresh:
            coordinator.refresh()
        # Lowering through to_request coerces the constraints exactly as the
        # monolithic service does (and validates the spec against *hosting*).
        request = spec.to_request(hosting,
                                  default_timeout=self._default_timeout)
        algorithm = coordinator._resolve_algorithm(spec.algorithm)
        cluster = coordinator.embed(
            spec.query, constraint=request.constraint,
            node_constraint=request.node_constraint,
            timeout=request.budget.timeout,
            max_results=request.budget.max_results,
            algorithm=algorithm, seed=spec.seed)
        algorithm_used = f"cluster+{algorithm.name}"
        result = cluster.to_embedding_result(algorithm=algorithm_used)

        reservation_id = None
        if spec.reserve and result.found:
            reservation = self.reservations.reserve(
                hosting, network_name, result.first,
                query=spec.query, constraint=request.constraint,
                node_constraint=request.node_constraint)
            reservation_id = reservation.reservation_id

        return EmbeddingResponse(spec=spec, result=result,
                                 network_name=network_name,
                                 algorithm_used=algorithm_used,
                                 reservation_id=reservation_id)

    def embed(self, query: QueryNetwork,
              constraint: Optional[Union[str, ConstraintExpression]] = None,
              node_constraint: Optional[Union[str, ConstraintExpression]] = None,
              algorithm: str = "auto", timeout: Optional[float] = None,
              max_results: Optional[int] = None, network: Optional[str] = None,
              reserve: bool = False, seed: Optional[int] = None,
              parallelism: Optional[int] = None) -> EmbeddingResponse:
        """Keyword-style convenience wrapper around :meth:`submit`."""
        spec = QuerySpec(query=query, constraint=constraint,
                         node_constraint=node_constraint, algorithm=algorithm,
                         timeout=timeout, max_results=max_results,
                         network=network, reserve=reserve, seed=seed,
                         parallelism=parallelism)
        return self.submit(spec)

    def stream(self, spec: QuerySpec, buffer_size: int = 1
               ) -> Iterator[Mapping]:
        """Yield the embeddings for *spec* (cluster searches do not stream
        incrementally; the mappings of the finished search are yielded)."""
        if spec.reserve:
            raise ValueError("streaming does not support reserve=True; "
                             "use submit() and reserve the response instead")
        response = self.submit(spec)
        return iter(response.mappings)

    def submit_batch(self, specs: Iterable[QuerySpec],
                     return_exceptions: bool = False
                     ) -> List[Union[EmbeddingResponse, BaseException]]:
        """Process many specs concurrently; responses in input order."""
        specs = list(specs)
        futures: List[Future] = [
            self._ensure_executor().submit(self.submit, spec)
            for spec in specs]
        results: List[Union[EmbeddingResponse, BaseException]] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:        # noqa: BLE001 — collected per-slot
                if not return_exceptions and first_error is None:
                    first_error = exc
                results.append(exc)
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="cluster-batch")
            return self._executor

    # ------------------------------------------------------------------ #
    # Reservations / repair
    # ------------------------------------------------------------------ #

    def release(self, reservation_id: str) -> None:
        """Release a reservation made by an earlier embed(reserve=True)."""
        reservation = self.reservations.get(reservation_id)
        network = self.registry.get(reservation.network_name)
        self.reservations.release(reservation_id, network)

    def repair(self, reservation_id: str,
               timeout: Optional[float] = None) -> RepairResponse:
        """Heal a reserved embedding against the partitioned live model.

        Same contract as :meth:`NetEmbedService.repair`, routed through
        :func:`repro.cluster.repair.repair_placement`: stranded query nodes
        (hosts churned away *or* inside a lost partition) are re-placed into
        a healthy partition with every surviving placement pinned, then the
        reservation is atomically rebound.
        """
        reservation = self.reservations.get(reservation_id)
        if not reservation.active:
            raise ReservationError(
                f"reservation {reservation_id!r} is no longer active")
        if reservation.query is None:
            raise ReservationError(
                f"reservation {reservation_id!r} carries no query context; "
                f"reserve through ClusterService.submit to enable repair")
        network = self.registry.get(reservation.network_name)
        coordinator = self._coordinators[reservation.network_name]
        if self._auto_refresh:
            coordinator.refresh()
        demands = reservation.demands
        attribute = reservation.capacity_attribute
        charged: Dict[object, float] = {}
        for query_node, host in reservation.mapping.items():
            charged[host] = charged.get(host, 0.0) + demands.get(query_node, 1.0)

        def has_spare_capacity(query_node, host) -> bool:
            demand = demands.get(query_node, 1.0)
            available = network.available_capacity(host, attribute)
            if available is None:
                return False
            return available + charged.get(host, 0.0) + 1e-12 >= demand

        result = repair_placement(
            coordinator, reservation.query, reservation.mapping,
            constraint=reservation.constraint,
            node_constraint=reservation.node_constraint,
            timeout=timeout if timeout is not None else self._default_timeout,
            candidate_ok=has_spare_capacity)

        error = None
        if result.status == "repaired" and result.moved:
            try:
                self.reservations.rebind(reservation_id, network,
                                         result.mapping)
            except ReservationError as exc:
                error = str(exc)
        return RepairResponse(reservation_id=reservation_id,
                              network_name=reservation.network_name,
                              result=result, error=error)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """One JSON-serialisable snapshot (superset key: ``"cluster"``)."""
        networks = {}
        for name in self.registry.names():
            entry = self.registry.entry(name)
            network = entry.network
            journal = network.mutation_journal
            monitor = self._monitors.get(name)
            networks[name] = {
                "version": entry.version,
                "nodes": network.num_nodes,
                "edges": network.num_edges,
                "mutation_epoch": network.mutation_count,
                "journal": {
                    "entries": len(journal),
                    "capacity": journal.capacity,
                    "floor_epoch": journal.floor_epoch,
                },
                "monitor_ticks": monitor.ticks if monitor is not None else None,
            }
        executor = self._executor
        wal = self.reservations.wal
        injector = faults.active()
        return {
            "default_timeout": self._default_timeout,
            "plan_cache": self.plans.stats(),
            "reservations": self.reservations.stats(),
            "networks": networks,
            "cluster": {name: coordinator.stats()
                        for name, coordinator in self._coordinators.items()},
            "pools": {
                "batch_threads": {
                    "created": executor is not None,
                    "max_workers": getattr(executor, "_max_workers", None),
                },
            },
            "wal": ({"path": str(wal.path), "fsync_batch": wal.fsync_batch}
                    if wal is not None else None),
            "faults": injector.stats() if injector is not None else None,
        }

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the batch thread pool and close the WAL, if any."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)
        wal = self.reservations.wal
        if wal is not None:
            wal.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #

    def _resolve_network(self, name: Optional[str]) -> tuple:
        network_name = name or self.registry.default_name
        if network_name is None:
            raise ValueError(
                "no hosting network registered; call register_network first")
        entry = self.registry.entry(network_name)
        return network_name, entry.network
