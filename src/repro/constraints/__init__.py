"""The NETEMBED constraint expression language (paper §VI-B).

A *constraint expression* is a boolean expression, written in a Java-like
syntax, that is evaluated for every (query-edge, hosting-edge) pair.  If it
evaluates to true, that pair is an acceptable mapping.  The objects visible
inside an expression are those of Table I (``vEdge``, ``rEdge``, ``vSource``,
``vTarget``, ``rSource``, ``rTarget``); node-level constraints additionally
use ``vNode``/``rNode``.

The public entry point is :class:`ConstraintExpression`::

    from repro.constraints import ConstraintExpression

    expr = ConstraintExpression(
        "vEdge.avgDelay >= 0.9*rEdge.avgDelay && vEdge.avgDelay <= 1.1*rEdge.avgDelay")
    ok = expr.matches_edge(query, ("a", "b"), hosting, ("r3", "r7"))

The expression is parsed once and compiled to a fast closure; both the
reference evaluator and the compiled form are available and are required (and
tested) to agree.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.constraints import builder
from repro.constraints.ast_nodes import Expr, referenced_attributes, referenced_objects
from repro.constraints.compiler import compile_expression
from repro.constraints.context import (
    Context,
    EDGE_OBJECTS,
    NODE_OBJECTS,
    edge_context,
    literal_context,
    node_context,
)
from repro.constraints.errors import (
    ConstraintError,
    EvaluationError,
    LexError,
    ParseError,
    UnknownFunctionError,
    UnknownIdentifierError,
)
from repro.constraints.evaluator import evaluate, evaluate_value
from repro.constraints.functions import BUILTIN_FUNCTIONS, MISSING, is_missing
from repro.constraints.lexer import tokenize
from repro.constraints.parser import parse

from repro.graphs.network import Edge, Network, NodeId

__all__ = [
    "ConstraintExpression",
    "builder",
    "parse",
    "tokenize",
    "evaluate",
    "evaluate_value",
    "compile_expression",
    "edge_context",
    "node_context",
    "literal_context",
    "Context",
    "EDGE_OBJECTS",
    "NODE_OBJECTS",
    "MISSING",
    "is_missing",
    "BUILTIN_FUNCTIONS",
    "referenced_objects",
    "referenced_attributes",
    "ConstraintError",
    "LexError",
    "ParseError",
    "EvaluationError",
    "UnknownFunctionError",
    "UnknownIdentifierError",
]


class ConstraintExpression:
    """A parsed, compiled constraint expression ready to test edge/node pairs.

    Parameters
    ----------
    source:
        Constraint-language source text, an already-parsed
        :class:`~repro.constraints.ast_nodes.Expr`, or another
        :class:`ConstraintExpression` (copied).
    strict:
        Whether missing attributes raise instead of producing a non-match.

    Notes
    -----
    Instances are immutable and hashable on their source text, so they can be
    used as cache keys by the service layer.
    """

    def __init__(self, source: Union[str, Expr, "ConstraintExpression"] = "true",
                 strict: bool = False) -> None:
        if isinstance(source, ConstraintExpression):
            self._source = source.source
            self._ast = source.ast
        elif isinstance(source, Expr):
            self._ast = source
            self._source = source.unparse()
        else:
            self._source = str(source)
            self._ast = parse(self._source)
        self._strict = bool(strict)
        self._compiled = compile_expression(self._ast, strict=self._strict)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> str:
        """The original source text."""
        return self._source

    @property
    def ast(self) -> Expr:
        """The parsed abstract syntax tree."""
        return self._ast

    @property
    def strict(self) -> bool:
        """Whether evaluation is strict about missing attributes."""
        return self._strict

    @property
    def is_trivial(self) -> bool:
        """Whether the expression is the constant ``true`` (matches everything)."""
        from repro.constraints.ast_nodes import BooleanLiteral
        return isinstance(self._ast, BooleanLiteral) and self._ast.value is True

    def referenced_objects(self) -> list:
        """Context object names used by the expression."""
        return referenced_objects(self._ast)

    def referenced_attributes(self) -> list:
        """``(object, attribute)`` pairs used by the expression."""
        return referenced_attributes(self._ast)

    def uses_edge_objects(self) -> bool:
        """Whether the expression references any Table-I edge-context object."""
        return any(obj in EDGE_OBJECTS for obj in self.referenced_objects())

    def uses_node_objects(self) -> bool:
        """Whether the expression references the node-context objects."""
        return any(obj in NODE_OBJECTS for obj in self.referenced_objects())

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        """Pickle as (source, strict) only.

        The compiled evaluator and the memoised vectorizer kernel are
        closures (unpicklable, and process-local anyway); unpickling
        re-parses and re-compiles from source, which round-trips exactly —
        the AST-constructed path stores its own ``unparse()`` as source.
        Needed so plans and requests can ship to the shard worker processes
        of :mod:`repro.core.parallel`.
        """
        return {"source": self._source, "strict": self._strict}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["source"], strict=state["strict"])

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, context: Context) -> bool:
        """Evaluate against an explicit context mapping (compiled fast path)."""
        return self._compiled(context)

    def evaluate_reference(self, context: Context) -> bool:
        """Evaluate with the tree-walking reference evaluator (for testing)."""
        return evaluate(self._ast, context, strict=self._strict)

    def matches_edge(self, query: Network, query_edge: Edge,
                     hosting: Network, hosting_edge: Edge) -> bool:
        """Whether mapping *query_edge* onto *hosting_edge* satisfies the expression."""
        return self._compiled(edge_context(query, query_edge, hosting, hosting_edge))

    def matches_node(self, query: Network, query_node: NodeId,
                     hosting: Network, hosting_node: NodeId) -> bool:
        """Whether mapping *query_node* onto *hosting_node* satisfies a node expression."""
        return self._compiled(node_context(query, query_node, hosting, hosting_node))

    def __call__(self, context: Context) -> bool:
        return self._compiled(context)

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #

    def and_also(self, other: Union[str, "ConstraintExpression"]) -> "ConstraintExpression":
        """Conjunction with another expression (returns a new expression)."""
        other_source = other.source if isinstance(other, ConstraintExpression) else str(other)
        return ConstraintExpression(f"({self._source}) && ({other_source})",
                                    strict=self._strict)

    def or_else(self, other: Union[str, "ConstraintExpression"]) -> "ConstraintExpression":
        """Disjunction with another expression (returns a new expression)."""
        other_source = other.source if isinstance(other, ConstraintExpression) else str(other)
        return ConstraintExpression(f"({self._source}) || ({other_source})",
                                    strict=self._strict)

    def negated(self) -> "ConstraintExpression":
        """Logical negation (returns a new expression)."""
        return ConstraintExpression(f"!({self._source})", strict=self._strict)

    def __and__(self, other: "ConstraintExpression") -> "ConstraintExpression":
        return self.and_also(other)

    def __or__(self, other: "ConstraintExpression") -> "ConstraintExpression":
        return self.or_else(other)

    def __invert__(self) -> "ConstraintExpression":
        return self.negated()

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def always_true(cls) -> "ConstraintExpression":
        """The unconstrained expression (pure topology embedding)."""
        return cls("true")

    @classmethod
    def always_false(cls) -> "ConstraintExpression":
        """An expression no pair satisfies (useful in tests)."""
        return cls("false")

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintExpression):
            return NotImplemented
        return self._source == other._source and self._strict == other._strict

    def __hash__(self) -> int:
        return hash((self._source, self._strict))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstraintExpression({self._source!r})"
