"""Abstract syntax tree for the constraint expression language.

The tree mirrors the Java-style expression grammar of §VI-B.  Every node
knows how to render itself back to source text (:meth:`Expr.unparse`), which
is used in error messages, in tests (parse/unparse round-trips), and by the
interactive negotiation session when it rewrites constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


class Expr:
    """Base class of all AST nodes."""

    def unparse(self) -> str:
        """Render this subtree back to constraint-language source text."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Immediate child expressions (for generic tree walks)."""
        return ()

    def walk(self):
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class NumberLiteral(Expr):
    """A numeric literal (int or float)."""

    value: float

    def unparse(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLiteral(Expr):
    """A quoted string literal."""

    value: str

    def unparse(self) -> str:
        escaped = self.value.replace('"', '\\"')
        return f'"{escaped}"'


@dataclass(frozen=True)
class BooleanLiteral(Expr):
    """``true`` or ``false``."""

    value: bool

    def unparse(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class AttributeRef(Expr):
    """Dotted attribute access such as ``vEdge.avgDelay``.

    ``obj`` is one of the context object names of Table I (``vEdge``,
    ``rEdge``, ``vSource``, ``vTarget``, ``rSource``, ``rTarget`` — plus
    ``vNode``/``rNode`` in node-constraint contexts); ``attribute`` is the
    attribute name on that object.
    """

    obj: str
    attribute: str

    def unparse(self) -> str:
        return f"{self.obj}.{self.attribute}"


@dataclass(frozen=True)
class Identifier(Expr):
    """A bare identifier (an object name used without attribute access)."""

    name: str

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operators: logical not ``!`` and arithmetic negation ``-``."""

    op: str
    operand: Expr

    def unparse(self) -> str:
        return f"{self.op}({self.operand.unparse()})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary arithmetic (``+ - * /``) and relational (``== != < > <= >=``) operators."""

    op: str
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class BoolOp(Expr):
    """Short-circuit boolean operators ``&&`` and ``||``."""

    op: str
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A call to a registered function such as ``sqrt`` or ``isBoundTo``."""

    name: str
    args: Tuple[Expr, ...]

    def unparse(self) -> str:
        rendered = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.name}({rendered})"

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.args)


def referenced_objects(expr: Expr) -> List[str]:
    """Distinct context-object names referenced anywhere in *expr*.

    Used by the evaluator to decide whether an expression is a pure edge
    constraint, a pure node constraint, or mixed, and by the query analyser to
    report which attributes a query depends on.
    """
    names = []
    for node in expr.walk():
        if isinstance(node, AttributeRef) and node.obj not in names:
            names.append(node.obj)
        elif isinstance(node, Identifier) and node.name not in names:
            names.append(node.name)
    return names


def referenced_attributes(expr: Expr) -> List[Tuple[str, str]]:
    """Distinct ``(object, attribute)`` pairs referenced in *expr*."""
    pairs = []
    for node in expr.walk():
        if isinstance(node, AttributeRef):
            pair = (node.obj, node.attribute)
            if pair not in pairs:
                pairs.append(pair)
    return pairs
