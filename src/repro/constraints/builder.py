"""Programmatic builders for common constraint expressions.

The paper's experiments use a small number of recurring constraint patterns
(delay tolerance windows, delay-within-measured-range, OS binding, explicit
node binding, geographic distance).  These helpers generate the corresponding
constraint-language source text so workload generators, examples and tests do
not hand-assemble strings, and so the exact expressions used by each
experiment are documented in one place.

All builders return plain source strings; combine them with
:func:`all_of` / :func:`any_of` and wrap the result in
:class:`~repro.constraints.ConstraintExpression`.
"""

from __future__ import annotations

from typing import Sequence


def all_of(*clauses: str) -> str:
    """Conjunction of the given clauses (skipping empty ones)."""
    parts = [c for c in clauses if c]
    if not parts:
        return "true"
    if len(parts) == 1:
        return parts[0]
    return " && ".join(f"({c})" for c in parts)


def any_of(*clauses: str) -> str:
    """Disjunction of the given clauses (skipping empty ones)."""
    parts = [c for c in clauses if c]
    if not parts:
        return "false"
    if len(parts) == 1:
        return parts[0]
    return " || ".join(f"({c})" for c in parts)


def delay_tolerance(fraction: float, query_attr: str = "avgDelay",
                    host_attr: str = "avgDelay") -> str:
    """Hosting delay within ``±fraction`` of the requested delay.

    The first example of §VI-B: with ``fraction=0.10`` this renders as
    ``vEdge.avgDelay >= 0.9*rEdge.avgDelay && vEdge.avgDelay <= 1.1*rEdge.avgDelay``.
    """
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    low = 1.0 - fraction
    high = 1.0 + fraction
    return (f"vEdge.{query_attr} >= {low!r}*rEdge.{host_attr} && "
            f"vEdge.{query_attr} <= {high!r}*rEdge.{host_attr}")


def requested_delay_within_host_range(query_attr: str = "avgDelay",
                                      host_min: str = "minDelay",
                                      host_max: str = "maxDelay") -> str:
    """The second §VI-B example: requested delay within [minDelay, maxDelay]."""
    return (f"vEdge.{query_attr} >= rEdge.{host_min} && "
            f"vEdge.{query_attr} <= rEdge.{host_max}")


def host_delay_within_query_window(low_attr: str = "minDelay",
                                   high_attr: str = "maxDelay",
                                   host_attr: str = "avgDelay") -> str:
    """The constraint used by the PlanetLab/BRITE experiments (§VII-B):
    the measured hosting delay must fall inside the query's requested window."""
    return (f"rEdge.{host_attr} >= vEdge.{low_attr} && "
            f"rEdge.{host_attr} <= vEdge.{high_attr}")


def absolute_delay_window(low: float, high: float, host_attr: str = "avgDelay") -> str:
    """Hosting delay inside a fixed window, e.g. the 10–100 ms clique queries (§VII-D)."""
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    return f"rEdge.{host_attr} >= {float(low)!r} && rEdge.{host_attr} <= {float(high)!r}"


def node_attribute_binding(attribute: str, query_obj: str = "vSource",
                           host_obj: str = "rSource") -> str:
    """Optional categorical binding, e.g. ``isBoundTo(vSource.osType, rSource.osType)``."""
    return f"isBoundTo({query_obj}.{attribute}, {host_obj}.{attribute})"


def bind_to_named_host(bind_attr: str = "bindTo", name_attr: str = "name") -> str:
    """Force particular query nodes onto named hosting nodes (§VI-B ``bindTo`` idiom).

    Applied to both edge endpoints so the constraint works regardless of which
    end of an edge carries the binding.
    """
    return all_of(
        f"isBoundTo(vSource.{bind_attr}, rSource.{name_attr})",
        f"isBoundTo(vTarget.{bind_attr}, rTarget.{name_attr})",
    )


def os_binding_both_endpoints(attribute: str = "osType") -> str:
    """Require both endpoints of every edge to respect an optional OS binding."""
    return all_of(
        node_attribute_binding(attribute, "vSource", "rSource"),
        node_attribute_binding(attribute, "vTarget", "rTarget"),
    )


def geographic_distance_within(limit: float,
                               x_attr: str = "x", y_attr: str = "y",
                               query_obj: str = "vSource",
                               host_obj: str = "rSource") -> str:
    """Euclidean distance between a query node's desired location and its host.

    The last §VI-B example (there written between vSource and vTarget; the
    generalised form here compares the query node's desired coordinates with
    the hosting node's actual coordinates).
    """
    if limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    dx = f"({query_obj}.{x_attr} - {host_obj}.{x_attr})"
    dy = f"({query_obj}.{y_attr} - {host_obj}.{y_attr})"
    return f"sqrt({dx}*{dx} + {dy}*{dy}) < {float(limit)!r}"


def minimum_bandwidth(host_attr: str = "bandwidth", query_attr: str = "bandwidth") -> str:
    """Hosting link bandwidth at least the requested bandwidth."""
    return f"rEdge.{host_attr} >= vEdge.{query_attr}"


def per_level_delay_windows(level_attr: str = "level",
                            windows: Sequence[tuple] = ((0, 75.0, 350.0), (1, 1.0, 75.0)),
                            host_attr: str = "avgDelay") -> str:
    """Composite-query constraint (§VII-D): a delay window per hierarchy level.

    ``windows`` is a sequence of ``(level, low, high)`` triples; a query edge
    tagged ``level == k`` must map onto a hosting link whose delay lies in
    that level's window.
    """
    clauses = []
    for level, low, high in windows:
        clauses.append(
            f"(vEdge.{level_attr} != {int(level)}) || "
            f"(rEdge.{host_attr} >= {float(low)!r} && rEdge.{host_attr} <= {float(high)!r})")
    return all_of(*clauses)
