"""Closure compiler for constraint expressions — the fast evaluation path.

ECF and RWB evaluate the constraint expression once per (query-edge,
hosting-edge) pair when building the filter matrices (paper §V-A); for a
PlanetLab-sized hosting network that is |E_Q| · |E_R| ≈ millions of
evaluations per query.  Re-walking the AST with ``isinstance`` dispatch for
every pair is measurably slower than necessary, so this module *compiles* the
AST once into a tree of small Python closures: each node becomes a function
``context -> value`` with all dispatch decisions taken at compile time.

The compiled form must be observationally identical to
:func:`repro.constraints.evaluator.evaluate`; the test suite checks this with
property-based tests over random expressions and contexts.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.constraints.ast_nodes import (
    AttributeRef,
    BinaryOp,
    BooleanLiteral,
    BoolOp,
    Expr,
    FunctionCall,
    Identifier,
    NumberLiteral,
    StringLiteral,
    UnaryOp,
)
from repro.constraints.context import Context
from repro.constraints.errors import EvaluationError, UnknownIdentifierError
from repro.constraints.evaluator import (
    _apply_binary,
    _MissingAbort,
    _require_number,
)
from repro.constraints.functions import MISSING, is_missing, lookup_function

#: A compiled sub-expression: maps a context to its value.
CompiledNode = Callable[[Context], Any]


def compile_expression(expr: Expr, strict: bool = False) -> Callable[[Context], bool]:
    """Compile *expr* into a callable ``context -> bool``.

    The returned callable has the same semantics as
    ``evaluate(expr, context, strict=strict)``.
    """
    node = _compile(expr, strict)

    def run(context: Context) -> bool:
        try:
            value = node(context)
        except _MissingAbort:
            return False
        if is_missing(value):
            if strict:
                raise EvaluationError("expression evaluated to a missing attribute")
            return False
        return bool(value)

    return run


def _compile(expr: Expr, strict: bool) -> CompiledNode:
    if isinstance(expr, (NumberLiteral, StringLiteral, BooleanLiteral)):
        value = expr.value
        return lambda context: value

    if isinstance(expr, AttributeRef):
        obj, attribute = expr.obj, expr.attribute
        if strict:
            def resolve_strict(context: Context) -> Any:
                try:
                    attrs = context[obj]
                except KeyError:
                    raise UnknownIdentifierError(obj) from None
                if attribute not in attrs:
                    raise EvaluationError(f"{obj} has no attribute {attribute!r}")
                value = attrs[attribute]
                return MISSING if value is None else value
            return resolve_strict

        def resolve(context: Context) -> Any:
            try:
                attrs = context[obj]
            except KeyError:
                raise UnknownIdentifierError(obj) from None
            value = attrs.get(attribute, MISSING)
            return MISSING if value is None else value
        return resolve

    if isinstance(expr, Identifier):
        name = expr.name

        def resolve_identifier(context: Context) -> Any:
            try:
                return context[name]
            except KeyError:
                raise UnknownIdentifierError(name) from None
        return resolve_identifier

    if isinstance(expr, UnaryOp):
        operand = _compile(expr.operand, strict)
        if expr.op == "!":
            def negate(context: Context) -> Any:
                return not bool(_present(operand(context), strict))
            return negate
        if expr.op == "-":
            def minus(context: Context) -> Any:
                value = _present(operand(context), strict)
                _require_number(value, "unary -")
                return -value
            return minus
        raise EvaluationError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, BoolOp):
        left = _compile(expr.left, strict)
        right = _compile(expr.right, strict)
        if expr.op == "&&":
            def conjunction(context: Context) -> bool:
                if not bool(_present(left(context), strict)):
                    return False
                return bool(_present(right(context), strict))
            return conjunction
        if expr.op == "||":
            def disjunction(context: Context) -> bool:
                if bool(_present(left(context), strict)):
                    return True
                return bool(_present(right(context), strict))
            return disjunction
        raise EvaluationError(f"unknown boolean operator {expr.op!r}")

    if isinstance(expr, BinaryOp):
        left = _compile(expr.left, strict)
        right = _compile(expr.right, strict)
        op = expr.op

        def binary(context: Context) -> Any:
            return _apply_binary(op, _present(left(context), strict),
                                 _present(right(context), strict))
        return binary

    if isinstance(expr, FunctionCall):
        function = lookup_function(expr.name)
        args = [_compile(arg, strict) for arg in expr.args]

        def call(context: Context) -> Any:
            return function(*[arg(context) for arg in args])
        return call

    raise EvaluationError(f"cannot compile AST node {type(expr).__name__}")


def _present(value: Any, strict: bool) -> Any:
    if is_missing(value):
        if strict:
            raise EvaluationError("operator applied to a missing attribute")
        raise _MissingAbort()
    return value
