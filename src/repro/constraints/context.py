"""Evaluation contexts: the objects visible inside a constraint expression.

Table I of the paper lists the objects available when an expression is
evaluated for a (query-edge, hosting-edge) pair:

===========  ===============  ==============================
Hosting      Virtual          Meaning
===========  ===============  ==============================
``rEdge``    ``vEdge``        the edge's attribute record
``rSource``  ``vSource``      the source node's attributes
``rTarget``  ``vTarget``      the target node's attributes
===========  ===============  ==============================

This module builds those contexts from :class:`~repro.graphs.network.Network`
objects.  A context is simply a mapping ``object name -> attribute dict``; a
missing attribute resolves to :data:`~repro.constraints.functions.MISSING`
(lenient mode) or raises (strict mode) — the evaluator decides.

For node-level constraints (used to pre-screen candidate nodes before any
edge is considered, and for isolated query nodes) the objects are ``vNode``
and ``rNode``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.graphs.network import Edge, Network, NodeId

#: A context maps Table-I object names to their attribute dictionaries.
Context = Dict[str, Mapping[str, Any]]

EDGE_OBJECTS = ("vEdge", "rEdge", "vSource", "vTarget", "rSource", "rTarget")
NODE_OBJECTS = ("vNode", "rNode")


def edge_context(query: Network, query_edge: Edge,
                 hosting: Network, hosting_edge: Edge) -> Context:
    """Build the Table-I context for evaluating an edge-pair constraint.

    Parameters
    ----------
    query, hosting:
        The query and hosting networks.
    query_edge:
        ``(vSource, vTarget)`` in the query network.
    hosting_edge:
        ``(rSource, rTarget)`` in the hosting network.  For undirected
        hosting networks the pair is an *orientation*: the stored edge may be
        ``(rTarget, rSource)``.
    """
    q_source, q_target = query_edge
    r_source, r_target = hosting_edge
    return {
        "vEdge": query.edge_attrs(q_source, q_target),
        "vSource": query.node_attrs(q_source),
        "vTarget": query.node_attrs(q_target),
        "rEdge": hosting.edge_attrs(r_source, r_target),
        "rSource": hosting.node_attrs(r_source),
        "rTarget": hosting.node_attrs(r_target),
    }


def node_context(query: Network, query_node: NodeId,
                 hosting: Network, hosting_node: NodeId) -> Context:
    """Build the context for evaluating a node-pair constraint."""
    return {
        "vNode": query.node_attrs(query_node),
        "rNode": hosting.node_attrs(hosting_node),
    }


def literal_context(**objects: Mapping[str, Any]) -> Context:
    """Build a context directly from attribute mappings (used in tests/examples)."""
    return dict(objects)


def context_signature(context: Context) -> Tuple[str, ...]:
    """The sorted object names present in a context (for diagnostics)."""
    return tuple(sorted(context.keys()))
