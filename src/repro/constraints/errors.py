"""Exception types for the constraint expression language."""

from __future__ import annotations


class ConstraintError(Exception):
    """Base class for all constraint-language errors."""


class LexError(ConstraintError):
    """Raised when the expression text contains an unrecognised character."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(ConstraintError):
    """Raised when the token stream does not form a valid expression."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class EvaluationError(ConstraintError):
    """Raised when an expression cannot be evaluated against a context.

    In *strict* evaluation mode a missing attribute raises this error; in the
    default lenient mode (the behaviour of the original NETEMBED service) a
    missing attribute simply makes the edge pair a non-match.
    """


class UnknownIdentifierError(EvaluationError):
    """Raised when an expression references an object name the context lacks."""

    def __init__(self, identifier: str):
        super().__init__(f"unknown identifier {identifier!r}")
        self.identifier = identifier


class UnknownFunctionError(EvaluationError):
    """Raised when an expression calls a function that is not registered."""

    def __init__(self, name: str):
        super().__init__(f"unknown function {name!r}")
        self.name = name
