"""Tree-walking evaluator for constraint expressions.

This is the *reference* semantics of the language: simple, explicit, easy to
audit.  The compiled evaluator in :mod:`repro.constraints.compiler` must agree
with it on every input (a property the test suite enforces with hypothesis).

Missing-attribute handling
--------------------------
NETEMBED evaluates the constraint expression for every (query-edge,
hosting-edge) pair; real hosting networks frequently define an attribute only
on some elements.  Two modes are supported:

* **lenient** (default, matches the original service): a missing attribute
  makes the whole evaluation yield ``False`` — the pair simply does not match
  — except inside ``isBoundTo`` where a missing *query* attribute means "no
  binding requested" and therefore satisfies the constraint.
* **strict**: a missing attribute raises
  :class:`~repro.constraints.errors.EvaluationError`, which is useful when
  debugging a query or validating generated workloads.

Internally missingness is propagated as the :data:`MISSING` sentinel so that
``isBoundTo`` can observe it; any other operator touching :data:`MISSING`
short-circuits the evaluation via :class:`_MissingAbort`.
"""

from __future__ import annotations

from typing import Any

from repro.constraints.ast_nodes import (
    AttributeRef,
    BinaryOp,
    BooleanLiteral,
    BoolOp,
    Expr,
    FunctionCall,
    Identifier,
    NumberLiteral,
    StringLiteral,
    UnaryOp,
)
from repro.constraints.context import Context
from repro.constraints.errors import EvaluationError, UnknownIdentifierError
from repro.constraints.functions import MISSING, is_missing, lookup_function


class _MissingAbort(Exception):
    """Internal control-flow exception: a missing attribute reached an operator."""


def evaluate(expr: Expr, context: Context, strict: bool = False) -> bool:
    """Evaluate *expr* against *context* and coerce the result to a boolean.

    Parameters
    ----------
    expr:
        Parsed expression (see :func:`repro.constraints.parser.parse`).
    context:
        Mapping of object names (``vEdge``, ``rEdge``, ...) to attribute
        mappings.
    strict:
        Whether missing attributes are an error instead of a non-match.

    Returns
    -------
    bool
        The truth value of the expression for this context.
    """
    try:
        value = _eval(expr, context, strict)
    except _MissingAbort:
        return False
    if is_missing(value):
        if strict:
            raise EvaluationError("expression evaluated to a missing attribute")
        return False
    return bool(value)


def evaluate_value(expr: Expr, context: Context, strict: bool = False) -> Any:
    """Evaluate *expr* and return its raw value (numeric, string, bool or MISSING).

    Used by the negotiation/diagnostic tooling to inspect sub-expressions.
    """
    try:
        return _eval(expr, context, strict)
    except _MissingAbort:
        return MISSING


def _eval(expr: Expr, context: Context, strict: bool) -> Any:
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, StringLiteral):
        return expr.value
    if isinstance(expr, BooleanLiteral):
        return expr.value

    if isinstance(expr, AttributeRef):
        return _resolve_attribute(expr, context, strict)

    if isinstance(expr, Identifier):
        if expr.name not in context:
            raise UnknownIdentifierError(expr.name)
        return context[expr.name]

    if isinstance(expr, UnaryOp):
        operand = _require_present(_eval(expr.operand, context, strict), strict)
        if expr.op == "!":
            return not bool(operand)
        if expr.op == "-":
            _require_number(operand, "unary -")
            return -operand
        raise EvaluationError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, BoolOp):
        left = _require_present(_eval(expr.left, context, strict), strict)
        if expr.op == "&&":
            if not bool(left):
                return False
            return bool(_require_present(_eval(expr.right, context, strict), strict))
        if expr.op == "||":
            if bool(left):
                return True
            return bool(_require_present(_eval(expr.right, context, strict), strict))
        raise EvaluationError(f"unknown boolean operator {expr.op!r}")

    if isinstance(expr, BinaryOp):
        left = _require_present(_eval(expr.left, context, strict), strict)
        right = _require_present(_eval(expr.right, context, strict), strict)
        return _apply_binary(expr.op, left, right)

    if isinstance(expr, FunctionCall):
        function = lookup_function(expr.name)
        # Function arguments are evaluated without aborting on MISSING so
        # isBoundTo can see the sentinel; numeric builtins validate themselves.
        args = [_eval(arg, context, strict) for arg in expr.args]
        return function(*args)

    raise EvaluationError(f"cannot evaluate AST node {type(expr).__name__}")


def _resolve_attribute(ref: AttributeRef, context: Context, strict: bool) -> Any:
    if ref.obj not in context:
        raise UnknownIdentifierError(ref.obj)
    attrs = context[ref.obj]
    if ref.attribute not in attrs:
        if strict:
            raise EvaluationError(
                f"{ref.obj} has no attribute {ref.attribute!r}")
        return MISSING
    value = attrs[ref.attribute]
    return MISSING if value is None else value


def _require_present(value: Any, strict: bool) -> Any:
    """Abort the evaluation when an operator receives a missing attribute."""
    if is_missing(value):
        if strict:
            raise EvaluationError("operator applied to a missing attribute")
        raise _MissingAbort()
    return value


def _require_number(value: Any, where: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{where} expects a number, got {value!r}")


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right

    if op in ("<", ">", "<=", ">="):
        _require_comparable(left, right, op)
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        return left >= right

    if op in ("+", "-", "*", "/"):
        # '+' also concatenates strings, mirroring Java semantics.
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        _require_number(left, f"operator {op!r}")
        _require_number(right, f"operator {op!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise EvaluationError("division by zero in constraint expression")
        return left / right

    raise EvaluationError(f"unknown binary operator {op!r}")


def _require_comparable(left: Any, right: Any, op: str) -> None:
    def numeric(v):
        return isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(left) and numeric(right):
        return
    if isinstance(left, str) and isinstance(right, str):
        return
    raise EvaluationError(
        f"operator {op!r} cannot compare {type(left).__name__} with {type(right).__name__}")
