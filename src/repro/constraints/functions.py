"""Built-in functions available in constraint expressions.

The paper's language (§VI-B) names ``abs``, ``sqrt`` and the binding helper
``isBoundTo``.  A few extra numeric helpers (``min``, ``max``, ``floor``,
``ceil``, ``pow``) are provided because composite/geographic constraints need
them and they keep the language expressive without widening its security
surface: only functions registered here can ever be called.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.constraints.errors import EvaluationError, UnknownFunctionError


class Missing:
    """Sentinel for an attribute that the current context does not define.

    In lenient evaluation mode a missing attribute does not abort the search;
    it simply prevents the edge pair from matching (except inside
    ``isBoundTo``, whose whole purpose is to express *optional* bindings).
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"

    def __bool__(self) -> bool:
        return False


#: The unique missing-value sentinel.
MISSING = Missing()


def is_missing(value: Any) -> bool:
    """Whether *value* is the missing-attribute sentinel."""
    return value is MISSING


def _numeric(value: Any, function: str) -> float:
    if is_missing(value):
        raise EvaluationError(f"{function}() applied to a missing attribute")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(
            f"{function}() expects a numeric argument, got {value!r}")
    return float(value)


def fn_abs(value: Any) -> float:
    """Absolute value."""
    return abs(_numeric(value, "abs"))


def fn_sqrt(value: Any) -> float:
    """Square root; negative arguments are an evaluation error."""
    number = _numeric(value, "sqrt")
    if number < 0:
        raise EvaluationError(f"sqrt() of a negative value ({number})")
    return math.sqrt(number)


def fn_min(*values: Any) -> float:
    """Minimum of the numeric arguments."""
    if not values:
        raise EvaluationError("min() requires at least one argument")
    return min(_numeric(v, "min") for v in values)


def fn_max(*values: Any) -> float:
    """Maximum of the numeric arguments."""
    if not values:
        raise EvaluationError("max() requires at least one argument")
    return max(_numeric(v, "max") for v in values)


def fn_floor(value: Any) -> float:
    """Floor."""
    return math.floor(_numeric(value, "floor"))


def fn_ceil(value: Any) -> float:
    """Ceiling."""
    return math.ceil(_numeric(value, "ceil"))


def fn_pow(base: Any, exponent: Any) -> float:
    """``base ** exponent``."""
    return _numeric(base, "pow") ** _numeric(exponent, "pow")


def fn_is_bound_to(requirement: Any, actual: Any) -> bool:
    """The paper's ``isBoundTo(requirement, actual)`` binding helper.

    Semantics (§VI-B): when the *requirement* attribute is absent from the
    query element the constraint is vacuously satisfied (the query simply did
    not ask for a binding); when present, the hosting element's *actual*
    value must exist and be equal.
    """
    if is_missing(requirement) or requirement is None:
        return True
    if is_missing(actual) or actual is None:
        return False
    return requirement == actual


#: Registry of callable names available in expressions.
BUILTIN_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": fn_abs,
    "sqrt": fn_sqrt,
    "min": fn_min,
    "max": fn_max,
    "floor": fn_floor,
    "ceil": fn_ceil,
    "pow": fn_pow,
    "isBoundTo": fn_is_bound_to,
}


def lookup_function(name: str) -> Callable[..., Any]:
    """Return the registered function *name* or raise :class:`UnknownFunctionError`."""
    try:
        return BUILTIN_FUNCTIONS[name]
    except KeyError:
        raise UnknownFunctionError(name) from None
