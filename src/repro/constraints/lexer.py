"""Lexer for the NETEMBED constraint expression language.

The original implementation used JFlex (paper §VI-B); this is an equivalent
hand-written scanner.  The language surface is the Java boolean-expression
subset the paper describes:

* boolean operators ``&&``, ``||``, ``!``
* relational operators ``==``, ``!=``, ``<``, ``>``, ``<=``, ``>=``
* arithmetic operators ``+``, ``-``, ``*``, ``/``
* parentheses, function calls with comma-separated arguments
* dotted attribute access (``vEdge.avgDelay``)
* numeric literals (integer and floating point, with exponents), string
  literals in single or double quotes, and the keywords ``true`` / ``false``.
"""

from __future__ import annotations

from typing import List

from repro.constraints.errors import LexError
from repro.constraints.tokens import Token, TokenType

_SINGLE_CHAR = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
}

_KEYWORDS = {
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
}


def tokenize(text: str) -> List[Token]:
    """Convert *text* into a token list terminated by an ``EOF`` token.

    Raises
    ------
    LexError
        On any character that cannot start a token, an unterminated string
        literal, or a malformed number.
    """
    tokens: List[Token] = []
    i = 0
    length = len(text)

    while i < length:
        ch = text[i]

        if ch.isspace():
            i += 1
            continue

        # Two-character operators first.
        two = text[i:i + 2]
        if two == "&&":
            tokens.append(Token(TokenType.AND, "&&", i))
            i += 2
            continue
        if two == "||":
            tokens.append(Token(TokenType.OR, "||", i))
            i += 2
            continue
        if two == "==":
            tokens.append(Token(TokenType.EQ, "==", i))
            i += 2
            continue
        if two == "!=":
            tokens.append(Token(TokenType.NEQ, "!=", i))
            i += 2
            continue
        if two == "<=":
            tokens.append(Token(TokenType.LE, "<=", i))
            i += 2
            continue
        if two == ">=":
            tokens.append(Token(TokenType.GE, ">=", i))
            i += 2
            continue

        if ch == "!":
            tokens.append(Token(TokenType.NOT, "!", i))
            i += 1
            continue
        if ch == "<":
            tokens.append(Token(TokenType.LT, "<", i))
            i += 1
            continue
        if ch == ">":
            tokens.append(Token(TokenType.GT, ">", i))
            i += 1
            continue
        if ch == "&" or ch == "|":
            raise LexError(f"unexpected character {ch!r} (did you mean "
                           f"{'&&' if ch == '&' else '||'}?)", i)

        # Numbers.  A leading '.' followed by a digit is also a number, but a
        # '.' used for attribute access is handled as the DOT token.
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()
                            and _previous_allows_number(tokens)):
            i = _lex_number(text, i, tokens)
            continue

        # String literals.
        if ch in ("'", '"'):
            i = _lex_string(text, i, tokens)
            continue

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            token_type = _KEYWORDS.get(word, TokenType.IDENTIFIER)
            value = word if token_type is TokenType.IDENTIFIER else (word == "true")
            tokens.append(Token(token_type, value, start))
            continue

        if ch in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[ch], ch, i))
            i += 1
            continue

        raise LexError(f"unexpected character {ch!r}", i)

    tokens.append(Token(TokenType.EOF, None, length))
    return tokens


def _previous_allows_number(tokens: List[Token]) -> bool:
    """Whether a '.' at this point starts a numeric literal rather than attribute access."""
    if not tokens:
        return True
    return tokens[-1].type is not TokenType.IDENTIFIER


def _lex_number(text: str, start: int, tokens: List[Token]) -> int:
    """Scan a numeric literal starting at *start*; append token; return next index."""
    i = start
    length = len(text)
    seen_dot = False
    seen_exp = False
    while i < length:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # Only part of the number if followed by a digit (otherwise it is
            # attribute access on a numeric-looking identifier, which we reject
            # later at parse time anyway).
            if i + 1 < length and text[i + 1].isdigit():
                seen_dot = True
                i += 1
            else:
                break
        elif ch in ("e", "E") and not seen_exp and i > start:
            nxt = text[i + 1] if i + 1 < length else ""
            if nxt.isdigit() or (nxt in "+-" and i + 2 < length and text[i + 2].isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    lexeme = text[start:i]
    try:
        value = float(lexeme) if (seen_dot or seen_exp) else int(lexeme)
    except ValueError as exc:  # pragma: no cover - defensive
        raise LexError(f"malformed number {lexeme!r}", start) from exc
    tokens.append(Token(TokenType.NUMBER, value, start))
    return i


def _lex_string(text: str, start: int, tokens: List[Token]) -> int:
    """Scan a quoted string literal; append token; return next index."""
    quote = text[start]
    i = start + 1
    chars = []
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "\\" and i + 1 < length:
            chars.append(text[i + 1])
            i += 2
            continue
        if ch == quote:
            tokens.append(Token(TokenType.STRING, "".join(chars), start))
            return i + 1
        chars.append(ch)
        i += 1
    raise LexError("unterminated string literal", start)
