"""Recursive-descent parser for the constraint expression language.

Grammar (standard Java precedence, paper §VI-B):

.. code-block:: text

    expression     := or_expr
    or_expr        := and_expr ( "||" and_expr )*
    and_expr       := equality ( "&&" equality )*
    equality       := relational ( ("==" | "!=") relational )*
    relational     := additive ( ("<" | ">" | "<=" | ">=") additive )*
    additive       := multiplicative ( ("+" | "-") multiplicative )*
    multiplicative := unary ( ("*" | "/") unary )*
    unary          := ("!" | "-") unary | primary
    primary        := NUMBER | STRING | "true" | "false"
                    | IDENTIFIER "." IDENTIFIER          (attribute access)
                    | IDENTIFIER "(" arguments? ")"      (function call)
                    | IDENTIFIER                          (bare identifier)
                    | "(" expression ")"
    arguments      := expression ( "," expression )*
"""

from __future__ import annotations

from typing import List

from repro.constraints.ast_nodes import (
    AttributeRef,
    BinaryOp,
    BooleanLiteral,
    BoolOp,
    Expr,
    FunctionCall,
    Identifier,
    NumberLiteral,
    StringLiteral,
    UnaryOp,
)
from repro.constraints.errors import ParseError
from repro.constraints.lexer import tokenize
from repro.constraints.tokens import Token, TokenType


def parse(text: str) -> Expr:
    """Parse constraint-language source *text* into an AST.

    Raises
    ------
    LexError
        If the text contains invalid tokens.
    ParseError
        If the token stream is not a valid expression.
    """
    return _Parser(tokenize(text)).parse()


class _Parser:
    """Stateful recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token stream helpers ------------------------------------------- #

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _match(self, *types: TokenType) -> bool:
        return self._current.type in types

    def _expect(self, token_type: TokenType, what: str) -> Token:
        if self._current.type is not token_type:
            raise ParseError(
                f"expected {what}, found {self._describe(self._current)}",
                self._current.position)
        return self._advance()

    @staticmethod
    def _describe(token: Token) -> str:
        if token.type is TokenType.EOF:
            return "end of expression"
        return f"{token.type.name} {token.value!r}"

    # -- grammar productions -------------------------------------------- #

    def parse(self) -> Expr:
        expr = self._or_expr()
        if self._current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected {self._describe(self._current)} after expression",
                self._current.position)
        return expr

    def _or_expr(self) -> Expr:
        expr = self._and_expr()
        while self._match(TokenType.OR):
            self._advance()
            expr = BoolOp("||", expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expr:
        expr = self._equality()
        while self._match(TokenType.AND):
            self._advance()
            expr = BoolOp("&&", expr, self._equality())
        return expr

    def _equality(self) -> Expr:
        expr = self._relational()
        while self._match(TokenType.EQ, TokenType.NEQ):
            op = "==" if self._advance().type is TokenType.EQ else "!="
            expr = BinaryOp(op, expr, self._relational())
        return expr

    def _relational(self) -> Expr:
        expr = self._additive()
        ops = {TokenType.LT: "<", TokenType.GT: ">", TokenType.LE: "<=", TokenType.GE: ">="}
        while self._current.type in ops:
            op = ops[self._advance().type]
            expr = BinaryOp(op, expr, self._additive())
        return expr

    def _additive(self) -> Expr:
        expr = self._multiplicative()
        while self._match(TokenType.PLUS, TokenType.MINUS):
            op = "+" if self._advance().type is TokenType.PLUS else "-"
            expr = BinaryOp(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> Expr:
        expr = self._unary()
        while self._match(TokenType.STAR, TokenType.SLASH):
            op = "*" if self._advance().type is TokenType.STAR else "/"
            expr = BinaryOp(op, expr, self._unary())
        return expr

    def _unary(self) -> Expr:
        if self._match(TokenType.NOT):
            self._advance()
            return UnaryOp("!", self._unary())
        if self._match(TokenType.MINUS):
            self._advance()
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(token.value)

        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(token.value)

        if token.type in (TokenType.TRUE, TokenType.FALSE):
            self._advance()
            return BooleanLiteral(token.type is TokenType.TRUE)

        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._or_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr

        if token.type is TokenType.IDENTIFIER:
            self._advance()
            name = token.value
            if self._match(TokenType.DOT):
                self._advance()
                attr = self._expect(TokenType.IDENTIFIER, "attribute name after '.'")
                return AttributeRef(name, attr.value)
            if self._match(TokenType.LPAREN):
                self._advance()
                args: List[Expr] = []
                if not self._match(TokenType.RPAREN):
                    args.append(self._or_expr())
                    while self._match(TokenType.COMMA):
                        self._advance()
                        args.append(self._or_expr())
                self._expect(TokenType.RPAREN, "')' to close argument list")
                return FunctionCall(name, tuple(args))
            return Identifier(name)

        raise ParseError(f"unexpected {self._describe(token)}", token.position)
