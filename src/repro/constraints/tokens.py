"""Token model for the constraint expression language lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """All token categories produced by the lexer."""

    NUMBER = "NUMBER"
    STRING = "STRING"
    IDENTIFIER = "IDENTIFIER"
    TRUE = "TRUE"
    FALSE = "FALSE"

    # Boolean operators
    AND = "AND"            # &&
    OR = "OR"              # ||
    NOT = "NOT"            # !

    # Relational operators
    EQ = "EQ"              # ==
    NEQ = "NEQ"            # !=
    LT = "LT"              # <
    GT = "GT"              # >
    LE = "LE"              # <=
    GE = "GE"              # >=

    # Arithmetic operators
    PLUS = "PLUS"
    MINUS = "MINUS"
    STAR = "STAR"
    SLASH = "SLASH"

    # Punctuation
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"

    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType`.
    value:
        The semantic value: the numeric value for ``NUMBER``, the unquoted
        text for ``STRING``, the name for ``IDENTIFIER``, otherwise the
        source lexeme.
    position:
        Character offset in the source expression (for error messages).
    """

    type: TokenType
    value: Any
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, pos={self.position})"
