"""Vectorizing compiler: constraint expressions over attribute *arrays*.

The filter-construction stage of ECF/RWB (paper §V-A) evaluates the edge
constraint once per (query edge, oriented hosting arc) — |E_Q| · 2|E_R|
evaluations.  Even with the closure compiler each evaluation costs a dozen
Python calls; on a PlanetLab-scale mesh that is the dominant term of the
whole search.  This module compiles the same AST into a *batch kernel* that
evaluates the expression for **all hosting arcs at once** over numpy arrays,
reducing the per-arc cost to a few vector instructions.

Semantics: a kernel must agree exactly with the lenient scalar evaluator
(:mod:`repro.constraints.evaluator`), including missing-attribute handling
and ``&&`` / ``||`` short-circuiting.  Each compiled node therefore returns a
``(value, bad)`` pair, where ``bad`` marks the rows whose evaluation the
scalar engine would abort via ``_MissingAbort``; the final row result is
``value & ~bad``.  Short-circuiting is encoded in how ``bad`` propagates:
``a && b`` ignores ``b``'s badness where ``a`` is false, ``a || b`` where
``a`` is true — exactly the rows where the scalar evaluator never touches
the right operand.

Only the numeric fragment of the language is vectorized — numeric literals
and attributes, ``+ - *`` arithmetic, comparisons and boolean connectives.
:func:`compile_vector_kernel` returns ``None`` for anything else (function
calls such as ``isBoundTo``, string literals, division with its
divide-by-zero error semantics, bare identifiers), and the caller falls back
to the scalar loop; the fallback is exercised by the OS-binding workloads.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

try:  # numpy is an install dependency, but degrade gracefully without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

from repro.constraints.ast_nodes import (
    AttributeRef,
    BinaryOp,
    BooleanLiteral,
    BoolOp,
    Expr,
    NumberLiteral,
    UnaryOp,
)

HAVE_NUMPY = np is not None

#: Kernel environment: ``(object name, attribute) -> (values, missing)``.
#: Values/missing are aligned numpy arrays for hosting-side objects and
#: plain scalars for query-side objects (numpy broadcasting unifies them).
KernelEnv = Dict[Tuple[str, str], Tuple[Any, Any]]

#: A compiled kernel: environment -> (boolean values, bad-row mask).
VectorKernel = Callable[[KernelEnv], Tuple[Any, Any]]

_NUM = "num"
_BOOL = "bool"


def compile_vector_kernel(expr: Expr) -> Optional[VectorKernel]:
    """Compile *expr* to a batch kernel, or ``None`` if it is not vectorizable.

    The kernel maps a :data:`KernelEnv` to ``(value, bad)``; the caller's
    per-row match decision is ``bool(value) & ~bad``.  Only lenient (non
    strict) semantics are produced — strict mode must use the scalar path.
    """
    if np is None:
        return None
    compiled = _compile(expr)
    if compiled is None:
        return None
    node, tag = compiled

    def kernel(env: KernelEnv) -> Tuple[Any, Any]:
        value, bad = node(env)
        if tag is _NUM:
            # bool(number): non-zero is true (a bare numeric expression).
            value = value != 0
        return value, bad

    return kernel


#: Attribute under which :func:`cached_vector_kernel` memoises its result on
#: the expression object (a (kernel-or-None,) one-tuple, so a non-vectorizable
#: expression caches its ``None`` verdict too).
_KERNEL_CACHE_ATTR = "_vector_kernel_cache"


def cached_vector_kernel(expression) -> Optional[VectorKernel]:
    """The compiled batch kernel for a constraint expression, memoised.

    *expression* is any object with an ``ast`` attribute (in practice a
    :class:`~repro.constraints.ConstraintExpression`, which is immutable, so
    caching the compiled kernel on the instance is safe).  Repeated filter
    builds against the same expression — the plan-cache hot path — then skip
    the AST walk entirely.
    """
    cached = getattr(expression, _KERNEL_CACHE_ATTR, None)
    if cached is None:
        cached = (compile_vector_kernel(expression.ast),)
        try:
            setattr(expression, _KERNEL_CACHE_ATTR, cached)
        except AttributeError:  # slots/frozen objects: fall back to recompiling
            pass
    return cached[0]


# --------------------------------------------------------------------------- #
# Node compilers: each returns (closure, type tag) or None when unsupported.
# --------------------------------------------------------------------------- #

def _compile(expr: Expr):
    if isinstance(expr, NumberLiteral):
        value = expr.value

        def literal(env: KernelEnv):
            return value, False
        return literal, _NUM

    if isinstance(expr, BooleanLiteral):
        value = expr.value

        def bool_literal(env: KernelEnv):
            return value, False
        return bool_literal, _BOOL

    if isinstance(expr, AttributeRef):
        key = (expr.obj, expr.attribute)

        def attribute(env: KernelEnv):
            return env[key]
        return attribute, _NUM

    if isinstance(expr, UnaryOp):
        compiled = _compile(expr.operand)
        if compiled is None:
            return None
        operand, tag = compiled
        if expr.op == "!":
            def negate(env: KernelEnv):
                value, bad = operand(env)
                return np.logical_not(value), bad
            return negate, _BOOL
        if expr.op == "-":
            if tag is not _NUM:  # unary minus on a boolean is a type error
                return None

            def minus(env: KernelEnv):
                value, bad = operand(env)
                return np.negative(value), bad
            return minus, _NUM
        return None

    if isinstance(expr, BoolOp):
        left_c = _compile(expr.left)
        right_c = _compile(expr.right)
        if left_c is None or right_c is None:
            return None
        left, _ = left_c
        right, _ = right_c
        if expr.op == "&&":
            def conjunction(env: KernelEnv):
                l_value, l_bad = left(env)
                r_value, r_bad = right(env)
                l_true = _truthy(l_value)
                # The scalar engine never evaluates the right operand where
                # the left is (validly) false, so badness there is ignored.
                bad = np.logical_or(l_bad, np.logical_and(l_true, r_bad))
                return np.logical_and(l_true, _truthy(r_value)), bad
            return conjunction, _BOOL
        if expr.op == "||":
            def disjunction(env: KernelEnv):
                l_value, l_bad = left(env)
                r_value, r_bad = right(env)
                l_true = _truthy(l_value)
                bad = np.logical_or(
                    l_bad, np.logical_and(np.logical_not(l_true), r_bad))
                return np.logical_or(l_true, _truthy(r_value)), bad
            return disjunction, _BOOL
        return None

    if isinstance(expr, BinaryOp):
        left_c = _compile(expr.left)
        right_c = _compile(expr.right)
        if left_c is None or right_c is None:
            return None
        left, left_tag = left_c
        right, right_tag = right_c
        op = expr.op

        if op in ("<", ">", "<=", ">="):
            # Ordered comparison is numeric-only in the scalar semantics.
            if left_tag is not _NUM or right_tag is not _NUM:
                return None
        elif op in ("+", "-", "*"):
            if left_tag is not _NUM or right_tag is not _NUM:
                return None
        elif op not in ("==", "!="):
            # '/' is excluded: its divide-by-zero EvaluationError is only
            # raised for rows the scalar engine actually reaches.
            return None

        ufunc = _BINARY_UFUNCS[op]
        result_tag = _NUM if op in ("+", "-", "*") else _BOOL

        def binary(env: KernelEnv):
            l_value, l_bad = left(env)
            r_value, r_bad = right(env)
            return ufunc(l_value, r_value), np.logical_or(l_bad, r_bad)
        return binary, result_tag

    return None  # Identifier, FunctionCall, StringLiteral, unknown nodes


def _truthy(value):
    """Elementwise ``bool(value)`` (numbers: non-zero; booleans: identity)."""
    if value is True or value is False:
        return value
    if np is not None and isinstance(value, np.ndarray) and value.dtype == bool:
        return value
    return value != 0


_BINARY_UFUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}
