"""The NETEMBED mapping algorithms (paper §V) and their shared machinery.

Public surface:

* :class:`ECF` — exhaustive search with constraint filtering (all embeddings);
* :class:`RWB` — random walk with backtracking (first embedding, randomised);
* :class:`LNS` — lazy neighborhood search (low memory, lazy constraint checks);
* :class:`EmbeddingResult` / :class:`ResultStatus` — what a search returns;
* :class:`Mapping` and :func:`validate_mapping` — embeddings and their
  independent correctness oracle;
* :func:`build_filters` / :class:`FilterMatrices` — the ECF/RWB filter stage,
  exposed for tests, ablations and diagnostics;
* :class:`EmbeddingPlan` / :class:`PlanCache` — the two-phase
  prepare/execute surface: compiled, reusable plans and the version-aware
  LRU cache the service routes repeated traffic through;
* :func:`make_pool` / :func:`shared_pool` / :func:`shutdown_shared_pool` —
  the process pools behind ``execute(parallelism=N)``, the sharded parallel
  engine of :mod:`repro.core.parallel`.
"""

from repro.api.registry import UnknownAlgorithmError, default_registry
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.core.ecf import ECF
from repro.core.filters import (
    FilterMatrices,
    HostingCompile,
    build_filters,
    clear_hosting_compile,
    compile_hosting,
    compute_node_candidates,
    patch_filters,
    patch_hosting_compile,
)
from repro.core.indexing import NodeIndexer
from repro.core.lns import LNS
from repro.core.plan import (
    EmbeddingPlan,
    PlanCache,
    PlanCacheEntry,
    PlanInvalidatedError,
    PreparedSearch,
)
from repro.core.mapping import Mapping, MappingViolation, is_valid_mapping, validate_mapping
from repro.core.repair import (
    RepairResult,
    RepairStats,
    repair_mapping,
    violated_query_nodes,
)
from repro.core.parallel import (
    DEFAULT_SHARD_FACTOR,
    PlanShard,
    ShardOutcome,
    make_pool,
    shared_pool,
    shutdown_shared_pool,
    split_contiguous,
)
from repro.core.ordering import (
    ORDERINGS,
    candidate_count_order,
    connectivity_aware_order,
    lns_next_neighbor,
    lns_seed_node,
    natural_order,
    permutation_tree_size,
)
from repro.core.result import EmbeddingResult, ResultStatus, SearchStats, classify
from repro.core.rwb import RWB

#: All three NETEMBED algorithms keyed by their paper names.  Built from the
#: capability registry (the classes register themselves on import above);
#: kept as a plain dict for backward compatibility.
ALGORITHMS = {info.name: info.factory
              for info in default_registry().with_tag("core")}


def make_algorithm(name: str, **kwargs) -> EmbeddingAlgorithm:
    """Instantiate a registered algorithm by name (case-insensitive).

    Delegates to the :mod:`repro.api` registry, so baseline names work too
    once :mod:`repro.baselines` has been imported.
    """
    return default_registry().create(name, **kwargs)


__all__ = [
    "ECF",
    "RWB",
    "LNS",
    "ALGORITHMS",
    "make_algorithm",
    "EmbeddingAlgorithm",
    "SearchContext",
    "EmbeddingResult",
    "ResultStatus",
    "SearchStats",
    "classify",
    "Mapping",
    "MappingViolation",
    "validate_mapping",
    "is_valid_mapping",
    "RepairResult",
    "RepairStats",
    "repair_mapping",
    "violated_query_nodes",
    "FilterMatrices",
    "HostingCompile",
    "NodeIndexer",
    "build_filters",
    "clear_hosting_compile",
    "compile_hosting",
    "compute_node_candidates",
    "patch_filters",
    "patch_hosting_compile",
    "EmbeddingPlan",
    "PlanCache",
    "PlanCacheEntry",
    "PlanInvalidatedError",
    "PreparedSearch",
    "DEFAULT_SHARD_FACTOR",
    "PlanShard",
    "ShardOutcome",
    "make_pool",
    "shared_pool",
    "shutdown_shared_pool",
    "split_contiguous",
    "ORDERINGS",
    "candidate_count_order",
    "connectivity_aware_order",
    "natural_order",
    "lns_seed_node",
    "lns_next_neighbor",
    "permutation_tree_size",
]
