"""The NETEMBED mapping algorithms (paper §V) and their shared machinery.

Public surface:

* :class:`ECF` — exhaustive search with constraint filtering (all embeddings);
* :class:`RWB` — random walk with backtracking (first embedding, randomised);
* :class:`LNS` — lazy neighborhood search (low memory, lazy constraint checks);
* :class:`EmbeddingResult` / :class:`ResultStatus` — what a search returns;
* :class:`Mapping` and :func:`validate_mapping` — embeddings and their
  independent correctness oracle;
* :func:`build_filters` / :class:`FilterMatrices` — the ECF/RWB filter stage,
  exposed for tests, ablations and diagnostics.
"""

from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.core.ecf import ECF
from repro.core.filters import FilterMatrices, build_filters, compute_node_candidates
from repro.core.lns import LNS
from repro.core.mapping import Mapping, MappingViolation, is_valid_mapping, validate_mapping
from repro.core.ordering import (
    ORDERINGS,
    candidate_count_order,
    connectivity_aware_order,
    lns_next_neighbor,
    lns_seed_node,
    natural_order,
    permutation_tree_size,
)
from repro.core.result import EmbeddingResult, ResultStatus, SearchStats, classify
from repro.core.rwb import RWB

#: All three NETEMBED algorithms keyed by their paper names.
ALGORITHMS = {
    "ECF": ECF,
    "RWB": RWB,
    "LNS": LNS,
}


def make_algorithm(name: str, **kwargs) -> EmbeddingAlgorithm:
    """Instantiate one of the NETEMBED algorithms by its paper name."""
    try:
        cls = ALGORITHMS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of {sorted(ALGORITHMS)}") from None
    return cls(**kwargs)


__all__ = [
    "ECF",
    "RWB",
    "LNS",
    "ALGORITHMS",
    "make_algorithm",
    "EmbeddingAlgorithm",
    "SearchContext",
    "EmbeddingResult",
    "ResultStatus",
    "SearchStats",
    "classify",
    "Mapping",
    "MappingViolation",
    "validate_mapping",
    "is_valid_mapping",
    "FilterMatrices",
    "build_filters",
    "compute_node_candidates",
    "ORDERINGS",
    "candidate_count_order",
    "connectivity_aware_order",
    "natural_order",
    "lns_seed_node",
    "lns_next_neighbor",
    "permutation_tree_size",
]
