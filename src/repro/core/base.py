"""Common infrastructure shared by the three NETEMBED search algorithms.

Every algorithm — ECF, RWB, LNS, and the baselines in :mod:`repro.baselines`
— exposes the same interface: :meth:`EmbeddingAlgorithm.search` takes a query
network, a hosting network, an optional edge constraint expression, an
optional node constraint expression, a timeout and a result cap, and returns
an :class:`~repro.core.result.EmbeddingResult`.

The :class:`SearchContext` object carries the per-search mutable state
(deadline, statistics, the embeddings discovered so far, time-to-first
bookkeeping) so the algorithm implementations stay small and uniform, and so
every algorithm classifies its outcome (complete / partial / inconclusive)
with exactly the same rules.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.constraints import ConstraintExpression, edge_context
from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult, ResultStatus, SearchStats, classify
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, Network, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Deadline, Stopwatch, TimeoutExpired


@dataclass
class SearchContext:
    """Mutable per-search state shared between an algorithm and its helpers."""

    query: QueryNetwork
    hosting: Network
    constraint: ConstraintExpression
    node_constraint: Optional[ConstraintExpression]
    deadline: Deadline
    max_results: Optional[int]
    stats: SearchStats = field(default_factory=SearchStats)
    mappings: List[Mapping] = field(default_factory=list)
    time_to_first: Optional[float] = None
    _stopwatch: Stopwatch = field(default_factory=Stopwatch)

    def __post_init__(self) -> None:
        self._stopwatch.start()

    # -- bookkeeping ------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        """Seconds since the search started."""
        return self._stopwatch.elapsed

    def check_deadline(self) -> None:
        """Raise :class:`TimeoutExpired` if the search budget is exhausted."""
        self.deadline.check()

    def record_mapping(self, assignment: Dict[NodeId, NodeId]) -> bool:
        """Record a feasible embedding.

        Returns ``True`` when the search should stop because the result cap
        has been reached.
        """
        self.mappings.append(Mapping(assignment))
        if self.time_to_first is None:
            self.time_to_first = self.elapsed
        return self.max_results is not None and len(self.mappings) >= self.max_results

    @property
    def reached_cap(self) -> bool:
        """Whether the result cap has been reached."""
        return self.max_results is not None and len(self.mappings) >= self.max_results

    # -- compatibility checks used by the on-the-fly (LNS) search ---------- #

    def hosting_orientation(self, r_source: NodeId, r_target: NodeId) -> Optional[Edge]:
        """The hosting edge orientation covering ``r_source -> r_target``, or ``None``."""
        hosting = self.hosting
        if hosting.has_edge(r_source, r_target):
            return (r_source, r_target)
        if not hosting.directed and hosting.has_edge(r_target, r_source):
            return (r_source, r_target)
        return None

    def edge_pair_matches(self, query_edge: Edge, hosting_edge: Edge) -> bool:
        """Whether the constraint accepts mapping *query_edge* onto *hosting_edge*.

        The hosting edge must already be known to exist (in the given
        orientation for directed hosting networks).
        """
        if self.constraint.is_trivial:
            return True
        self.stats.constraint_evaluations += 1
        return self.constraint.evaluate(
            edge_context(self.query, query_edge, self.hosting, hosting_edge))

    def query_edge_supported(self, q_source: NodeId, q_target: NodeId,
                             r_source: NodeId, r_target: NodeId) -> bool:
        """Topology + constraint check for a single query edge under a partial mapping."""
        oriented = self.hosting_orientation(r_source, r_target)
        if oriented is None:
            return False
        return self.edge_pair_matches((q_source, q_target), oriented)


class EmbeddingAlgorithm(abc.ABC):
    """Base class for all embedding search algorithms.

    Subclasses implement :meth:`_run`, which performs the actual search and
    returns whether the search space was exhausted.  The base class handles
    argument validation, the timeout, statistics and result classification so
    all algorithms behave identically at the interface level.
    """

    #: Human-readable algorithm name used in results and experiment reports.
    name: str = "abstract"

    def search(self, query: QueryNetwork, hosting: Network,
               constraint: Optional[ConstraintExpression] = None,
               node_constraint: Optional[ConstraintExpression] = None,
               timeout: Optional[float] = None,
               max_results: Optional[int] = None) -> EmbeddingResult:
        """Search for feasible embeddings of *query* into *hosting*.

        Parameters
        ----------
        query:
            The virtual network to embed.
        hosting:
            The real infrastructure to embed into.
        constraint:
            Edge constraint expression; ``None`` means "topology only".
            A plain string is accepted and parsed.
        node_constraint:
            Optional node-level constraint expression over ``vNode``/``rNode``.
        timeout:
            Wall-clock budget in seconds (``None`` = unlimited).
        max_results:
            Stop after this many embeddings (``None`` = find all that the
            algorithm is designed to find; RWB always stops at one).

        Returns
        -------
        EmbeddingResult
        """
        if not isinstance(query, QueryNetwork):
            raise TypeError(f"query must be a QueryNetwork, got {type(query).__name__}")
        if not isinstance(hosting, Network):
            raise TypeError(f"hosting must be a Network, got {type(hosting).__name__}")
        if query.directed != hosting.directed:
            raise ValueError(
                "query and hosting networks must agree on directedness "
                f"(query directed={query.directed}, hosting directed={hosting.directed})")
        if max_results is not None and max_results < 1:
            raise ValueError(f"max_results must be >= 1 or None, got {max_results}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")

        constraint = _coerce_expression(constraint, default_true=True)
        node_constraint = _coerce_expression(node_constraint, default_true=False)

        context = SearchContext(
            query=query,
            hosting=hosting,
            constraint=constraint,
            node_constraint=node_constraint,
            deadline=Deadline(timeout),
            max_results=self._effective_max_results(max_results),
        )

        # Empty queries embed trivially with the empty mapping.
        if query.num_nodes == 0:
            context.record_mapping({})
            return self._finalise(context, exhausted=True, timed_out=False)

        # Cheap necessary-condition screen: a query that cannot embed for
        # structural reasons is reported as a completed, empty search.
        if query.is_obviously_infeasible(hosting):
            return self._finalise(context, exhausted=True, timed_out=False)

        timed_out = False
        try:
            exhausted = self._run(context)
        except TimeoutExpired:
            exhausted = False
            timed_out = True
        return self._finalise(context, exhausted=exhausted, timed_out=timed_out)

    # ------------------------------------------------------------------ #

    def find_first(self, query: QueryNetwork, hosting: Network,
                   constraint: Optional[ConstraintExpression] = None,
                   node_constraint: Optional[ConstraintExpression] = None,
                   timeout: Optional[float] = None) -> EmbeddingResult:
        """Convenience wrapper: stop at the first feasible embedding."""
        return self.search(query, hosting, constraint=constraint,
                           node_constraint=node_constraint, timeout=timeout,
                           max_results=1)

    # ------------------------------------------------------------------ #

    def _effective_max_results(self, requested: Optional[int]) -> Optional[int]:
        """Hook letting algorithms impose their own cap (RWB caps at one)."""
        return requested

    @abc.abstractmethod
    def _run(self, context: SearchContext) -> bool:
        """Perform the search, populating ``context.mappings``.

        Returns
        -------
        bool
            ``True`` if the search space was exhaustively explored (so the
            result set is provably complete), ``False`` if the search stopped
            early (result cap).  Deadline expiry is signalled by letting
            :class:`TimeoutExpired` propagate.
        """

    def _finalise(self, context: SearchContext, exhausted: bool, timed_out: bool
                  ) -> EmbeddingResult:
        truncated = context.reached_cap and not exhausted
        status = classify(found_any=bool(context.mappings), exhausted=exhausted,
                          timed_out=timed_out, truncated=truncated)
        return EmbeddingResult(
            status=status,
            mappings=list(context.mappings),
            algorithm=self.name,
            elapsed_seconds=context.elapsed,
            time_to_first_seconds=context.time_to_first,
            timed_out=timed_out,
            truncated=truncated,
            stats=context.stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"


def _coerce_expression(value, default_true: bool) -> Optional[ConstraintExpression]:
    """Accept ``None``, a source string or a ConstraintExpression uniformly."""
    if value is None:
        return ConstraintExpression.always_true() if default_true else None
    if isinstance(value, ConstraintExpression):
        return value
    if isinstance(value, str):
        return ConstraintExpression(value)
    raise TypeError(
        f"constraint must be a ConstraintExpression, a source string or None, "
        f"got {type(value).__name__}")
