"""Common infrastructure shared by the three NETEMBED search algorithms.

Every algorithm — ECF, RWB, LNS, and the baselines in :mod:`repro.baselines`
— exposes the same interface: :meth:`EmbeddingAlgorithm.request` consumes a
validated :class:`~repro.api.request.SearchRequest` and returns an
:class:`~repro.core.result.EmbeddingResult`.  The historical keyword surface
(:meth:`EmbeddingAlgorithm.search`) survives as a thin shim that builds a
request, so existing call sites keep working; :meth:`iter_mappings` streams
embeddings lazily instead of materializing the full result list.

The :class:`SearchContext` object carries the per-search mutable state
(deadline, statistics, the embeddings discovered so far, time-to-first
bookkeeping) so the algorithm implementations stay small and uniform, and so
every algorithm classifies its outcome (complete / partial / inconclusive)
with exactly the same rules.
"""

from __future__ import annotations

import abc
import queue as queue_module
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.api.request import Budget, ConstraintLike, SearchRequest
from repro.constraints import ConstraintExpression, edge_context
from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult, ResultStatus, SearchStats, classify
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, Network, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Deadline, Stopwatch, TimeoutExpired


class StreamClosed(Exception):
    """Internal control-flow signal: the consumer of a lazy mapping stream
    went away, so the producing search should unwind immediately."""


def placed_neighbor_plan(query: QueryNetwork, order: List[NodeId]
                         ) -> List[Tuple[NodeId, ...]]:
    """Per-depth tuple of ``order[d]``'s neighbours placed at earlier depths.

    ECF and RWB place query nodes strictly in *order*, so the set of placed
    neighbours at depth ``d`` is a function of the order alone; hoisting it
    out of the search loop (one adjacency scan per node, total) replaces the
    per-expansion ``query.neighbors(...)`` + membership filtering the
    recursive implementations paid at every step.
    """
    seen: set = set()
    plan: List[Tuple[NodeId, ...]] = []
    for node in order:
        plan.append(tuple(neighbor for neighbor in query.neighbors(node)
                          if neighbor in seen))
        seen.add(node)
    return plan


@dataclass
class SearchContext:
    """Mutable per-search state shared between an algorithm and its helpers."""

    query: QueryNetwork
    hosting: Network
    constraint: ConstraintExpression
    node_constraint: Optional[ConstraintExpression]
    deadline: Deadline
    max_results: Optional[int]
    stats: SearchStats = field(default_factory=SearchStats)
    mappings: List[Mapping] = field(default_factory=list)
    time_to_first: Optional[float] = None
    #: Observer invoked with each feasible Mapping as it is recorded; used by
    #: the streaming entry point.  It may raise to abort the search.
    on_mapping: Optional[Callable[[Mapping], None]] = None
    #: When set, the next deadline check raises StreamClosed, aborting the
    #: search promptly even in barren regions that record no mappings.
    cancel: Optional[threading.Event] = None
    _stopwatch: Stopwatch = field(default_factory=Stopwatch)

    def __post_init__(self) -> None:
        self._stopwatch.start()

    # -- bookkeeping ------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        """Seconds since the search started."""
        return self._stopwatch.elapsed

    def check_deadline(self) -> None:
        """Raise :class:`TimeoutExpired` if the search budget is exhausted."""
        if self.cancel is not None and self.cancel.is_set():
            raise StreamClosed()
        self.deadline.check()

    def record_mapping(self, assignment: Dict[NodeId, NodeId]) -> bool:
        """Record a feasible embedding.

        Returns ``True`` when the search should stop because the result cap
        has been reached.
        """
        mapping = Mapping(assignment)
        self.mappings.append(mapping)
        if self.time_to_first is None:
            self.time_to_first = self.elapsed
        if self.on_mapping is not None:
            self.on_mapping(mapping)
        return self.max_results is not None and len(self.mappings) >= self.max_results

    @property
    def reached_cap(self) -> bool:
        """Whether the result cap has been reached."""
        return self.max_results is not None and len(self.mappings) >= self.max_results

    # -- compatibility checks used by the on-the-fly (LNS) search ---------- #

    def hosting_orientation(self, r_source: NodeId, r_target: NodeId) -> Optional[Edge]:
        """The hosting edge orientation covering ``r_source -> r_target``, or ``None``."""
        hosting = self.hosting
        if hosting.has_edge(r_source, r_target):
            return (r_source, r_target)
        if not hosting.directed and hosting.has_edge(r_target, r_source):
            return (r_source, r_target)
        return None

    def edge_pair_matches(self, query_edge: Edge, hosting_edge: Edge) -> bool:
        """Whether the constraint accepts mapping *query_edge* onto *hosting_edge*.

        The hosting edge must already be known to exist (in the given
        orientation for directed hosting networks).
        """
        if self.constraint.is_trivial:
            return True
        self.stats.constraint_evaluations += 1
        return self.constraint.evaluate(
            edge_context(self.query, query_edge, self.hosting, hosting_edge))

    def query_edge_supported(self, q_source: NodeId, q_target: NodeId,
                             r_source: NodeId, r_target: NodeId) -> bool:
        """Topology + constraint check for a single query edge under a partial mapping."""
        oriented = self.hosting_orientation(r_source, r_target)
        if oriented is None:
            return False
        return self.edge_pair_matches((q_source, q_target), oriented)


class EmbeddingAlgorithm(abc.ABC):
    """Base class for all embedding search algorithms.

    Subclasses implement :meth:`_run`, which performs the actual search and
    returns whether the search space was exhausted.  The base class handles
    the timeout, statistics and result classification so all algorithms
    behave identically at the interface level; argument validation lives in
    :class:`~repro.api.request.SearchRequest`.
    """

    #: Human-readable algorithm name used in results and experiment reports.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Primary entry point: the request/response model
    # ------------------------------------------------------------------ #

    def request(self, request: SearchRequest,
                on_mapping: Optional[Callable[[Mapping], None]] = None,
                cancel: Optional[threading.Event] = None) -> EmbeddingResult:
        """Search for feasible embeddings described by *request*.

        Parameters
        ----------
        request:
            The validated request object (query, hosting, constraints,
            budget).
        on_mapping:
            Optional observer called with each embedding as it is found;
            this is how :meth:`iter_mappings` streams results.
        cancel:
            Optional event aborting the search (via :class:`StreamClosed`)
            at its next deadline check; set by a departing stream consumer.

        Returns
        -------
        EmbeddingResult
        """
        if not isinstance(request, SearchRequest):
            raise TypeError(
                f"expected a SearchRequest, got {type(request).__name__}; "
                f"use search(...) for the keyword-argument surface")

        context = SearchContext(
            query=request.query,
            hosting=request.hosting,
            constraint=request.constraint,
            node_constraint=request.node_constraint,
            deadline=Deadline(request.budget.timeout),
            max_results=self._effective_max_results(request.budget.max_results),
            on_mapping=on_mapping,
            cancel=cancel,
        )

        # Empty queries embed trivially with the empty mapping.
        if request.query.num_nodes == 0:
            context.record_mapping({})
            return self._finalise(context, exhausted=True, timed_out=False)

        # Cheap necessary-condition screen: a query that cannot embed for
        # structural reasons is reported as a completed, empty search.
        if request.query.is_obviously_infeasible(request.hosting):
            return self._finalise(context, exhausted=True, timed_out=False)

        timed_out = False
        try:
            exhausted = self._run(context)
        except TimeoutExpired:
            exhausted = False
            timed_out = True
        return self._finalise(context, exhausted=exhausted, timed_out=timed_out)

    # ------------------------------------------------------------------ #
    # Legacy keyword surface (thin shims over request())
    # ------------------------------------------------------------------ #

    def search(self, query: QueryNetwork, hosting: Network,
               constraint: ConstraintLike = None,
               node_constraint: ConstraintLike = None,
               timeout: Optional[float] = None,
               max_results: Optional[int] = None) -> EmbeddingResult:
        """Search for feasible embeddings of *query* into *hosting*.

        Equivalent to ``self.request(SearchRequest.build(...))``; kept so the
        pre-request call sites (examples, benchmarks, experiments) continue
        to work unchanged.

        Parameters
        ----------
        query:
            The virtual network to embed.
        hosting:
            The real infrastructure to embed into.
        constraint:
            Edge constraint expression; ``None`` means "topology only".
            A plain string is accepted and parsed.
        node_constraint:
            Optional node-level constraint expression over ``vNode``/``rNode``.
        timeout:
            Wall-clock budget in seconds (``None`` = unlimited).
        max_results:
            Stop after this many embeddings (``None`` = find all that the
            algorithm is designed to find; RWB always stops at one).

        Returns
        -------
        EmbeddingResult
        """
        return self.request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout,
            max_results=max_results))

    def find_first(self, query: QueryNetwork, hosting: Network,
                   constraint: ConstraintLike = None,
                   node_constraint: ConstraintLike = None,
                   timeout: Optional[float] = None) -> EmbeddingResult:
        """Convenience wrapper: stop at the first feasible embedding."""
        return self.request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint,
            budget=Budget.first_match(timeout)))

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def iter_mappings(self, query: QueryNetwork, hosting: Network,
                      constraint: ConstraintLike = None,
                      node_constraint: ConstraintLike = None,
                      timeout: Optional[float] = None,
                      max_results: Optional[int] = None,
                      buffer_size: int = 1) -> Iterator[Mapping]:
        """Yield feasible embeddings lazily, as the search discovers them.

        The search runs in a background thread with a bounded hand-off queue
        (*buffer_size* mappings of backpressure), so the producer pauses when
        the consumer is slow and aborts when the generator is closed — the
        caller never pays for embeddings it does not consume.  Exceptions
        raised by the search (including constraint-evaluation errors)
        re-raise in the consuming thread when the stream is drained.
        """
        request = SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout,
            max_results=max_results)
        return self.stream(request, buffer_size=buffer_size)

    def stream(self, request: SearchRequest, buffer_size: int = 1
               ) -> Iterator[Mapping]:
        """Generator form of :meth:`request`: lazily yields each Mapping."""
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        return self._stream(request, buffer_size)

    def _stream(self, request: SearchRequest, buffer_size: int
                ) -> Iterator[Mapping]:
        handoff: queue_module.Queue = queue_module.Queue(maxsize=buffer_size)
        closed = threading.Event()
        sentinel = object()
        failure: List[BaseException] = []

        def push(item) -> None:
            # Bounded blocking put that notices a departed consumer.
            while True:
                if closed.is_set():
                    raise StreamClosed()
                try:
                    handoff.put(item, timeout=0.05)
                    return
                except queue_module.Full:
                    continue

        def worker() -> None:
            try:
                self.request(request, on_mapping=push, cancel=closed)
            except StreamClosed:
                pass
            except BaseException as exc:   # re-raised on the consumer side
                failure.append(exc)
            finally:
                try:
                    push(sentinel)
                except StreamClosed:
                    pass

        thread = threading.Thread(
            target=worker, name=f"{self.name}-stream", daemon=True)
        thread.start()
        try:
            while True:
                item = handoff.get()
                if item is sentinel:
                    break
                yield item
        finally:
            closed.set()
            # Unblock a producer stuck on a full queue, then reap the thread.
            while thread.is_alive():
                try:
                    handoff.get_nowait()
                except queue_module.Empty:
                    pass
                thread.join(timeout=0.05)
        if failure:
            raise failure[0]

    # ------------------------------------------------------------------ #

    def _effective_max_results(self, requested: Optional[int]) -> Optional[int]:
        """Hook letting algorithms impose their own cap (RWB caps at one)."""
        return requested

    @abc.abstractmethod
    def _run(self, context: SearchContext) -> bool:
        """Perform the search, populating ``context.mappings``.

        Returns
        -------
        bool
            ``True`` if the search space was exhaustively explored (so the
            result set is provably complete), ``False`` if the search stopped
            early (result cap).  Deadline expiry is signalled by letting
            :class:`TimeoutExpired` propagate.
        """

    def _finalise(self, context: SearchContext, exhausted: bool, timed_out: bool
                  ) -> EmbeddingResult:
        truncated = context.reached_cap and not exhausted
        status = classify(found_any=bool(context.mappings), exhausted=exhausted,
                          timed_out=timed_out, truncated=truncated)
        return EmbeddingResult(
            status=status,
            mappings=list(context.mappings),
            algorithm=self.name,
            elapsed_seconds=context.elapsed,
            time_to_first_seconds=context.time_to_first,
            timed_out=timed_out,
            truncated=truncated,
            stats=context.stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
