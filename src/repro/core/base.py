"""Common infrastructure shared by the three NETEMBED search algorithms.

Every algorithm — ECF, RWB, LNS, and the baselines in :mod:`repro.baselines`
— exposes the same interface: :meth:`EmbeddingAlgorithm.request` consumes a
validated :class:`~repro.api.request.SearchRequest` and returns an
:class:`~repro.core.result.EmbeddingResult`, and
:meth:`EmbeddingAlgorithm.prepare` compiles the same request into a reusable
:class:`~repro.core.plan.EmbeddingPlan` whose
:meth:`~repro.core.plan.EmbeddingPlan.execute` amortises the compile stage
across repeated runs.  ``request()`` is itself a thin prepare-and-execute
under one deadline.  The historical keyword surface
(:meth:`EmbeddingAlgorithm.search`) survives as a deprecated shim that builds
a request, so existing call sites keep working; :meth:`iter_mappings` streams
embeddings lazily instead of materializing the full result list.

The :class:`SearchContext` object carries the per-search mutable state
(deadline, statistics, the embeddings discovered so far, time-to-first
bookkeeping) so the algorithm implementations stay small and uniform, and so
every algorithm classifies its outcome (complete / partial / inconclusive)
with exactly the same rules.
"""

from __future__ import annotations

import abc
import queue as queue_module
import random
import threading
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.api.request import Budget, ConstraintLike, SearchRequest
from repro.constraints import ConstraintExpression, edge_context
from repro.core.mapping import Mapping
from repro.core.plan import EmbeddingPlan, PreparedSearch
from repro.core.result import EmbeddingResult, SearchStats, classify
from repro.graphs.network import Edge, Network, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.rng import as_rng
from repro.utils.timing import Deadline, Stopwatch, TimeoutExpired


class StreamClosed(Exception):
    """Internal control-flow signal: the consumer of a lazy mapping stream
    went away, so the producing search should unwind immediately."""


def pump_mapping_stream(run: Callable, name: str, buffer_size: int
                        ) -> Iterator[Mapping]:
    """Turn a callback-style search into a lazy, backpressured generator.

    *run* is invoked as ``run(push, closed)`` on a background thread — it must
    call ``push(mapping)`` for every embedding and honour *closed* (a
    :class:`threading.Event`) as a cancellation signal, which is exactly the
    ``on_mapping``/``cancel`` contract of :meth:`EmbeddingAlgorithm.request`
    and :meth:`EmbeddingPlan.execute`.  The hand-off queue holds at most
    *buffer_size* mappings, so the producer pauses when the consumer is slow
    and aborts when the generator is closed; exceptions raised by the search
    re-raise in the consuming thread when the stream is drained.
    """
    handoff: queue_module.Queue = queue_module.Queue(maxsize=buffer_size)
    closed = threading.Event()
    sentinel = object()
    failure: List[BaseException] = []

    def push(item) -> None:
        # Bounded blocking put that notices a departed consumer.
        while True:
            if closed.is_set():
                raise StreamClosed()
            try:
                handoff.put(item, timeout=0.05)
                return
            except queue_module.Full:
                continue

    def worker() -> None:
        try:
            run(push, closed)
        except StreamClosed:
            pass
        except BaseException as exc:   # re-raised on the consumer side
            failure.append(exc)
        finally:
            try:
                push(sentinel)
            except StreamClosed:
                pass

    thread = threading.Thread(target=worker, name=name, daemon=True)
    thread.start()
    try:
        while True:
            item = handoff.get()
            if item is sentinel:
                break
            yield item
    finally:
        closed.set()
        # Unblock a producer stuck on a full queue, then reap the thread.
        while thread.is_alive():
            try:
                handoff.get_nowait()
            except queue_module.Empty:
                pass
            thread.join(timeout=0.05)
    if failure:
        raise failure[0]


def placed_neighbor_plan(query: QueryNetwork, order: List[NodeId]
                         ) -> List[Tuple[NodeId, ...]]:
    """Per-depth tuple of ``order[d]``'s neighbours placed at earlier depths.

    ECF and RWB place query nodes strictly in *order*, so the set of placed
    neighbours at depth ``d`` is a function of the order alone; hoisting it
    out of the search loop (one adjacency scan per node, total) replaces the
    per-expansion ``query.neighbors(...)`` + membership filtering the
    recursive implementations paid at every step.
    """
    seen: set = set()
    plan: List[Tuple[NodeId, ...]] = []
    for node in order:
        plan.append(tuple(neighbor for neighbor in query.neighbors(node)
                          if neighbor in seen))
        seen.add(node)
    return plan


@dataclass
class SearchContext:
    """Mutable per-search state shared between an algorithm and its helpers."""

    query: QueryNetwork
    hosting: Network
    constraint: ConstraintExpression
    node_constraint: Optional[ConstraintExpression]
    deadline: Deadline
    max_results: Optional[int]
    stats: SearchStats = field(default_factory=SearchStats)
    mappings: List[Mapping] = field(default_factory=list)
    time_to_first: Optional[float] = None
    #: Observer invoked with each feasible Mapping as it is recorded; used by
    #: the streaming entry point.  It may raise to abort the search.
    on_mapping: Optional[Callable[[Mapping], None]] = None
    #: When set, the next deadline check raises StreamClosed, aborting the
    #: search promptly even in barren regions that record no mappings.
    cancel: Optional[threading.Event] = None
    #: Per-run randomness override.  A cached :class:`EmbeddingPlan` is shared
    #: across requests that may each carry their own seed; seedable algorithms
    #: (RWB) consult this before falling back to their construction-time
    #: source.  ``None`` for deterministic algorithms and direct requests.
    rng: Optional[random.Random] = None
    _stopwatch: Stopwatch = field(default_factory=Stopwatch)

    def __post_init__(self) -> None:
        self._stopwatch.start()

    # -- bookkeeping ------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        """Seconds since the search started."""
        return self._stopwatch.elapsed

    def check_deadline(self) -> None:
        """Raise :class:`TimeoutExpired` if the search budget is exhausted."""
        if self.cancel is not None and self.cancel.is_set():
            raise StreamClosed()
        self.deadline.check()

    def record_mapping(self, assignment: Dict[NodeId, NodeId]) -> bool:
        """Record a feasible embedding.

        Returns ``True`` when the search should stop because the result cap
        has been reached.
        """
        mapping = Mapping(assignment)
        self.mappings.append(mapping)
        if self.time_to_first is None:
            self.time_to_first = self.elapsed
        if self.on_mapping is not None:
            self.on_mapping(mapping)
        return self.max_results is not None and len(self.mappings) >= self.max_results

    @property
    def reached_cap(self) -> bool:
        """Whether the result cap has been reached."""
        return self.max_results is not None and len(self.mappings) >= self.max_results

    # -- compatibility checks used by the on-the-fly (LNS) search ---------- #

    def hosting_orientation(self, r_source: NodeId, r_target: NodeId) -> Optional[Edge]:
        """The hosting edge orientation covering ``r_source -> r_target``, or ``None``."""
        hosting = self.hosting
        if hosting.has_edge(r_source, r_target):
            return (r_source, r_target)
        if not hosting.directed and hosting.has_edge(r_target, r_source):
            return (r_source, r_target)
        return None

    def edge_pair_matches(self, query_edge: Edge, hosting_edge: Edge) -> bool:
        """Whether the constraint accepts mapping *query_edge* onto *hosting_edge*.

        The hosting edge must already be known to exist (in the given
        orientation for directed hosting networks).
        """
        if self.constraint.is_trivial:
            return True
        self.stats.constraint_evaluations += 1
        return self.constraint.evaluate(
            edge_context(self.query, query_edge, self.hosting, hosting_edge))

    def query_edge_supported(self, q_source: NodeId, q_target: NodeId,
                             r_source: NodeId, r_target: NodeId) -> bool:
        """Topology + constraint check for a single query edge under a partial mapping."""
        oriented = self.hosting_orientation(r_source, r_target)
        if oriented is None:
            return False
        return self.edge_pair_matches((q_source, q_target), oriented)


class EmbeddingAlgorithm(abc.ABC):
    """Base class for all embedding search algorithms.

    Subclasses implement :meth:`_run`, which performs the actual search and
    returns whether the search space was exhausted.  The base class handles
    the timeout, statistics and result classification so all algorithms
    behave identically at the interface level; argument validation lives in
    :class:`~repro.api.request.SearchRequest`.
    """

    #: Human-readable algorithm name used in results and experiment reports.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Primary entry point: the request/response model
    # ------------------------------------------------------------------ #

    #: Whether :meth:`prepare` compiles reusable artifacts for this algorithm.
    #: ``False`` means plans still work but re-run the whole search on every
    #: execute (no amortisation); the service only routes such algorithms
    #: through its plan cache when this is ``True``.
    supports_prepare: bool = False

    def request(self, request: SearchRequest,
                on_mapping: Optional[Callable[[Mapping], None]] = None,
                cancel: Optional[threading.Event] = None,
                pool=None) -> EmbeddingResult:
        """Search for feasible embeddings described by *request*.

        Equivalent to preparing a plan and executing it once, except that the
        request's timeout spans both phases (compilation happens under the
        search deadline, exactly as the one-shot engine always behaved).

        Parameters
        ----------
        request:
            The validated request object (query, hosting, constraints,
            budget).  A request carrying ``parallelism > 1`` runs its search
            stage on the sharded process-pool engine
            (:mod:`repro.core.parallel`); the mapping stream is identical to
            a serial run.
        on_mapping:
            Optional observer called with each embedding as it is found;
            this is how :meth:`iter_mappings` streams results.
        cancel:
            Optional event aborting the search (via :class:`StreamClosed`)
            at its next deadline check; set by a departing stream consumer.
        pool:
            Optional :class:`~concurrent.futures.ProcessPoolExecutor` for
            the sharded engine (``None`` = the module-wide shared pool);
            only consulted when the request asks for parallelism.

        Returns
        -------
        EmbeddingResult
        """
        self._require_request(request)
        return self._drive(request, prepared=None, budget=request.budget,
                           on_mapping=on_mapping, cancel=cancel, rng=None,
                           pool=pool)

    # ------------------------------------------------------------------ #
    # The two-phase prepare/execute API
    # ------------------------------------------------------------------ #

    def prepare(self, request: SearchRequest,
                deadline: Optional[Deadline] = None) -> EmbeddingPlan:
        """Compile *request* into a reusable :class:`EmbeddingPlan`.

        The plan captures everything that does not depend on the per-run
        budget or random stream — for ECF/RWB the node indexer, the filter
        bitmasks and the visiting order; for LNS the indexer and the
        node-candidate masks.  Preparation is by default not bounded by the
        request's timeout (it is hosting-side work meant to be amortised);
        pass *deadline* to bound the compile, in which case
        :class:`~repro.utils.timing.TimeoutExpired` may propagate.  Each
        :meth:`EmbeddingPlan.execute` gets its own full budget for the
        search.
        """
        self._require_request(request)
        stopwatch = Stopwatch().start()
        # Epochs are read BEFORE compiling: a mutation that lands mid-compile
        # then makes the plan stale instead of silently half-built.
        hosting_epoch = request.hosting.mutation_count
        query_epoch = request.query.mutation_count
        # The structural screens are epoch-stable (a stale plan refuses to
        # execute), so they run once here instead of once per execute.
        if request.query.num_nodes == 0:
            prepared = PreparedSearch(screen="empty")
        elif request.query.is_obviously_infeasible(request.hosting):
            prepared = PreparedSearch(screen="infeasible")
        else:
            prepared = self._prepare(request, deadline=deadline)
        return EmbeddingPlan(algorithm=self, request=request, prepared=prepared,
                             prepare_seconds=stopwatch.stop(),
                             hosting_epoch=hosting_epoch,
                             query_epoch=query_epoch)

    def plan_signature(self) -> Tuple:
        """A hashable digest of this instance's search-relevant configuration.

        Two instances with equal signatures compile interchangeable plans for
        the same request, which is what lets the service's plan cache share
        one plan across requests.  Subclasses with configuration knobs that
        change the prepared artifacts or the search order must extend this.
        """
        return (self.name,)

    # ------------------------------------------------------------------ #
    # Incremental plan repair (delta-aware recompiles)
    # ------------------------------------------------------------------ #

    def patch_plan(self, plan: EmbeddingPlan) -> Optional[EmbeddingPlan]:
        """Bring a stale plan up to date by replaying the mutation journal.

        Applies only when the query is unchanged and the hosting network's
        journal still covers the plan's epoch with attribute-only mutations;
        the per-algorithm :meth:`_patch_prepared` hook then patches the
        compiled artifacts in cost proportional to the delta.  Returns a new
        :class:`EmbeddingPlan` at the delta's target epoch — guaranteed to
        behave exactly like a freshly prepared plan (same masks, same
        visiting order, same mapping streams) — or ``None`` when a full
        re-prepare is required.  *plan* itself is never mutated, so
        concurrent executes of the old plan stay safe.
        """
        request = plan.request
        if plan.query_epoch != request.query.mutation_count:
            return None
        delta = request.hosting.delta_since(plan.hosting_epoch)
        if delta is None or delta.structural:
            return None
        if delta.empty:
            return plan
        stopwatch = Stopwatch().start()
        if plan.prepared.screen is not None:
            # The structural screens (empty query, obvious infeasibility)
            # depend on topology and query alone — both unchanged under an
            # attribute-only delta — and such plans hold no other artifacts.
            prepared = plan.prepared
        else:
            prepared = self._patch_prepared(request, plan.prepared, delta)
            if prepared is None:
                return None
        return EmbeddingPlan(algorithm=self, request=request,
                             prepared=prepared,
                             prepare_seconds=stopwatch.stop(),
                             hosting_epoch=delta.target_epoch,
                             query_epoch=plan.query_epoch)

    def _patch_prepared(self, request: SearchRequest, prepared: PreparedSearch,
                        delta) -> Optional[PreparedSearch]:
        """Patch compiled artifacts for an attr-only hosting delta.

        Contract: return a *new* :class:`PreparedSearch` whose artifacts are
        element-identical to what :meth:`_prepare` would compile from
        scratch on the mutated network (work statistics may differ — they
        accumulate the patch cost instead of a rebuild's), or ``None`` when
        patching does not apply.  The default declines: algorithms without
        a separable prepare stage have nothing to patch.
        """
        return None

    def _patch_filters_prepared(self, request: SearchRequest,
                                prepared: PreparedSearch, delta,
                                ordering) -> Optional[PreparedSearch]:
        """Shared ECF/RWB implementation of :meth:`_patch_prepared`.

        Patches the filter matrices row-wise, then recomputes the visiting
        order from the patched candidate counts — the order is a
        deterministic function of (query, filters), so the patched plan
        reproduces a fresh prepare's search exactly.
        """
        from repro.core.filters import patch_filters

        if prepared.filters is None:
            return None
        filters = patch_filters(prepared.filters, request.query,
                                request.hosting, request.constraint,
                                request.node_constraint, delta=delta)
        if filters is None:
            return None
        patched = PreparedSearch(
            filters=filters,
            constraint_evaluations=filters.constraint_evaluations,
            filter_entries=filters.entry_count,
            filter_build_seconds=filters.build_seconds)
        if any(not filters.node_candidate_masks.get(node)
               for node in request.query.nodes()):
            patched.infeasible = True
            return patched
        patched.order = ordering(request.query, filters)
        patched.prior = placed_neighbor_plan(request.query, patched.order)
        return patched

    def _require_request(self, request: SearchRequest) -> None:
        if not isinstance(request, SearchRequest):
            raise TypeError(
                f"expected a SearchRequest, got {type(request).__name__}; "
                f"use search(...) for the keyword-argument surface")

    def _drive(self, request: SearchRequest, prepared: Optional[PreparedSearch],
               budget: Budget, on_mapping, cancel, rng,
               parallelism: Optional[int] = None, pool=None) -> EmbeddingResult:
        """Shared execution shell behind :meth:`request` and plan executes.

        When *prepared* is ``None`` the compile stage runs here, under the
        same deadline as the search (the historical one-shot behaviour);
        otherwise the precompiled artifacts are credited to the run's
        statistics and only the tree search executes.  *parallelism* ``None``
        defers to the request's own setting; a value above one routes the
        search stage through the sharded engine when the algorithm supports
        root-candidate sharding.
        """
        context = SearchContext(
            query=request.query,
            hosting=request.hosting,
            constraint=request.constraint,
            node_constraint=request.node_constraint,
            deadline=Deadline(budget.timeout),
            max_results=self._effective_max_results(budget.max_results),
            on_mapping=on_mapping,
            cancel=cancel,
            rng=None if rng is None else as_rng(rng),
        )

        if prepared is None:
            screen = None
            if request.query.num_nodes == 0:
                screen = "empty"
            elif request.query.is_obviously_infeasible(request.hosting):
                screen = "infeasible"
        else:
            screen = prepared.screen

        # Empty queries embed trivially with the empty mapping.
        if screen == "empty":
            context.record_mapping({})
            return self._finalise(context, exhausted=True, timed_out=False)

        # Cheap necessary-condition screen: a query that cannot embed for
        # structural reasons is reported as a completed, empty search.
        if screen == "infeasible":
            return self._finalise(context, exhausted=True, timed_out=False)

        if parallelism is None:
            parallelism = request.parallelism
        timed_out = False
        try:
            if prepared is None:
                prepared = self._prepare(request, deadline=context.deadline)
            self._credit_prepared(context, prepared)
            if prepared.infeasible:
                exhausted = True
            elif (parallelism is not None and parallelism > 1
                  and self.supports_sharding):
                from repro.core.parallel import run_sharded
                exhausted = run_sharded(self, context, prepared, parallelism,
                                        pool=pool)
            else:
                exhausted = self._run_prepared(context, prepared)
        except TimeoutExpired:
            exhausted = False
            timed_out = True
        return self._finalise(context, exhausted=exhausted, timed_out=timed_out)

    @staticmethod
    def _credit_prepared(context: SearchContext, prepared: PreparedSearch) -> None:
        """Fold the prepare-stage statistics into this run's counters, so a
        planned execute reports exactly what a fresh one-shot search would."""
        context.stats.constraint_evaluations += prepared.constraint_evaluations
        context.stats.filter_entries = prepared.filter_entries
        context.stats.filter_build_seconds = prepared.filter_build_seconds

    # ------------------------------------------------------------------ #
    # Legacy keyword surface (thin shims over request())
    # ------------------------------------------------------------------ #

    def search(self, query: QueryNetwork, hosting: Network,
               constraint: ConstraintLike = None,
               node_constraint: ConstraintLike = None,
               timeout: Optional[float] = None,
               max_results: Optional[int] = None) -> EmbeddingResult:
        """Search for feasible embeddings of *query* into *hosting*.

        Equivalent to ``self.request(SearchRequest.build(...))``; kept so the
        pre-request call sites (examples, benchmarks, experiments) continue
        to work unchanged.

        Parameters
        ----------
        query:
            The virtual network to embed.
        hosting:
            The real infrastructure to embed into.
        constraint:
            Edge constraint expression; ``None`` means "topology only".
            A plain string is accepted and parsed.
        node_constraint:
            Optional node-level constraint expression over ``vNode``/``rNode``.
        timeout:
            Wall-clock budget in seconds (``None`` = unlimited).
        max_results:
            Stop after this many embeddings (``None`` = find all that the
            algorithm is designed to find; RWB always stops at one).

        Returns
        -------
        EmbeddingResult
        """
        warnings.warn(
            "EmbeddingAlgorithm.search(**kwargs) is deprecated; build a "
            "SearchRequest and call request(), or prepare() for a reusable "
            "EmbeddingPlan",
            DeprecationWarning, stacklevel=2)
        return self.request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout,
            max_results=max_results))

    def find_first(self, query: QueryNetwork, hosting: Network,
                   constraint: ConstraintLike = None,
                   node_constraint: ConstraintLike = None,
                   timeout: Optional[float] = None) -> EmbeddingResult:
        """Convenience wrapper: stop at the first feasible embedding."""
        return self.request(SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint,
            budget=Budget.first_match(timeout)))

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #

    def iter_mappings(self, query: QueryNetwork, hosting: Network,
                      constraint: ConstraintLike = None,
                      node_constraint: ConstraintLike = None,
                      timeout: Optional[float] = None,
                      max_results: Optional[int] = None,
                      buffer_size: int = 1) -> Iterator[Mapping]:
        """Yield feasible embeddings lazily, as the search discovers them.

        The search runs in a background thread with a bounded hand-off queue
        (*buffer_size* mappings of backpressure), so the producer pauses when
        the consumer is slow and aborts when the generator is closed — the
        caller never pays for embeddings it does not consume.  Exceptions
        raised by the search (including constraint-evaluation errors)
        re-raise in the consuming thread when the stream is drained.
        """
        request = SearchRequest.build(
            query, hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout,
            max_results=max_results)
        return self.stream(request, buffer_size=buffer_size)

    def stream(self, request: SearchRequest, buffer_size: int = 1,
               pool=None) -> Iterator[Mapping]:
        """Generator form of :meth:`request`: lazily yields each Mapping."""
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        return self._stream(request, buffer_size, pool)

    def _stream(self, request: SearchRequest, buffer_size: int,
                pool=None) -> Iterator[Mapping]:
        def run(push, closed):
            return self.request(request, on_mapping=push, cancel=closed,
                                pool=pool)

        return pump_mapping_stream(run, f"{self.name}-stream", buffer_size)

    # ------------------------------------------------------------------ #

    def _effective_max_results(self, requested: Optional[int]) -> Optional[int]:
        """Hook letting algorithms impose their own cap (RWB caps at one)."""
        return requested

    def _prepare(self, request: SearchRequest, deadline: Optional[Deadline] = None
                 ) -> PreparedSearch:
        """Compile the request-independent-of-budget artifacts.

        The default compiles nothing: :meth:`_run_prepared` then falls back
        to :meth:`_run`, so algorithms without a separable prepare stage (the
        baselines) keep working unchanged — their plans just re-run the whole
        search each execute.  Two-phase algorithms override this together
        with :meth:`_run_prepared`.

        *deadline* is set when compilation happens inside a one-shot
        :meth:`request` (the budget covers both phases) and ``None`` from
        :meth:`prepare` (compilation is meant to be amortised).
        """
        return PreparedSearch()

    def _run_prepared(self, context: SearchContext,
                      prepared: PreparedSearch) -> bool:
        """Run the search stage against prepared artifacts.

        Contract as :meth:`_run`; the default ignores *prepared* and
        delegates to :meth:`_run`.
        """
        return self._run(context)

    # ------------------------------------------------------------------ #
    # Root-candidate sharding (the parallel execution engine)
    # ------------------------------------------------------------------ #

    #: Whether this algorithm can split its search space into independent
    #: root-candidate shards (see :mod:`repro.core.parallel`).  Algorithms
    #: that cannot still accept ``parallelism`` in requests — they simply run
    #: serially.
    supports_sharding: bool = False

    #: Whether a shard needs the networks and constraint expressions in the
    #: worker process.  ECF/RWB bake the constraints into their filter
    #: bitmasks at prepare time and override this to ``False``, which keeps
    #: the pickled payload down to the compiled artifacts.
    _shard_ships_networks: bool = True

    def _shard_specs(self, context: SearchContext, prepared: PreparedSearch,
                     shards: int) -> Optional[List]:
        """Split the search space into at most *shards* picklable specs.

        The specs must be contiguous slices of the exact order in which
        :meth:`_run_prepared` would explore the space (root candidates, or
        deeper assignment prefixes), so that executing them in list order
        reproduces the serial mapping stream.  Implementations that consume
        the run's random stream here (RWB) must consume it exactly as the
        serial path does.  ``None`` means "not shardable for this plan";
        the engine then falls back to :meth:`_run_prepared`.

        **Statistics convention**: work shared by every shard — the root (or
        prefix-tree) expansions performed while splitting — is counted here,
        once, into the parent's ``context.stats``, exactly as a serial run
        counts it; :meth:`_run_shard` then counts only its shard-exclusive
        subtree work.  The merged counters of a full enumeration are thereby
        identical to serial.  An empty list is a valid split: it means the
        split itself already explored (and fully accounted) the space.
        """
        return None

    def _run_shard(self, context: SearchContext, prepared: PreparedSearch,
                   spec) -> bool:
        """Run the search restricted to one shard's slice of the space.

        Contract as :meth:`_run_prepared`; statistics cover only this
        shard's own subtree work (see :meth:`_shard_specs`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares supports_sharding but does not "
            f"implement _run_shard()")

    def _run(self, context: SearchContext) -> bool:
        """Perform the search, populating ``context.mappings``.

        Subclasses implement either this method or the
        :meth:`_prepare`/:meth:`_run_prepared` pair (in which case ``_run``
        is never called).

        Returns
        -------
        bool
            ``True`` if the search space was exhaustively explored (so the
            result set is provably complete), ``False`` if the search stopped
            early (result cap).  Deadline expiry is signalled by letting
            :class:`TimeoutExpired` propagate.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement _run() or override "
            f"_prepare()/_run_prepared()")

    def _finalise(self, context: SearchContext, exhausted: bool, timed_out: bool
                  ) -> EmbeddingResult:
        truncated = context.reached_cap and not exhausted
        status = classify(found_any=bool(context.mappings), exhausted=exhausted,
                          timed_out=timed_out, truncated=truncated)
        return EmbeddingResult(
            status=status,
            mappings=list(context.mappings),
            algorithm=self.name,
            elapsed_seconds=context.elapsed,
            time_to_first_seconds=context.time_to_first,
            timed_out=timed_out,
            truncated=truncated,
            stats=context.stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self.name})>"
