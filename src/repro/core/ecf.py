"""ECF — Exhaustive Search with Constraint Filtering (paper §V-A, Fig. 4).

ECF finds *every* feasible embedding.  It works in two stages:

1. **Filter construction.**  The constraint expression is evaluated for every
   (query edge, hosting edge) pair and the results are stored in the sparse
   filter matrices ``F`` / ``F̄`` (:mod:`repro.core.filters`).

2. **Ordered depth-first search.**  Query nodes are visited in ascending
   order of their candidate counts (Lemma 1), so the branching near the root
   of the permutations tree is as small as possible.  At each depth the
   candidate set for the next query node is the intersection of the filter
   cells indexed by its already-placed neighbours, minus hosting nodes already
   in use (expression (2)); a branch is pruned the moment that set becomes
   empty.  Every leaf reached at depth ``N_Q`` is a feasible embedding.

The search runs on the bitmask candidate engine: candidate sets are integer
masks over the dense hosting-node index, intersected with ``&`` and pruned of
consumed hosts with ``& ~used_mask``, and the depth-first expansion is an
explicit-stack loop (one Python frame total) instead of one interpreter frame
per query node.  Candidates are tried in ascending bit order, which is the
``sorted(key=str)`` order of the original set-based engine, so the mapping
stream is unchanged.

Because the search only prunes branches that provably contain no feasible
completion, ECF is complete (it finds every embedding, given enough time) and
correct (everything it reports is feasible).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import Capability, register_algorithm
from repro.api.request import SearchRequest
from repro.core.base import EmbeddingAlgorithm, SearchContext, placed_neighbor_plan
from repro.core.filters import FilterMatrices, build_filters
from repro.core.ordering import ORDERINGS
from repro.core.plan import PreparedSearch
from repro.graphs.network import NodeId
from repro.utils.timing import Deadline


@register_algorithm(
    "ECF",
    capabilities=[
        Capability.COMPLETE_ENUMERATION,
        Capability.DETERMINISTIC,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
    ],
    summary="Exhaustive search with constraint filtering (all embeddings).",
    tags=["core"],
)
class ECF(EmbeddingAlgorithm):
    """Exhaustive Search with Constraint Filtering.

    Parameters
    ----------
    ordering:
        Which query-node ordering to use: ``"connectivity"`` (default —
        Lemma 1's ascending candidate counts refined to keep the visited
        prefix connected, so expression (2) always has placed neighbours to
        intersect), ``"candidate-count"`` (plain Lemma 1) or ``"natural"``
        (no heuristic; used by the ordering ablation).
    record_non_matches:
        Whether to populate the non-match filter ``F̄`` alongside ``F``.
        Candidate computation only needs ``F``; the flag exists to measure
        the memory/time cost of the second filter (§V-C discussion).
    """

    name = "ECF"
    supports_prepare = True

    def __init__(self, ordering: str = "connectivity",
                 record_non_matches: bool = True) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}")
        self._ordering_name = ordering
        self._ordering = ORDERINGS[ordering]
        self._record_non_matches = bool(record_non_matches)

    @property
    def ordering(self) -> str:
        """Name of the node-ordering heuristic in use."""
        return self._ordering_name

    def plan_signature(self):
        return (self.name, self._ordering_name, self._record_non_matches)

    # ------------------------------------------------------------------ #

    def _prepare(self, request: SearchRequest,
                 deadline: Optional[Deadline] = None) -> PreparedSearch:
        """Stage 1: compile the filter matrices and the visiting order."""
        filters = build_filters(request.query, request.hosting,
                                request.constraint, request.node_constraint,
                                record_non_matches=self._record_non_matches,
                                deadline=deadline)
        prepared = PreparedSearch(
            filters=filters,
            constraint_evaluations=filters.constraint_evaluations,
            filter_entries=filters.entry_count,
            filter_build_seconds=filters.build_seconds)

        # If any query node has no candidate at all the query is infeasible
        # and every (empty) search against this plan is complete.
        if any(not filters.node_candidate_masks.get(node)
               for node in request.query.nodes()):
            prepared.infeasible = True
            return prepared

        prepared.order = self._ordering(request.query, filters)
        prepared.prior = placed_neighbor_plan(request.query, prepared.order)
        return prepared

    def _run_prepared(self, context: SearchContext,
                      prepared: PreparedSearch) -> bool:
        return self._search(context, prepared.filters, prepared.order,
                            prepared.prior)

    def _search(self, context: SearchContext, filters: FilterMatrices,
                order: List[NodeId],
                prior: Sequence[Tuple[NodeId, ...]]) -> bool:
        """Explicit-stack depth-first expansion over bitmask candidates.

        Returns ``False`` iff the search stopped early (result cap).  Per
        depth the loop keeps the not-yet-tried candidate mask and the bit of
        the host currently placed there; taking the lowest set bit first
        reproduces the canonical ``sorted(key=str)`` trial order.
        """
        indexer = filters.host_indexer
        node_at = indexer.node_at
        match_masks = filters.match_masks
        node_masks = filters.node_candidate_masks
        stats = context.stats
        check_deadline = context.check_deadline
        record_mapping = context.record_mapping

        n = len(order)
        assignment: Dict[NodeId, NodeId] = {}
        used_mask = 0
        remaining = [0] * n    # untried candidate bits per depth
        placed_bit = [0] * n   # bit of the host currently placed per depth

        def candidates_mask(depth: int) -> int:
            # Expression (2) over the neighbours placed at earlier depths
            # (expression (1) when there are none), minus used hosts.
            neighbors = prior[depth]
            if not neighbors:
                mask = node_masks.get(order[depth], 0)
            else:
                node = order[depth]
                mask = -1
                for neighbor in neighbors:
                    mask &= match_masks.get((neighbor, assignment[neighbor], node), 0)
                    if not mask:
                        return 0
            return mask & ~used_mask

        mask = candidates_mask(0)
        stats.nodes_expanded += 1
        stats.candidates_considered += mask.bit_count()
        if not mask:
            stats.backtracks += 1
            return True
        remaining[0] = mask

        depth = 0
        while depth >= 0:
            check_deadline()
            mask = remaining[depth]
            if not mask:
                # Depth exhausted: undo its placement (if any) and backtrack.
                bit = placed_bit[depth]
                if bit:
                    used_mask ^= bit
                    del assignment[order[depth]]
                    placed_bit[depth] = 0
                depth -= 1
                continue
            low = mask & -mask
            remaining[depth] = mask ^ low
            prev = placed_bit[depth]
            if prev:
                used_mask ^= prev
            placed_bit[depth] = low
            used_mask |= low
            assignment[order[depth]] = node_at(low.bit_length() - 1)
            if depth + 1 == n:
                # A full-depth leaf is a feasible embedding (Fig. 4: "report
                # mapping defined by branch from node to root").
                if record_mapping(dict(assignment)):
                    return False
                continue
            depth += 1
            child = candidates_mask(depth)
            stats.nodes_expanded += 1
            stats.candidates_considered += child.bit_count()
            remaining[depth] = child
            placed_bit[depth] = 0
            if not child:
                stats.backtracks += 1
        return True
