"""ECF — Exhaustive Search with Constraint Filtering (paper §V-A, Fig. 4).

ECF finds *every* feasible embedding.  It works in two stages:

1. **Filter construction.**  The constraint expression is evaluated for every
   (query edge, hosting edge) pair and the results are stored in the sparse
   filter matrices ``F`` / ``F̄`` (:mod:`repro.core.filters`).

2. **Ordered depth-first search.**  Query nodes are visited in ascending
   order of their candidate counts (Lemma 1), so the branching near the root
   of the permutations tree is as small as possible.  At each depth the
   candidate set for the next query node is the intersection of the filter
   cells indexed by its already-placed neighbours, minus hosting nodes already
   in use (expression (2)); a branch is pruned the moment that set becomes
   empty.  Every leaf reached at depth ``N_Q`` is a feasible embedding.

Because the search only prunes branches that provably contain no feasible
completion, ECF is complete (it finds every embedding, given enough time) and
correct (everything it reports is feasible).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.api.registry import Capability, register_algorithm
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.core.filters import FilterMatrices, build_filters
from repro.core.ordering import ORDERINGS, candidate_count_order
from repro.graphs.network import NodeId


@register_algorithm(
    "ECF",
    capabilities=[
        Capability.COMPLETE_ENUMERATION,
        Capability.DETERMINISTIC,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
    ],
    summary="Exhaustive search with constraint filtering (all embeddings).",
    tags=["core"],
)
class ECF(EmbeddingAlgorithm):
    """Exhaustive Search with Constraint Filtering.

    Parameters
    ----------
    ordering:
        Which query-node ordering to use: ``"connectivity"`` (default —
        Lemma 1's ascending candidate counts refined to keep the visited
        prefix connected, so expression (2) always has placed neighbours to
        intersect), ``"candidate-count"`` (plain Lemma 1) or ``"natural"``
        (no heuristic; used by the ordering ablation).
    record_non_matches:
        Whether to populate the non-match filter ``F̄`` alongside ``F``.
        Candidate computation only needs ``F``; the flag exists to measure
        the memory/time cost of the second filter (§V-C discussion).
    """

    name = "ECF"

    def __init__(self, ordering: str = "connectivity",
                 record_non_matches: bool = True) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}")
        self._ordering_name = ordering
        self._ordering = ORDERINGS[ordering]
        self._record_non_matches = bool(record_non_matches)

    @property
    def ordering(self) -> str:
        """Name of the node-ordering heuristic in use."""
        return self._ordering_name

    # ------------------------------------------------------------------ #

    def _run(self, context: SearchContext) -> bool:
        filters = build_filters(context.query, context.hosting, context.constraint,
                                context.node_constraint,
                                record_non_matches=self._record_non_matches,
                                deadline=context.deadline)
        context.stats.constraint_evaluations += filters.constraint_evaluations
        context.stats.filter_entries = filters.entry_count
        context.stats.filter_build_seconds = filters.build_seconds

        # If any query node has no candidate at all the query is infeasible
        # and the (empty) search is complete.
        if any(not filters.node_candidates.get(node)
               for node in context.query.nodes()):
            return True

        order = self._ordering(context.query, filters)
        assignment: Dict[NodeId, NodeId] = {}
        used: Set[NodeId] = set()
        return self._descend(context, filters, order, 0, assignment, used)

    def _descend(self, context: SearchContext, filters: FilterMatrices,
                 order: List[NodeId], depth: int,
                 assignment: Dict[NodeId, NodeId], used: Set[NodeId]) -> bool:
        """Depth-first expansion.  Returns ``False`` iff the search stopped early."""
        context.check_deadline()

        if depth == len(order):
            # A full-depth leaf is a feasible embedding (Fig. 4: "report
            # mapping defined by branch from node to root").
            stop = context.record_mapping(dict(assignment))
            return not stop

        node = order[depth]
        placed_neighbors = [(neighbor, assignment[neighbor])
                            for neighbor in context.query.neighbors(node)
                            if neighbor in assignment]
        candidates = filters.candidates_given(node, placed_neighbors, used)

        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += len(candidates)

        if not candidates:
            context.stats.backtracks += 1
            return True

        for host in sorted(candidates, key=str):
            assignment[node] = host
            used.add(host)
            keep_going = self._descend(context, filters, order, depth + 1,
                                       assignment, used)
            del assignment[node]
            used.discard(host)
            if not keep_going:
                return False
        return True
