"""ECF — Exhaustive Search with Constraint Filtering (paper §V-A, Fig. 4).

ECF finds *every* feasible embedding.  It works in two stages:

1. **Filter construction.**  The constraint expression is evaluated for every
   (query edge, hosting edge) pair and the results are stored in the sparse
   filter matrices ``F`` / ``F̄`` (:mod:`repro.core.filters`).

2. **Ordered depth-first search.**  Query nodes are visited in ascending
   order of their candidate counts (Lemma 1), so the branching near the root
   of the permutations tree is as small as possible.  At each depth the
   candidate set for the next query node is the intersection of the filter
   cells indexed by its already-placed neighbours, minus hosting nodes already
   in use (expression (2)); a branch is pruned the moment that set becomes
   empty.  Every leaf reached at depth ``N_Q`` is a feasible embedding.

The search runs on the bitmask candidate engine: candidate sets are integer
masks over the dense hosting-node index, intersected with ``&`` and pruned of
consumed hosts with ``& ~used_mask``, and the depth-first expansion is an
explicit-stack loop (one Python frame total) instead of one interpreter frame
per query node.  Candidates are tried in ascending bit order, which is the
``sorted(key=str)`` order of the original set-based engine, so the mapping
stream is unchanged.

Because the search only prunes branches that provably contain no feasible
completion, ECF is complete (it finds every embedding, given enough time) and
correct (everything it reports is feasible).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import Capability, register_algorithm
from repro.api.request import SearchRequest
from repro.core import kernel
from repro.core.base import EmbeddingAlgorithm, SearchContext, placed_neighbor_plan
from repro.core.filters import FilterMatrices, build_filters
from repro.core.ordering import ORDERINGS
from repro.core.plan import PreparedSearch
from repro.graphs.network import NodeId
from repro.utils.timing import Deadline


@register_algorithm(
    "ECF",
    capabilities=[
        Capability.COMPLETE_ENUMERATION,
        Capability.DETERMINISTIC,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
    ],
    summary="Exhaustive search with constraint filtering (all embeddings).",
    tags=["core"],
)
class ECF(EmbeddingAlgorithm):
    """Exhaustive Search with Constraint Filtering.

    Parameters
    ----------
    ordering:
        Which query-node ordering to use: ``"connectivity"`` (default —
        Lemma 1's ascending candidate counts refined to keep the visited
        prefix connected, so expression (2) always has placed neighbours to
        intersect), ``"candidate-count"`` (plain Lemma 1) or ``"natural"``
        (no heuristic; used by the ordering ablation).
    record_non_matches:
        Whether to populate the non-match filter ``F̄`` alongside ``F``.
        Candidate computation only needs ``F``; the flag exists to measure
        the memory/time cost of the second filter (§V-C discussion).
    """

    name = "ECF"
    supports_prepare = True
    supports_sharding = True
    #: Constraints are baked into the filter bitmasks at prepare time; a
    #: shard needs nothing beyond the compiled artifacts.
    _shard_ships_networks = False

    def __init__(self, ordering: str = "connectivity",
                 record_non_matches: bool = True) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}")
        self._ordering_name = ordering
        self._ordering = ORDERINGS[ordering]
        self._record_non_matches = bool(record_non_matches)

    @property
    def ordering(self) -> str:
        """Name of the node-ordering heuristic in use."""
        return self._ordering_name

    def plan_signature(self):
        return (self.name, self._ordering_name, self._record_non_matches)

    # ------------------------------------------------------------------ #

    def _prepare(self, request: SearchRequest,
                 deadline: Optional[Deadline] = None) -> PreparedSearch:
        """Stage 1: compile the filter matrices and the visiting order."""
        filters = build_filters(request.query, request.hosting,
                                request.constraint, request.node_constraint,
                                record_non_matches=self._record_non_matches,
                                deadline=deadline)
        prepared = PreparedSearch(
            filters=filters,
            constraint_evaluations=filters.constraint_evaluations,
            filter_entries=filters.entry_count,
            filter_build_seconds=filters.build_seconds)

        # If any query node has no candidate at all the query is infeasible
        # and every (empty) search against this plan is complete.
        if any(not filters.node_candidate_masks.get(node)
               for node in request.query.nodes()):
            prepared.infeasible = True
            return prepared

        prepared.order = self._ordering(request.query, filters)
        prepared.prior = placed_neighbor_plan(request.query, prepared.order)
        return prepared

    def _patch_prepared(self, request: SearchRequest,
                        prepared: PreparedSearch, delta) -> Optional[PreparedSearch]:
        return self._patch_filters_prepared(request, prepared, delta,
                                            self._ordering)

    def _run_prepared(self, context: SearchContext,
                      prepared: PreparedSearch) -> bool:
        return self._search(context, prepared.filters, prepared.order,
                            prepared.prior)

    # -- sharding: contiguous blocks of assignment prefixes --------------- #

    def _shard_specs(self, context: SearchContext, prepared: PreparedSearch,
                     shards: int):
        """Enumerate the prefix tree breadth-first until it is wide enough.

        Lemma 1 puts the *fewest*-candidate node first, so splitting only
        the root's candidates often yields one or two shards.  Instead the
        split descends: level ``d`` holds every live assignment prefix over
        ``order[:d]`` together with its (already computed) candidate mask
        for ``order[d]``, in exactly the serial DFS order; levels expand
        until at least *shards* prefixes exist (or the next level would be
        the leaves).  Each expansion performed here is one the serial search
        performs too, and is counted into the parent's stats exactly once —
        workers then count only their own subtrees (see the statistics
        convention on :meth:`EmbeddingAlgorithm._shard_specs`).
        """
        from repro.core.parallel import split_contiguous

        filters = prepared.filters
        order = prepared.order
        prior = prepared.prior
        match_masks = filters.match_masks
        node_at = filters.host_indexer.node_at
        stats = context.stats
        n = len(order)

        context.check_deadline()
        root_mask = filters.candidates_mask_unplaced(order[0])
        stats.nodes_expanded += 1
        stats.candidates_considered += root_mask.bit_count()
        if not root_mask:
            stats.backtracks += 1
            return []

        #: (assignment over order[:depth], used_mask, candidate mask for
        #: order[depth]) — the level is kept in serial DFS order.
        depth = 0
        level: List[Tuple[Dict[NodeId, NodeId], int, int]] = [({}, 0, root_mask)]
        while len(level) < shards and depth + 1 < n:
            context.check_deadline()
            node = order[depth]
            child_node = order[depth + 1]
            child_prior = prior[depth + 1]
            next_level: List[Tuple[Dict[NodeId, NodeId], int, int]] = []
            for assignment, used_mask, mask in level:
                while mask:
                    low = mask & -mask
                    mask ^= low
                    child_assignment = dict(assignment)
                    child_assignment[node] = node_at(low.bit_length() - 1)
                    # Expression (2) for the child, as in _search.
                    if not child_prior:
                        child_mask = filters.candidates_mask_unplaced(child_node)
                    else:
                        child_mask = -1
                        for neighbor in child_prior:
                            child_mask &= match_masks.get(
                                (neighbor, child_assignment[neighbor], child_node), 0)
                            if not child_mask:
                                break
                    child_mask &= ~(used_mask | low)
                    stats.nodes_expanded += 1
                    stats.candidates_considered += child_mask.bit_count()
                    if child_mask:
                        next_level.append((child_assignment, used_mask | low,
                                           child_mask))
                    else:
                        stats.backtracks += 1
            level = next_level
            depth += 1
            if not level:
                return []   # the split explored (and counted) everything

        return [(depth, [(tuple(assignment.items()), used_mask, mask)
                         for assignment, used_mask, mask in block])
                for block in split_contiguous(level, shards)]

    def _run_shard(self, context: SearchContext, prepared: PreparedSearch,
                   spec) -> bool:
        depth, entries = spec
        for items, used_mask, mask in entries:
            keep_going = self._search(context, prepared.filters,
                                      prepared.order, prepared.prior,
                                      start_depth=depth,
                                      assignment=dict(items),
                                      used_mask=used_mask, start_mask=mask)
            if not keep_going:
                return False
        return True

    def _search(self, context: SearchContext, filters: FilterMatrices,
                order: List[NodeId],
                prior: Sequence[Tuple[NodeId, ...]],
                start_depth: int = 0,
                assignment: Optional[Dict[NodeId, NodeId]] = None,
                used_mask: int = 0,
                start_mask: Optional[int] = None) -> bool:
        """Depth-first expansion over bitmask candidates.

        Dispatches to the compiled/chunked search kernel when one is active
        (``REPRO_KERNEL``, see :mod:`repro.core.kernel`) — the kernel
        reproduces this loop's mapping stream and evaluation counters
        byte-identically — and otherwise runs the legacy explicit-stack
        loop below, which remains the parity reference.
        """
        plan = kernel.plan_for(filters, order, prior)
        if plan is not None:
            return kernel.ecf_search(context, plan, start_depth=start_depth,
                                     assignment=assignment,
                                     used_mask=used_mask,
                                     start_mask=start_mask)
        return self._search_legacy(context, filters, order, prior,
                                   start_depth, assignment, used_mask,
                                   start_mask)

    def _search_legacy(self, context: SearchContext, filters: FilterMatrices,
                       order: List[NodeId],
                       prior: Sequence[Tuple[NodeId, ...]],
                       start_depth: int = 0,
                       assignment: Optional[Dict[NodeId, NodeId]] = None,
                       used_mask: int = 0,
                       start_mask: Optional[int] = None) -> bool:
        """Explicit-stack depth-first expansion over bitmask candidates.

        Returns ``False`` iff the search stopped early (result cap).  Per
        depth the loop keeps the not-yet-tried candidate mask and the bit of
        the host currently placed there; taking the lowest set bit first
        reproduces the canonical ``sorted(key=str)`` trial order.

        A shard of the parallel engine resumes the search below an
        assignment prefix: *start_depth* / *assignment* / *used_mask*
        describe the prefix and *start_mask* is its precomputed (and
        already-counted, by :meth:`_shard_specs`) candidate mask for
        ``order[start_depth]``; backtracking bottoms out at the prefix
        instead of the root.
        """
        indexer = filters.host_indexer
        node_at = indexer.node_at
        match_masks = filters.match_masks
        node_masks = filters.node_candidate_masks
        stats = context.stats
        check_deadline = context.check_deadline
        record_mapping = context.record_mapping

        n = len(order)
        if assignment is None:
            assignment = {}
        remaining = [0] * n    # untried candidate bits per depth
        placed_bit = [0] * n   # bit of the host currently placed per depth

        def candidates_mask(depth: int) -> int:
            # Expression (2) over the neighbours placed at earlier depths
            # (expression (1) when there are none), minus used hosts.
            neighbors = prior[depth]
            if not neighbors:
                mask = node_masks.get(order[depth], 0)
            else:
                node = order[depth]
                mask = -1
                for neighbor in neighbors:
                    mask &= match_masks.get((neighbor, assignment[neighbor], node), 0)
                    if not mask:
                        return 0
            return mask & ~used_mask

        if start_mask is None:
            mask = candidates_mask(start_depth)
            stats.nodes_expanded += 1
            stats.candidates_considered += mask.bit_count()
            if not mask:
                stats.backtracks += 1
                return True
        else:
            mask = start_mask   # expansion already counted by _shard_specs
            if not mask:        # defensive: the split never emits empty masks
                return True
        remaining[start_depth] = mask

        depth = start_depth
        while depth >= start_depth:
            check_deadline()
            mask = remaining[depth]
            if not mask:
                # Depth exhausted: undo its placement (if any) and backtrack.
                bit = placed_bit[depth]
                if bit:
                    used_mask ^= bit
                    del assignment[order[depth]]
                    placed_bit[depth] = 0
                depth -= 1
                continue
            low = mask & -mask
            remaining[depth] = mask ^ low
            prev = placed_bit[depth]
            if prev:
                used_mask ^= prev
            placed_bit[depth] = low
            used_mask |= low
            assignment[order[depth]] = node_at(low.bit_length() - 1)
            if depth + 1 == n:
                # A full-depth leaf is a feasible embedding (Fig. 4: "report
                # mapping defined by branch from node to root").
                if record_mapping(dict(assignment)):
                    return False
                continue
            depth += 1
            child = candidates_mask(depth)
            stats.nodes_expanded += 1
            stats.candidates_considered += child.bit_count()
            remaining[depth] = child
            placed_bit[depth] = 0
            if not child:
                stats.backtracks += 1
        return True
