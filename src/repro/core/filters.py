"""The ECF/RWB filter matrices and candidate-set algebra (paper §V-A).

During its first stage ECF applies the constraint expression to every pair of
(query edge, hosting edge).  Each *match* of query edge ``(q1, q2)`` against
hosting edge ``(r1, r2)`` contributes two entries to a sparse three-dimensional
structure ``F``::

    F[q1, r1, q2] ← r2        F[q2, r2, q1] ← r1

read as "if ``q1`` is mapped to ``r1``, then ``r2`` is a candidate for
``q2``" (and symmetrically).  Non-matches are recorded in a second structure
``F̄`` the same way.  During the tree search, the candidate set for the next
query node is the intersection of the ``F`` cells indexed by its
already-placed neighbours (expression (2)), or the union of all cells
targeting it when no neighbour is placed yet (expression (1)), always minus
hosting nodes already in use.

Both structures are sparse dictionaries keyed by
``(placed query node, placed hosting node, next query node)`` with hosting-node
sets as values; their total entry count is the memory-footprint statistic
reported by the ablation benchmarks (the O(n·|E_Q|·|E_R|) worst case of §V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.constraints import ConstraintExpression, edge_context, node_context
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, Network, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Stopwatch

FilterKey = Tuple[NodeId, NodeId, NodeId]


@dataclass
class FilterMatrices:
    """The match filter ``F``, the non-match filter ``F̄`` and per-node candidate sets."""

    #: F: (placed query node, its hosting node, next query node) -> candidate hosts.
    match: Dict[FilterKey, Set[NodeId]] = field(default_factory=dict)
    #: F̄: same key, hosting nodes known *not* to be candidates.
    non_match: Dict[FilterKey, Set[NodeId]] = field(default_factory=dict)
    #: Union over all cells targeting a query node (expression (1) per node).
    node_candidates: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    #: Number of edge-constraint evaluations performed while building.
    constraint_evaluations: int = 0
    #: Wall-clock seconds spent building the filters.
    build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #

    @property
    def entry_count(self) -> int:
        """Total number of candidate entries stored across both filters."""
        return (sum(len(s) for s in self.match.values())
                + sum(len(s) for s in self.non_match.values()))

    @property
    def cell_count(self) -> int:
        """Number of distinct (placed, host, next) cells in the match filter."""
        return len(self.match)

    # ------------------------------------------------------------------ #
    # Candidate-set algebra
    # ------------------------------------------------------------------ #

    def candidates_unplaced(self, query_node: NodeId) -> Set[NodeId]:
        """Expression (1): candidates for *query_node* before any neighbour is placed."""
        return set(self.node_candidates.get(query_node, set()))

    def candidates_given(self, query_node: NodeId,
                         placed_neighbors: Iterable[Tuple[NodeId, NodeId]],
                         used_hosts: Iterable[NodeId]) -> Set[NodeId]:
        """Expression (2): candidates for *query_node* given its placed neighbours.

        Parameters
        ----------
        query_node:
            The query node to be placed next.
        placed_neighbors:
            ``(query neighbour, hosting node it is mapped to)`` pairs for every
            already-placed neighbour of *query_node*.
        used_hosts:
            Hosting nodes already consumed by the partial mapping.

        Returns
        -------
        set
            Hosting nodes that are simultaneously compatible with every placed
            neighbour and not yet used.  Empty when any neighbour contributes
            an empty cell — which is exactly the pruning condition of ECF.
        """
        placed = list(placed_neighbors)
        if not placed:
            result = self.candidates_unplaced(query_node)
        else:
            result: Optional[Set[NodeId]] = None
            for neighbor, host in placed:
                cell = self.match.get((neighbor, host, query_node), _EMPTY_SET)
                if result is None:
                    result = set(cell)
                else:
                    result &= cell
                if not result:
                    return set()
        result -= set(used_hosts)
        return result

    def cell(self, placed_query: NodeId, placed_host: NodeId, next_query: NodeId
             ) -> FrozenSet[NodeId]:
        """The raw ``F`` cell (read-only view) for diagnostics and tests."""
        return frozenset(self.match.get((placed_query, placed_host, next_query), _EMPTY_SET))

    def non_match_cell(self, placed_query: NodeId, placed_host: NodeId,
                       next_query: NodeId) -> FrozenSet[NodeId]:
        """The raw ``F̄`` cell (read-only view)."""
        return frozenset(self.non_match.get((placed_query, placed_host, next_query), _EMPTY_SET))


_EMPTY_SET: Set[NodeId] = set()


def build_filters(query: QueryNetwork, hosting: HostingNetwork,
                  constraint: ConstraintExpression,
                  node_constraint: Optional[ConstraintExpression] = None,
                  record_non_matches: bool = True,
                  deadline=None) -> FilterMatrices:
    """Run the first stage of ECF/RWB: evaluate the constraint for every edge pair.

    Parameters
    ----------
    query, hosting:
        The two networks of the embedding problem.
    constraint:
        The edge constraint expression (``ConstraintExpression.always_true()``
        for purely topological embedding).
    node_constraint:
        Optional node-level expression (``vNode`` / ``rNode``) applied to
        restrict each query node's candidate set independently of edges.
        Query nodes without any edges get their candidates from this filter
        alone (or all hosting nodes if it is absent).
    record_non_matches:
        Whether to populate ``F̄``.  Building ``F̄`` doubles the memory
        footprint without changing the answers; the ablation benchmark flips
        this flag to quantify the space/time trade-off the paper discusses in
        §V-C.
    deadline:
        Optional :class:`~repro.utils.timing.Deadline`; checked once per query
        edge so a search timeout also bounds the filter-construction stage.
    """
    stopwatch = Stopwatch().start()
    filters = FilterMatrices()
    trivial = constraint.is_trivial

    node_allowed = compute_node_candidates(query, hosting, node_constraint)

    # Group the query's edges by unordered node pair, so that a filter cell
    # (placed node, placed host, next node) reflects *every* constraint between
    # the pair: a directed query may carry anti-parallel edges with different
    # requirements, and a candidate must satisfy both simultaneously.
    pair_edges: Dict[Tuple[NodeId, NodeId], List[Edge]] = {}
    for q_source, q_target in query.edges():
        qa, qb = sorted((q_source, q_target), key=str)
        pair_edges.setdefault((qa, qb), []).append((q_source, q_target))

    # Candidate ordered host placements: both orientations of every hosting
    # edge.  For directed hosts an orientation can still be rejected below if
    # a required arc does not exist in the needed direction.
    def arc_attrs(r_from: NodeId, r_to: NodeId):
        if hosting.has_edge(r_from, r_to):
            return hosting.edge_attrs(r_from, r_to)
        if not hosting.directed and hosting.has_edge(r_to, r_from):
            return hosting.edge_attrs(r_to, r_from)
        return None

    host_pair_info = []
    seen_pairs = set()
    for r1, r2 in hosting.edges():
        for ra, rb in ((r1, r2), (r2, r1)):
            if ra == rb or (ra, rb) in seen_pairs:
                continue
            seen_pairs.add((ra, rb))
            host_pair_info.append((ra, rb, arc_attrs(ra, rb), arc_attrs(rb, ra),
                                   hosting.node_attrs(ra), hosting.node_attrs(rb)))

    evaluate = constraint.evaluate
    evaluations = 0
    for (qa, qb), edges_between in pair_edges.items():
        if deadline is not None:
            deadline.check()
        allowed_a = node_allowed[qa]
        allowed_b = node_allowed[qb]
        # Pre-build one evaluation context per query edge of the pair; the
        # inner loop only rebinds the three hosting-side slots.
        edge_contexts = []
        for q_source, q_target in edges_between:
            edge_contexts.append((q_source == qa, {
                "vEdge": query.edge_attrs(q_source, q_target),
                "vSource": query.node_attrs(q_source),
                "vTarget": query.node_attrs(q_target),
                "rEdge": None, "rSource": None, "rTarget": None,
            }))
        for ra, rb, attrs_ab, attrs_ba, attrs_a, attrs_b in host_pair_info:
            matched = ra in allowed_a and rb in allowed_b
            if matched:
                for forward, context in edge_contexts:
                    # The hosting arc must run in the query edge's direction
                    # under the placement qa -> ra, qb -> rb.
                    r_edge_attrs = attrs_ab if forward else attrs_ba
                    if r_edge_attrs is None:
                        matched = False
                        break
                    if trivial:
                        continue
                    evaluations += 1
                    context["rEdge"] = r_edge_attrs
                    context["rSource"] = attrs_a if forward else attrs_b
                    context["rTarget"] = attrs_b if forward else attrs_a
                    if not evaluate(context):
                        matched = False
                        break
            if matched:
                filters.match.setdefault((qa, ra, qb), set()).add(rb)
                filters.match.setdefault((qb, rb, qa), set()).add(ra)
                filters.node_candidates.setdefault(qb, set()).add(rb)
                filters.node_candidates.setdefault(qa, set()).add(ra)
            elif record_non_matches:
                filters.non_match.setdefault((qa, ra, qb), set()).add(rb)
                filters.non_match.setdefault((qb, rb, qa), set()).add(ra)

    # Query nodes with no edges (degenerate but legal queries) fall back to the
    # node-level candidate sets so expression (1) still has something to offer.
    for node in query.nodes():
        if node not in filters.node_candidates:
            filters.node_candidates[node] = set(node_allowed[node])

    filters.constraint_evaluations = evaluations
    filters.build_seconds = stopwatch.stop()
    return filters


def compute_node_candidates(query: QueryNetwork, hosting: Network,
                            node_constraint: Optional[ConstraintExpression] = None
                            ) -> Dict[NodeId, Set[NodeId]]:
    """Per-query-node hosting candidates from node-level constraints alone.

    Without a node constraint every hosting node is a candidate for every
    query node; with one, the expression is evaluated for every
    (query node, hosting node) pair.  This is the node-screening step that
    §V-A describes as "applying the constraint expression [to] determine the
    number of possible mappings for each virtual node".
    """
    hosts = hosting.nodes()
    if node_constraint is None or node_constraint.is_trivial:
        return {node: set(hosts) for node in query.nodes()}
    allowed: Dict[NodeId, Set[NodeId]] = {}
    for query_node in query.nodes():
        allowed[query_node] = {
            host for host in hosts
            if node_constraint.evaluate(node_context(query, query_node, hosting, host))
        }
    return allowed


def _oriented_edges(network: Network) -> List[Edge]:
    """Oriented edge list for plain :class:`Network` hosting graphs."""
    edges: List[Edge] = []
    for u, v in network.edges():
        edges.append((u, v))
        if not network.directed:
            edges.append((v, u))
    return edges
