"""The ECF/RWB filter matrices and candidate-set algebra (paper §V-A).

During its first stage ECF applies the constraint expression to every pair of
(query edge, hosting edge).  Each *match* of query edge ``(q1, q2)`` against
hosting edge ``(r1, r2)`` contributes two entries to a sparse three-dimensional
structure ``F``::

    F[q1, r1, q2] ← r2        F[q2, r2, q1] ← r1

read as "if ``q1`` is mapped to ``r1``, then ``r2`` is a candidate for
``q2``" (and symmetrically).  Non-matches are recorded in a second structure
``F̄`` the same way.  During the tree search, the candidate set for the next
query node is the intersection of the ``F`` cells indexed by its
already-placed neighbours (expression (2)), or the union of all cells
targeting it when no neighbour is placed yet (expression (1)), always minus
hosting nodes already in use.

Both structures are sparse dictionaries keyed by
``(placed query node, placed hosting node, next query node)``; their total
entry count is the memory-footprint statistic reported by the ablation
benchmarks (the O(n·|E_Q|·|E_R|) worst case of §V-C).

**Bitmask backing.**  Each cell value — and each per-node candidate set — is
stored as an integer bitmask over the dense hosting-node index maintained by
:class:`~repro.core.indexing.NodeIndexer`, so the search inner loop runs on
``&`` / ``| `` / ``& ~used_mask`` instead of Python set objects.  The
historical set-returning accessors (:meth:`FilterMatrices.cell`,
:meth:`~FilterMatrices.candidates_given`,
:meth:`~FilterMatrices.candidates_unplaced` and the ``match`` /
``non_match`` / ``node_candidates`` dict views) survive as thin decode
layers, so diagnostics, ablations and tests keep their original vocabulary.
The set-semantics oracle the masks are tested against lives in
:mod:`repro.core.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.constraints import ConstraintExpression
from repro.constraints.ast_nodes import referenced_attributes
from repro.constraints.vectorizer import HAVE_NUMPY, cached_vector_kernel, np
from repro.core.indexing import NodeIndexer
from repro.core.words import WordTable
from repro.graphs.hosting import HostingNetwork
from repro.graphs.journal import NetworkDelta
from repro.graphs.network import Edge, Network, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Stopwatch

FilterKey = Tuple[NodeId, NodeId, NodeId]


class FilterWords:
    """Fixed-width ``uint64`` word backing of one filter snapshot.

    Four :class:`~repro.core.words.WordTable` twins of the mask dicts —
    match / non-match / node-candidate / node-screening — all over the same
    dense host index.  Built lazily by :meth:`FilterMatrices.words` (the
    dict-of-int representation stays authoritative in process); consumed by
    the compiled search kernel and by pickling, which ships these contiguous
    arrays instead of re-serialising thousands of bignums.
    """

    __slots__ = ("num_bits", "match", "non_match", "node_candidates",
                 "node_allowed")

    def __init__(self, filters: "FilterMatrices") -> None:
        num_bits = len(filters.host_indexer)
        self.num_bits = num_bits
        self.match = WordTable.from_masks(filters.match_masks, num_bits)
        self.non_match = WordTable.from_masks(filters.non_match_masks, num_bits)
        self.node_candidates = WordTable.from_masks(
            filters.node_candidate_masks, num_bits)
        self.node_allowed = WordTable.from_masks(
            filters.node_allowed_masks, num_bits)

    def patched(self, filters: "FilterMatrices",
                touched: Set[FilterKey]) -> "FilterWords":
        """Word backing for a patched snapshot: cell tables update only the
        *touched* rows in place (on a private copy); the small per-node
        tables rebuild.  Falls back to full rebuilds when a patch changed a
        table's key set (see :meth:`WordTable.updated`)."""
        words = FilterWords.__new__(FilterWords)
        words.num_bits = self.num_bits
        words.match = self.match.updated(filters.match_masks, touched)
        words.non_match = self.non_match.updated(filters.non_match_masks,
                                                 touched)
        words.node_candidates = WordTable.from_masks(
            filters.node_candidate_masks, self.num_bits)
        words.node_allowed = WordTable.from_masks(
            filters.node_allowed_masks, self.num_bits)
        return words


#: The four mask dicts that travel as word tables across pickle boundaries.
_WORD_STATE_FIELDS = ("match_masks", "non_match_masks",
                      "node_candidate_masks", "node_allowed_masks")


@dataclass
class FilterMatrices:
    """The match filter ``F``, the non-match filter ``F̄`` and per-node candidates.

    All candidate storage is bitmask-encoded over :attr:`host_indexer`; the
    ``*_masks`` attributes are the hot-path surface consumed by ECF/RWB, and
    the set-typed views below decode on demand for everything else.
    """

    #: Dense index over the hosting nodes; bit order == ``sorted(key=str)``.
    host_indexer: NodeIndexer = field(default_factory=NodeIndexer)
    #: F: (placed query node, its hosting node, next query node) -> candidate mask.
    match_masks: Dict[FilterKey, int] = field(default_factory=dict)
    #: F̄: same key, hosting nodes known *not* to be candidates.
    non_match_masks: Dict[FilterKey, int] = field(default_factory=dict)
    #: Union over all cells targeting a query node (expression (1) per node).
    node_candidate_masks: Dict[NodeId, int] = field(default_factory=dict)
    #: Number of edge-constraint evaluations performed while building.
    constraint_evaluations: int = 0
    #: Wall-clock seconds spent building the filters.
    build_seconds: float = 0.0
    #: Node-screening result (node constraint only) per query node, encoded
    #: over :attr:`host_indexer`.  Retained so the incremental patch path can
    #: re-derive the expression-(1) fallback for nodes that lose every match.
    node_allowed_masks: Dict[NodeId, int] = field(default_factory=dict)
    #: Whether ``F̄`` was populated at build time (the patch path must keep
    #: maintaining exactly what the original build recorded).
    records_non_matches: bool = True
    #: How many incremental patches produced the current state, and how many
    #: hosting-arc rows they re-evaluated in total (0 = built from scratch).
    patches: int = 0
    patched_rows: int = 0
    #: Lazy :class:`FilterWords` twin of the mask dicts; built on first
    #: kernel or pickle use, never part of equality or the constructor.
    _words_cache: Optional[FilterWords] = field(default=None, init=False,
                                                repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Fixed-width word backing (kernel + pickle representation)
    # ------------------------------------------------------------------ #

    def words(self) -> FilterWords:
        """The word-array backing of this snapshot, built once on demand.

        The dict-of-int masks stay the in-process representation behind the
        accessor API; the word arrays are what the compiled kernel iterates
        and what pickling ships.  Snapshots are immutable by convention
        (patches produce new instances), so the cache never goes stale —
        call :meth:`invalidate_words` after any in-place surgery in tests.
        """
        words = self._words_cache
        if words is None:
            words = FilterWords(self)
            self._words_cache = words
        return words

    def invalidate_words(self) -> None:
        """Drop the cached word backing (and any derived kernel plan)."""
        self._words_cache = None
        self.__dict__.pop("_kernel_plan", None)

    def __getstate__(self):
        """Pickle the mask dicts as word tables (compact, fixed-width) and
        never ship derived caches: the kernel plan stays behind, and each
        :class:`~repro.core.words.WordTable` pickles a private copy of its
        array, so no payload aliases this object's buffers."""
        state = dict(self.__dict__)
        state.pop("_kernel_plan", None)
        words = state.pop("_words_cache", None)
        if HAVE_NUMPY:
            if words is None:
                words = self.words()
            state["match_masks"] = words.match
            state["non_match_masks"] = words.non_match
            state["node_candidate_masks"] = words.node_candidates
            state["node_allowed_masks"] = words.node_allowed
        return state

    def __setstate__(self, state) -> None:
        tables = {}
        for name in _WORD_STATE_FIELDS:
            value = state.get(name)
            if isinstance(value, WordTable):
                tables[name] = value
                state[name] = value.to_masks()
        self.__dict__.update(state)
        self._words_cache = None
        if len(tables) == len(_WORD_STATE_FIELDS):
            # The receiving side starts with the shipped tables pre-cached,
            # so a worker going straight into the numba kernel reconverts
            # nothing.
            words = FilterWords.__new__(FilterWords)
            words.num_bits = tables["match_masks"].num_bits
            words.match = tables["match_masks"]
            words.non_match = tables["non_match_masks"]
            words.node_candidates = tables["node_candidate_masks"]
            words.node_allowed = tables["node_allowed_masks"]
            self._words_cache = words

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #

    @property
    def entry_count(self) -> int:
        """Total number of candidate entries stored across both filters."""
        return (sum(mask.bit_count() for mask in self.match_masks.values())
                + sum(mask.bit_count() for mask in self.non_match_masks.values()))

    @property
    def cell_count(self) -> int:
        """Number of distinct (placed, host, next) cells in the match filter."""
        return len(self.match_masks)

    def candidate_count(self, query_node: NodeId) -> int:
        """Cardinality of expression (1)'s candidate set for *query_node*."""
        return self.node_candidate_masks.get(query_node, 0).bit_count()

    # ------------------------------------------------------------------ #
    # Bitmask algebra (the hot path)
    # ------------------------------------------------------------------ #

    def candidates_mask_unplaced(self, query_node: NodeId) -> int:
        """Expression (1) as a bitmask: candidates before any neighbour is placed."""
        return self.node_candidate_masks.get(query_node, 0)

    def candidates_mask_given(self, query_node: NodeId,
                              placed_neighbors: Iterable[Tuple[NodeId, NodeId]],
                              used_mask: int) -> int:
        """Expression (2) as a bitmask chain.

        Intersects the ``F`` cells indexed by the placed neighbours with
        ``&`` and removes consumed hosts with ``& ~used_mask``; a missing
        cell contributes the empty mask, pruning the branch immediately.
        """
        get = self.match_masks.get
        mask: Optional[int] = None
        for neighbor, host in placed_neighbors:
            cell = get((neighbor, host, query_node), 0)
            mask = cell if mask is None else mask & cell
            if not mask:
                return 0
        if mask is None:
            mask = self.node_candidate_masks.get(query_node, 0)
        return mask & ~used_mask

    # ------------------------------------------------------------------ #
    # Candidate-set algebra (decode views over the masks)
    # ------------------------------------------------------------------ #

    def candidates_unplaced(self, query_node: NodeId) -> Set[NodeId]:
        """Expression (1): candidates for *query_node* before any neighbour is placed."""
        return self.host_indexer.decode_set(self.candidates_mask_unplaced(query_node))

    def candidates_given(self, query_node: NodeId,
                         placed_neighbors: Iterable[Tuple[NodeId, NodeId]],
                         used_hosts: Iterable[NodeId]) -> Set[NodeId]:
        """Expression (2): candidates for *query_node* given its placed neighbours.

        Parameters
        ----------
        query_node:
            The query node to be placed next.
        placed_neighbors:
            ``(query neighbour, hosting node it is mapped to)`` pairs for every
            already-placed neighbour of *query_node*.
        used_hosts:
            Hosting nodes already consumed by the partial mapping.

        Returns
        -------
        set
            Hosting nodes that are simultaneously compatible with every placed
            neighbour and not yet used.  Empty when any neighbour contributes
            an empty cell — which is exactly the pruning condition of ECF.
        """
        mask = self.candidates_mask_given(query_node, list(placed_neighbors),
                                          self.host_indexer.encode(used_hosts))
        return self.host_indexer.decode_set(mask)

    def cell(self, placed_query: NodeId, placed_host: NodeId, next_query: NodeId
             ) -> FrozenSet[NodeId]:
        """The raw ``F`` cell (read-only view) for diagnostics and tests."""
        return frozenset(self.host_indexer.decode(
            self.match_masks.get((placed_query, placed_host, next_query), 0)))

    def non_match_cell(self, placed_query: NodeId, placed_host: NodeId,
                       next_query: NodeId) -> FrozenSet[NodeId]:
        """The raw ``F̄`` cell (read-only view)."""
        return frozenset(self.host_indexer.decode(
            self.non_match_masks.get((placed_query, placed_host, next_query), 0)))

    # ------------------------------------------------------------------ #
    # Dict-of-set views (decoded snapshots of the mask stores)
    # ------------------------------------------------------------------ #

    @property
    def match(self) -> Dict[FilterKey, Set[NodeId]]:
        """``F`` decoded to the historical dict-of-set shape (a snapshot)."""
        decode = self.host_indexer.decode_set
        return {key: decode(mask) for key, mask in self.match_masks.items()}

    @property
    def non_match(self) -> Dict[FilterKey, Set[NodeId]]:
        """``F̄`` decoded to the historical dict-of-set shape (a snapshot)."""
        decode = self.host_indexer.decode_set
        return {key: decode(mask) for key, mask in self.non_match_masks.items()}

    @property
    def node_candidates(self) -> Dict[NodeId, Set[NodeId]]:
        """Per-node candidate sets decoded from the masks (a snapshot)."""
        decode = self.host_indexer.decode_set
        return {node: decode(mask)
                for node, mask in self.node_candidate_masks.items()}


@dataclass
class HostingCompile:
    """The query-independent half of filter construction, compiled once.

    Everything :func:`build_filters` derives from the hosting network alone —
    the dense :class:`~repro.core.indexing.NodeIndexer`, the oriented-arc
    table with its hoisted attribute dicts, and the vectorizer's per-attribute
    numeric columns — is identical for every query hitting the same model
    version.  Compiling it once per network (and re-using it until the
    network's :attr:`~repro.graphs.network.Network.mutation_count` moves) is
    what makes repeated traffic against a slowly-drifting model cheap: the
    per-query stage only pays for the work that actually depends on the query.
    """

    hosting: HostingNetwork
    indexer: NodeIndexer
    #: ``(ra, rb, bit_a, bit_b, attrs_ab, attrs_ba, attrs_a, attrs_b)`` per
    #: oriented hosting arc — the inner-loop table of the scalar pass.
    host_pair_info: List[Tuple]
    #: ``hosting.mutation_count`` at compile time; the staleness epoch.
    epoch: int
    #: Wall-clock seconds spent compiling.
    compile_seconds: float = 0.0
    _index_arrays: Optional[Tuple] = field(default=None, repr=False)
    #: Memoised vectorizer columns: (source slot, attr) -> (values, missing)
    #: array pair, or ``None`` when the attribute is non-numeric somewhere.
    _columns: Dict[Tuple[int, str], Optional[Tuple]] = field(
        default_factory=dict, repr=False)
    #: Lazy reverse indexes from hosting node / unordered node pair to the
    #: ``host_pair_info`` rows that read their attribute dicts — the lookup
    #: the incremental patch paths use to turn a mutation delta into the set
    #: of rows that must be re-evaluated.
    _rows_by_node: Optional[Dict[NodeId, List[int]]] = field(
        default=None, repr=False)
    _rows_by_pair: Optional[Dict[Tuple, List[int]]] = field(
        default=None, repr=False)

    @property
    def stale(self) -> bool:
        """Whether the hosting network has mutated since this compile."""
        return self.epoch != self.hosting.mutation_count

    @property
    def num_hosts(self) -> int:
        return len(self.indexer)

    def index_arrays(self) -> Tuple:
        """``(ra_idx, rb_idx, exists_fwd, exists_bwd)`` numpy arrays (lazy)."""
        arrays = self._index_arrays
        if arrays is None:
            info = self.host_pair_info
            rows = len(info)
            index_of = self.indexer.index_of
            arrays = (
                np.fromiter((index_of(row[0]) for row in info),
                            dtype=np.int64, count=rows),
                np.fromiter((index_of(row[1]) for row in info),
                            dtype=np.int64, count=rows),
                np.fromiter((row[4] is not None for row in info),
                            dtype=bool, count=rows),
                np.fromiter((row[5] is not None for row in info),
                            dtype=bool, count=rows),
            )
            self._index_arrays = arrays
        return arrays

    def column(self, source_index: int, attr: str) -> Optional[Tuple]:
        """(values, missing) arrays for one attribute over one dict column.

        Returns ``None`` when any defined value is non-numeric — the scalar
        path owns those semantics.  Both outcomes are memoised, keyed by the
        ``host_pair_info`` slot the column reads from.
        """
        key = (source_index, attr)
        if key in self._columns:
            return self._columns[key]
        info = self.host_pair_info
        rows = len(info)
        values = np.zeros(rows, dtype=np.float64)
        missing = np.zeros(rows, dtype=bool)
        result: Optional[Tuple] = (values, missing)
        for i, row in enumerate(info):
            attrs = row[source_index]
            value = None if attrs is None else attrs.get(attr)
            if value is None:
                missing[i] = True
            elif _is_plain_number(value):
                values[i] = value
            else:
                result = None
                break
        self._columns[key] = result
        return result

    def rows_for(self, nodes=(), edges=()) -> List[int]:
        """Indices of ``host_pair_info`` rows reading the given subjects.

        A node affects every row whose arc has it as an endpoint (its
        attribute dict is hoisted into slots 6/7 and gates the node
        screening); an edge affects both orientation rows (slots 4/5).
        Sorted and de-duplicated.
        """
        if self._rows_by_node is None:
            by_node: Dict[NodeId, List[int]] = {}
            by_pair: Dict[Tuple, List[int]] = {}
            for i, row in enumerate(self.host_pair_info):
                ra, rb = row[0], row[1]
                by_node.setdefault(ra, []).append(i)
                by_node.setdefault(rb, []).append(i)
                key = tuple(sorted((ra, rb), key=str))
                by_pair.setdefault(key, []).append(i)
            self._rows_by_node = by_node
            self._rows_by_pair = by_pair
        affected = set()
        for node in nodes:
            affected.update(self._rows_by_node.get(node, ()))
        for u, v in edges:
            affected.update(self._rows_by_pair.get(
                tuple(sorted((u, v), key=str)), ()))
        return sorted(affected)


#: Attribute under which :func:`compile_hosting` memoises the compile on the
#: network object itself; invalidated in O(1) via the mutation epoch.
_COMPILE_CACHE_ATTR = "_hosting_compile"


def compile_hosting(hosting: HostingNetwork) -> HostingCompile:
    """Compile (or fetch the memoised compile of) a hosting network.

    The result is cached on the network object and reused until any of the
    network's mutators bumps :attr:`~repro.graphs.network.Network.mutation_count`,
    so back-to-back filter builds against an unchanged model — the dominant
    pattern of the NETEMBED service — skip the whole hosting-side scan.
    """
    cached = getattr(hosting, _COMPILE_CACHE_ATTR, None)
    if cached is not None and cached.hosting is hosting:
        if not cached.stale:
            return cached
        # Attribute-only churn (the monitoring case) leaves the topology —
        # and therefore the indexer and the arc table, whose attribute dicts
        # are live references — intact; patching the memoised vectorizer
        # columns for the touched rows is all a recompile requires.
        if patch_hosting_compile(cached, hosting.delta_since(cached.epoch)):
            return cached

    stopwatch = Stopwatch().start()
    # Capture the epoch BEFORE scanning: a mutation that lands mid-compile
    # then leaves mutation_count > epoch, so the half-stale compile is
    # correctly treated as stale instead of being served forever.
    epoch = hosting.mutation_count
    indexer = NodeIndexer(hosting.nodes())

    # Candidate ordered host placements: both orientations of every hosting
    # edge.  For directed hosts an orientation can still be rejected later if
    # a required arc does not exist in the needed direction.  Everything the
    # per-query inner loop needs — attribute dicts and the endpoints' bit
    # positions — is hoisted into this table once per model version.
    def arc_attrs(r_from: NodeId, r_to: NodeId):
        if hosting.has_edge(r_from, r_to):
            return hosting.edge_attrs(r_from, r_to)
        if not hosting.directed and hosting.has_edge(r_to, r_from):
            return hosting.edge_attrs(r_to, r_from)
        return None

    host_pair_info: List[Tuple] = []
    seen_pairs = set()
    for r1, r2 in hosting.edges():
        for ra, rb in ((r1, r2), (r2, r1)):
            if ra == rb or (ra, rb) in seen_pairs:
                continue
            seen_pairs.add((ra, rb))
            host_pair_info.append((ra, rb, indexer.bit(ra), indexer.bit(rb),
                                   arc_attrs(ra, rb), arc_attrs(rb, ra),
                                   hosting.node_attrs(ra), hosting.node_attrs(rb)))

    compiled = HostingCompile(hosting=hosting, indexer=indexer,
                              host_pair_info=host_pair_info,
                              epoch=epoch)
    compiled.compile_seconds = stopwatch.stop()
    try:
        setattr(hosting, _COMPILE_CACHE_ATTR, compiled)
    except AttributeError:  # slotted Network subclass: just skip the memo
        pass
    return compiled


def clear_hosting_compile(hosting: HostingNetwork) -> None:
    """Drop the memoised :class:`HostingCompile` from *hosting*, if any.

    Benchmarks that want to measure the historical per-call cost (no
    cross-request amortisation) call this between requests; production code
    never needs it — the epoch check already handles invalidation.
    """
    if hasattr(hosting, _COMPILE_CACHE_ATTR):
        delattr(hosting, _COMPILE_CACHE_ATTR)


def patch_hosting_compile(compiled: HostingCompile,
                          delta: Optional[NetworkDelta]) -> bool:
    """Bring a stale :class:`HostingCompile` up to date for an attr-only delta.

    The arc table holds *live* attribute dicts, so attribute mutations are
    already visible to the scalar pass; the only derived state to fix is the
    memoised vectorizer columns, whose touched rows are re-read in place.
    ``None``-columns (non-numeric somewhere) are dropped from the memo so
    they re-derive lazily — the offending value may have become numeric.

    Returns ``True`` when the compile was patched (epoch advanced to the
    delta's target); ``False`` when the delta is unavailable or structural,
    in which case the caller must rebuild from scratch.
    """
    if delta is None or delta.structural:
        return False
    if not delta.empty:
        stopwatch = Stopwatch().start()
        info = compiled.host_pair_info
        #: Which host_pair_info slot a column's source dict sits in: edge
        #: orientations (4/5) re-read on edge touches, endpoint nodes (6/7)
        #: on node touches.  Columns whose attribute the delta never wrote
        #: are untouched — including memoised ``None`` verdicts, which can
        #: only change when their own attribute does.
        for key, column in list(compiled._columns.items()):
            source_index, attr = key
            if source_index in (4, 5):
                subjects = [edge for edge, names
                            in delta.touched_edge_attrs.items() if attr in names]
                rows = compiled.rows_for(edges=subjects)
            else:
                subjects = [node for node, names
                            in delta.touched_node_attrs.items() if attr in names]
                rows = compiled.rows_for(nodes=subjects)
            if not rows:
                continue
            if column is None:
                # The offending value may have become numeric: forget the
                # verdict and let column() re-derive it lazily.
                del compiled._columns[key]
                continue
            values, missing = column
            for i in rows:
                attrs = info[i][source_index]
                value = None if attrs is None else attrs.get(attr)
                if value is None:
                    values[i] = 0.0
                    missing[i] = True
                elif _is_plain_number(value):
                    values[i] = value
                    missing[i] = False
                else:
                    # Non-numeric now: the column leaves the vectorizable
                    # fragment, exactly as a from-scratch column() would find.
                    compiled._columns[key] = None
                    break
        compiled.compile_seconds += stopwatch.stop()
    compiled.epoch = delta.target_epoch
    return True


def build_filters(query: QueryNetwork, hosting: HostingNetwork,
                  constraint: ConstraintExpression,
                  node_constraint: Optional[ConstraintExpression] = None,
                  record_non_matches: bool = True,
                  deadline=None,
                  compiled: Optional[HostingCompile] = None) -> FilterMatrices:
    """Run the first stage of ECF/RWB: evaluate the constraint for every edge pair.

    Parameters
    ----------
    query, hosting:
        The two networks of the embedding problem.
    constraint:
        The edge constraint expression (``ConstraintExpression.always_true()``
        for purely topological embedding).
    node_constraint:
        Optional node-level expression (``vNode`` / ``rNode``) applied to
        restrict each query node's candidate set independently of edges.
        Query nodes without any edges get their candidates from this filter
        alone (or all hosting nodes if it is absent).
    record_non_matches:
        Whether to populate ``F̄``.  Nothing on the search path consumes
        ``F̄`` — it exists for diagnostics and for the ablation benchmark
        that quantifies the space/time trade-off of §V-C — so callers that
        only search (RWB, the perf benchmarks) pass ``False`` and skip the
        population work entirely.
    deadline:
        Optional :class:`~repro.utils.timing.Deadline`; checked once per query
        edge so a search timeout also bounds the filter-construction stage.
    compiled:
        Optional pre-built :class:`HostingCompile` for *hosting*.  A stale or
        foreign compile is ignored and a fresh one fetched via
        :func:`compile_hosting` (which itself memoises per network), so this
        is purely an optimisation knob — semantics never depend on it.
    """
    stopwatch = Stopwatch().start()
    if compiled is None or compiled.hosting is not hosting or compiled.stale:
        compiled = compile_hosting(hosting)
    indexer = compiled.indexer
    filters = FilterMatrices(host_indexer=indexer,
                             records_non_matches=record_non_matches)
    trivial = constraint.is_trivial

    node_allowed = compute_node_candidates(query, hosting, node_constraint)
    filters.node_allowed_masks = {
        node: indexer.encode(node_allowed[node]) for node in query.nodes()}

    # Group the query's edges by unordered node pair, so that a filter cell
    # (placed node, placed host, next node) reflects *every* constraint between
    # the pair: a directed query may carry anti-parallel edges with different
    # requirements, and a candidate must satisfy both simultaneously.
    pair_edges: Dict[Tuple[NodeId, NodeId], List[Edge]] = {}
    for q_source, q_target in query.edges():
        qa, qb = sorted((q_source, q_target), key=str)
        pair_edges.setdefault((qa, qb), []).append((q_source, q_target))

    host_pair_info = compiled.host_pair_info

    match_masks = filters.match_masks
    non_match_masks = filters.non_match_masks
    node_masks = filters.node_candidate_masks
    match_get = match_masks.get
    non_match_get = non_match_masks.get

    # Fast path: evaluate the constraint for all hosting arcs at once over
    # numpy arrays and fold the boolean results straight into the bitmasks.
    evaluations = _build_pairs_vectorized(
        query, constraint, node_allowed, pair_edges, compiled,
        filters, record_non_matches, deadline)
    if evaluations is not None:
        for node in query.nodes():
            if node not in node_masks:
                node_masks[node] = indexer.encode(node_allowed[node])
        filters.constraint_evaluations = evaluations
        filters.build_seconds = stopwatch.stop()
        return filters

    evaluate = constraint.evaluate
    evaluations = 0
    for (qa, qb), edges_between in pair_edges.items():
        if deadline is not None:
            deadline.check()
        allowed_a = node_allowed[qa]
        allowed_b = node_allowed[qb]
        # Pre-build one evaluation context per query edge of the pair; the
        # inner loop only rebinds the three hosting-side slots.
        edge_contexts = []
        for q_source, q_target in edges_between:
            edge_contexts.append((q_source == qa, {
                "vEdge": query.edge_attrs(q_source, q_target),
                "vSource": query.node_attrs(q_source),
                "vTarget": query.node_attrs(q_target),
                "rEdge": None, "rSource": None, "rTarget": None,
            }))
        mask_a = node_masks.get(qa, 0)
        mask_b = node_masks.get(qb, 0)
        for ra, rb, bit_a, bit_b, attrs_ab, attrs_ba, attrs_a, attrs_b in host_pair_info:
            matched = ra in allowed_a and rb in allowed_b
            if matched:
                for forward, context in edge_contexts:
                    # The hosting arc must run in the query edge's direction
                    # under the placement qa -> ra, qb -> rb.
                    r_edge_attrs = attrs_ab if forward else attrs_ba
                    if r_edge_attrs is None:
                        matched = False
                        break
                    if trivial:
                        continue
                    evaluations += 1
                    context["rEdge"] = r_edge_attrs
                    context["rSource"] = attrs_a if forward else attrs_b
                    context["rTarget"] = attrs_b if forward else attrs_a
                    if not evaluate(context):
                        matched = False
                        break
            if matched:
                key_ab = (qa, ra, qb)
                key_ba = (qb, rb, qa)
                match_masks[key_ab] = match_get(key_ab, 0) | bit_b
                match_masks[key_ba] = match_get(key_ba, 0) | bit_a
                mask_a |= bit_a
                mask_b |= bit_b
            elif record_non_matches:
                key_ab = (qa, ra, qb)
                key_ba = (qb, rb, qa)
                non_match_masks[key_ab] = non_match_get(key_ab, 0) | bit_b
                non_match_masks[key_ba] = non_match_get(key_ba, 0) | bit_a
        if mask_a:
            node_masks[qa] = mask_a
        if mask_b:
            node_masks[qb] = mask_b

    # Query nodes with no filter entry (no edges, or no matching pair at all)
    # fall back to the node-level candidate sets so expression (1) still has
    # something to offer.
    for node in query.nodes():
        if node not in node_masks:
            node_masks[node] = indexer.encode(node_allowed[node])

    filters.constraint_evaluations = evaluations
    filters.build_seconds = stopwatch.stop()
    return filters


_R_OBJECTS = ("rEdge", "rSource", "rTarget")
_V_OBJECTS = ("vEdge", "vSource", "vTarget")
#: Above this many hosting-node-squared cells the per-pair boolean adjacency
#: matrix becomes the dominant cost; fall back to the scalar loop instead.
_MAX_DENSE_CELLS = 64_000_000


def _is_plain_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _query_edge_scalar(query, key, q_source, q_target):
    """(value, missing) for a query-side attribute of one query edge, or
    ``None`` when the defined value is non-numeric (scalar semantics)."""
    obj, attr = key
    if obj == "vEdge":
        attrs = query.edge_attrs(q_source, q_target)
    elif obj == "vSource":
        attrs = query.node_attrs(q_source)
    else:
        attrs = query.node_attrs(q_target)
    value = attrs.get(attr)
    if value is None:
        return 0.0, True
    if not _is_plain_number(value):
        return None
    return float(value), False


def _query_edge_scalars(query, keys, pair_edges):
    """Per-query-edge bindings of the referenced ``v*`` attributes, or
    ``None`` when any defined value is non-numeric."""
    v_keys = [key for key in keys if key[0] in _V_OBJECTS]
    edge_scalars = {}
    for edges_between in pair_edges.values():
        for q_source, q_target in edges_between:
            bindings = {}
            for key in v_keys:
                scalar = _query_edge_scalar(query, key, q_source, q_target)
                if scalar is None:
                    return None
                bindings[key] = scalar
            edge_scalars[(q_source, q_target)] = bindings
    return edge_scalars


def _mask_to_bool_array(mask: int, num_bits: int):
    """Decode an int bitmask into a numpy bool lookup of length *num_bits*."""
    data = mask.to_bytes((num_bits + 7) // 8, "little") if num_bits else b""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8),
                         bitorder="little", count=num_bits).astype(bool)


def _build_pairs_vectorized(query, constraint, node_allowed,
                            pair_edges, compiled, filters,
                            record_non_matches, deadline) -> Optional[int]:
    """Vectorized replacement for the per-(query pair, host pair) scalar loop.

    Evaluates the edge constraint as a numpy batch kernel over all oriented
    hosting arcs at once, then converts the boolean match rows into filter
    bitmasks with ``np.packbits`` (bit order == the dense host index).
    Returns the constraint-evaluation count on success, or ``None`` when the
    workload is outside the vectorizable fragment (non-numeric attributes,
    strict mode, unsupported expression shapes) — the caller then runs the
    scalar loop, whose semantics this pass replicates exactly, including the
    short-circuit evaluation counts.

    The hosting-side inputs — arc index arrays and per-attribute numeric
    columns — come memoised from the :class:`HostingCompile`, so repeated
    queries against an unchanged model only pay for the per-query batch
    evaluation and the mask packing.
    """
    host_pair_info = compiled.host_pair_info
    indexer = compiled.indexer
    if not HAVE_NUMPY or not host_pair_info:
        return None
    if getattr(constraint, "strict", False):
        return None  # strict missing-attribute errors belong to the scalar path
    trivial = constraint.is_trivial
    kernel = None
    keys = []
    if not trivial:
        kernel = cached_vector_kernel(constraint)
        if kernel is None:
            return None
        keys = referenced_attributes(constraint.ast)
        if any(obj not in _R_OBJECTS and obj not in _V_OBJECTS
               for obj, _ in keys):
            return None
    num_hosts = len(indexer)
    if num_hosts * num_hosts > _MAX_DENSE_CELLS:
        return None

    ra_idx, rb_idx, exists_fwd, exists_bwd = compiled.index_arrays()

    # One (values, missing) column pair per referenced hosting-side
    # attribute, per orientation: "forward" places (rEdge, rSource, rTarget)
    # on (ab, a, b), "backward" on (ba, b, a) — see the scalar loop.
    column_sources = {"rEdge": (4, 5), "rSource": (6, 7), "rTarget": (7, 6)}
    env_fwd = {}
    env_bwd = {}
    for key in keys:
        obj, attr = key
        if obj not in column_sources:
            continue
        fwd_source, bwd_source = column_sources[obj]
        fwd = compiled.column(fwd_source, attr)
        bwd = fwd if bwd_source == fwd_source else compiled.column(bwd_source, attr)
        if fwd is None or bwd is None:
            return None
        env_fwd[key] = fwd
        env_bwd[key] = bwd

    # Pre-scan the query side: every referenced attribute must be numeric or
    # missing on every query edge, otherwise scalar error semantics apply.
    edge_scalars = _query_edge_scalars(query, keys, pair_edges)
    if edge_scalars is None:
        return None

    match_masks = filters.match_masks
    non_match_masks = filters.non_match_masks
    node_masks = filters.node_candidate_masks

    allowed_lookups = {}

    def allowed_lookup(node):
        lookup = allowed_lookups.get(node)
        if lookup is None:
            allowed = node_allowed[node]
            lookup = np.zeros(num_hosts, dtype=bool)
            if len(allowed) == num_hosts:
                lookup[:] = True
            else:
                for host in allowed:
                    lookup[indexer.index_of(host)] = True
            allowed_lookups[node] = lookup
        return lookup

    def accumulate(masks, matched, first, second):
        """OR the matched (r_first, r_second) rows into ``masks`` cells.

        Builds the dense boolean adjacency of matched placements and packs
        each row/column directly into the little-endian int bitmasks; also
        returns the (row-any, column-any) bitmasks for the node candidates.
        """
        adjacency = np.zeros((num_hosts, num_hosts), dtype=bool)
        adjacency[ra_idx[matched], rb_idx[matched]] = True
        get = masks.get
        packed = np.packbits(adjacency, axis=1, bitorder="little")
        row_any = adjacency.any(axis=1)
        for i in np.nonzero(row_any)[0]:
            key = (first, indexer.node_at(i), second)
            masks[key] = get(key, 0) | int.from_bytes(packed[i].tobytes(), "little")
        packed_t = np.packbits(adjacency.T, axis=1, bitorder="little")
        col_any = adjacency.any(axis=0)
        for i in np.nonzero(col_any)[0]:
            key = (second, indexer.node_at(i), first)
            masks[key] = get(key, 0) | int.from_bytes(packed_t[i].tobytes(), "little")
        return row_any, col_any

    evaluations = 0
    for (qa, qb), edges_between in pair_edges.items():
        if deadline is not None:
            deadline.check()
        rows_allowed = (allowed_lookup(qa)[ra_idx]
                        & allowed_lookup(qb)[rb_idx])
        alive = rows_allowed
        for q_source, q_target in edges_between:
            forward = q_source == qa
            evaluable = alive & (exists_fwd if forward else exists_bwd)
            if trivial:
                alive = evaluable
                continue
            evaluations += int(np.count_nonzero(evaluable))
            env = dict(env_fwd if forward else env_bwd)
            env.update(edge_scalars[(q_source, q_target)])
            value, bad = kernel(env)
            alive = evaluable & np.logical_and(value, np.logical_not(bad))
        if alive.any():
            row_any, col_any = accumulate(match_masks, alive, qa, qb)
            mask_a = int.from_bytes(
                np.packbits(row_any, bitorder="little").tobytes(), "little")
            mask_b = int.from_bytes(
                np.packbits(col_any, bitorder="little").tobytes(), "little")
            if mask_a:
                node_masks[qa] = node_masks.get(qa, 0) | mask_a
            if mask_b:
                node_masks[qb] = node_masks.get(qb, 0) | mask_b
        if record_non_matches:
            unmatched = ~alive
            if unmatched.any():
                accumulate(non_match_masks, unmatched, qa, qb)
    return evaluations


def compute_node_candidates(query: QueryNetwork, hosting: Network,
                            node_constraint: Optional[ConstraintExpression] = None
                            ) -> Dict[NodeId, Set[NodeId]]:
    """Per-query-node hosting candidates from node-level constraints alone.

    Without a node constraint every hosting node is a candidate for every
    query node; with one, the expression is evaluated for every
    (query node, hosting node) pair.  This is the node-screening step that
    §V-A describes as "applying the constraint expression [to] determine the
    number of possible mappings for each virtual node".

    The query-side half of the evaluation context is built once per query
    node and only the ``rNode`` slot is rebound in the inner loop, mirroring
    the context-hoisting that :func:`build_filters` does for edges.
    """
    hosts = hosting.nodes()
    if node_constraint is None or node_constraint.is_trivial:
        return {node: set(hosts) for node in query.nodes()}
    host_attrs = [(host, hosting.node_attrs(host)) for host in hosts]
    evaluate = node_constraint.evaluate
    allowed: Dict[NodeId, Set[NodeId]] = {}
    for query_node in query.nodes():
        context = {"vNode": query.node_attrs(query_node), "rNode": None}
        matches: Set[NodeId] = set()
        for host, attrs in host_attrs:
            context["rNode"] = attrs
            if evaluate(context):
                matches.add(host)
        allowed[query_node] = matches
    return allowed


# --------------------------------------------------------------------------- #
# Incremental filter patching (delta-aware recompiles)
# --------------------------------------------------------------------------- #

#: Above this fraction of re-evaluated arc rows a full (vectorizable) rebuild
#: is usually cheaper than the scalar row patch; the patch declines and the
#: caller rebuilds.
PATCH_ROW_FRACTION = 0.25


def _set_cell_bit(masks: Dict[FilterKey, int], key: FilterKey, bit: int) -> None:
    masks[key] = masks.get(key, 0) | bit


def _clear_cell_bit(masks: Dict[FilterKey, int], key: FilterKey, bit: int) -> None:
    mask = masks.get(key)
    if mask is None:
        return
    mask &= ~bit
    if mask:
        masks[key] = mask
    else:
        # A from-scratch build never stores empty cells; neither may a patch.
        del masks[key]


def _patch_pairs_vectorized(query, constraint, pair_edges, compiled,
                            rows, allowed_masks, indexer):
    """Batch-evaluate the affected rows for every query pair at once.

    The subset analogue of :func:`_build_pairs_vectorized`: the memoised
    hosting columns are sliced down to *rows* and the constraint kernel runs
    over them per query edge, replicating the scalar pass's short-circuit
    structure (a row dead after edge *k* is not evaluated at edge *k+1*).
    Returns ``(matched-bool-array per pair, evaluation count)``, or ``None``
    when the workload is outside the vectorizable fragment — the caller then
    runs the scalar row loop.
    """
    if not HAVE_NUMPY or not rows:
        return None
    if getattr(constraint, "strict", False):
        return None
    trivial = constraint.is_trivial
    kernel = None
    keys = []
    if not trivial:
        kernel = cached_vector_kernel(constraint)
        if kernel is None:
            return None
        keys = referenced_attributes(constraint.ast)
        if any(obj not in _R_OBJECTS and obj not in _V_OBJECTS
               for obj, _ in keys):
            return None

    ra_idx, rb_idx, exists_fwd, exists_bwd = compiled.index_arrays()
    selection = np.asarray(rows, dtype=np.int64)
    sub_ra = ra_idx[selection]
    sub_rb = rb_idx[selection]
    sub_fwd = exists_fwd[selection]
    sub_bwd = exists_bwd[selection]

    column_sources = {"rEdge": (4, 5), "rSource": (6, 7), "rTarget": (7, 6)}
    env_fwd = {}
    env_bwd = {}
    for key in keys:
        obj, attr = key
        if obj not in column_sources:
            continue
        fwd_source, bwd_source = column_sources[obj]
        fwd = compiled.column(fwd_source, attr)
        bwd = fwd if bwd_source == fwd_source else compiled.column(bwd_source, attr)
        if fwd is None or bwd is None:
            return None
        env_fwd[key] = (fwd[0][selection], fwd[1][selection])
        env_bwd[key] = (bwd[0][selection], bwd[1][selection])

    edge_scalars = _query_edge_scalars(query, keys, pair_edges)
    if edge_scalars is None:
        return None

    num_hosts = len(indexer)
    allowed_bools: Dict[NodeId, object] = {}

    def allowed_lookup(node):
        lookup = allowed_bools.get(node)
        if lookup is None:
            lookup = _mask_to_bool_array(allowed_masks.get(node, 0), num_hosts)
            allowed_bools[node] = lookup
        return lookup

    evaluations = 0
    matched_by_pair = {}
    for (qa, qb), edges_between in pair_edges.items():
        alive = allowed_lookup(qa)[sub_ra] & allowed_lookup(qb)[sub_rb]
        for q_source, q_target in edges_between:
            forward = q_source == qa
            evaluable = alive & (sub_fwd if forward else sub_bwd)
            if trivial:
                alive = evaluable
                continue
            evaluations += int(np.count_nonzero(evaluable))
            env = dict(env_fwd if forward else env_bwd)
            env.update(edge_scalars[(q_source, q_target)])
            value, bad = kernel(env)
            alive = evaluable & np.logical_and(value, np.logical_not(bad))
        matched_by_pair[(qa, qb)] = alive
    return matched_by_pair, evaluations


def patch_filters(filters: FilterMatrices, query: QueryNetwork,
                  hosting: HostingNetwork, constraint: ConstraintExpression,
                  node_constraint: Optional[ConstraintExpression] = None,
                  compiled: Optional[HostingCompile] = None,
                  delta: Optional[NetworkDelta] = None,
                  max_row_fraction: Optional[float] = None,
                  deadline=None) -> Optional[FilterMatrices]:
    """Re-derive *filters* for an attr-only hosting delta by patching rows.

    Re-evaluates the edge constraint only for the hosting-arc rows the delta
    touched (and the node constraint only for the touched hosting nodes),
    then fixes exactly the affected bits of the ``F``/``F̄`` cells and
    re-derives the per-node candidate masks.  The result is **element
    identical** to :func:`build_filters` run from scratch on the mutated
    network — same cells, same bits, same fallbacks — which is the property
    the test suite verifies over randomised mutation sequences.

    Returns a *new* :class:`FilterMatrices` (the input is never mutated, so
    concurrent executes against the old plan stay safe), or ``None`` when
    patching does not apply: no delta (journal overflow), a structural
    delta, a foreign/stale hosting compile, or a delta so large that a full
    rebuild is cheaper (*max_row_fraction*).

    Cumulative statistics: ``constraint_evaluations`` / ``build_seconds``
    accumulate the patch work on top of the original build's, and
    ``patches`` / ``patched_rows`` record how much incremental work produced
    the current state.
    """
    if delta is None or delta.structural:
        return None
    if compiled is None:
        compiled = compile_hosting(hosting)
    if compiled.hosting is not hosting or compiled.stale:
        return None
    indexer = filters.host_indexer
    if compiled.indexer.nodes != indexer.nodes:
        return None   # dense index drifted; masks would be misaligned
    if delta.empty:
        return filters

    # Relevance filtering: only mutations that wrote an attribute one of the
    # expressions actually reads can flip any bit.  Everything else — load
    # jitter under a delay constraint, bookkeeping attributes — re-derives
    # to the exact same filters, so those rows are skipped outright.
    trivial = constraint.is_trivial
    edge_attrs_read: set = set()
    node_attrs_read: set = set()
    if not trivial:
        for obj, attr in referenced_attributes(constraint.ast):
            if obj == "rEdge":
                edge_attrs_read.add(attr)
            elif obj in ("rSource", "rTarget"):
                node_attrs_read.add(attr)
    screening = node_constraint is not None and not node_constraint.is_trivial
    screen_attrs_read: set = set()
    if screening:
        for obj, attr in referenced_attributes(node_constraint.ast):
            if obj == "rNode":
                screen_attrs_read.add(attr)

    relevant_edges = [edge for edge, names in delta.touched_edge_attrs.items()
                      if names & edge_attrs_read]
    # A re-screened host gates `matched` on every row it appears in, so
    # screening-relevant nodes join the row set alongside rSource/rTarget
    # reads.
    screen_nodes = [node for node, names in delta.touched_node_attrs.items()
                    if names & screen_attrs_read]
    relevant_nodes = set(screen_nodes)
    relevant_nodes.update(node for node, names
                          in delta.touched_node_attrs.items()
                          if names & node_attrs_read)

    if not relevant_edges and not relevant_nodes:
        return filters   # the delta never touched anything the filters read

    if max_row_fraction is None:
        max_row_fraction = PATCH_ROW_FRACTION   # resolved late: a tunable knob
    rows = compiled.rows_for(nodes=relevant_nodes, edges=relevant_edges)
    if len(rows) > max_row_fraction * max(1, len(compiled.host_pair_info)):
        return None

    stopwatch = Stopwatch().start()
    patched = FilterMatrices(
        host_indexer=indexer,
        match_masks=dict(filters.match_masks),
        non_match_masks=dict(filters.non_match_masks),
        node_candidate_masks={},
        constraint_evaluations=filters.constraint_evaluations,
        build_seconds=filters.build_seconds,
        node_allowed_masks=dict(filters.node_allowed_masks),
        records_non_matches=filters.records_non_matches,
        patches=filters.patches + 1,
        patched_rows=filters.patched_rows + len(rows),
    )

    # Re-screen the relevantly-touched hosting nodes against the node
    # constraint; this both gates the row re-evaluation below and refreshes
    # the expression-(1) fallback for query nodes left without any match.
    allowed_masks = patched.node_allowed_masks
    if screening and screen_nodes:
        touched_hosts = [(host, hosting.node_attrs(host), indexer.bit(host))
                         for host in sorted(screen_nodes, key=str)
                         if hosting.has_node(host)]
        node_evaluate = node_constraint.evaluate
        for query_node in query.nodes():
            context = {"vNode": query.node_attrs(query_node), "rNode": None}
            mask = allowed_masks.get(query_node, 0)
            for host, attrs, bit in touched_hosts:
                context["rNode"] = attrs
                if node_evaluate(context):
                    mask |= bit
                else:
                    mask &= ~bit
            allowed_masks[query_node] = mask

    info = compiled.host_pair_info
    match_masks = patched.match_masks
    non_match_masks = patched.non_match_masks
    record_non_matches = patched.records_non_matches
    row_info = [info[i] for i in rows]

    pair_edges: Dict[Tuple[NodeId, NodeId], List[Edge]] = {}
    for q_source, q_target in query.edges():
        qa, qb = sorted((q_source, q_target), key=str)
        pair_edges.setdefault((qa, qb), []).append((q_source, q_target))

    #: Cell keys any verdict wrote; the word-backing patch below rewrites
    #: exactly these rows instead of re-encoding the whole tables.
    touched_keys: Set[FilterKey] = set()

    def apply_verdict(qa: NodeId, qb: NodeId, row: Tuple, matched) -> None:
        """Fix the four cell bits one row contributes to one pair."""
        ra, rb, bit_a, bit_b = row[0], row[1], row[2], row[3]
        key_ab = (qa, ra, qb)
        key_ba = (qb, rb, qa)
        touched_keys.add(key_ab)
        touched_keys.add(key_ba)
        if matched:
            _set_cell_bit(match_masks, key_ab, bit_b)
            _set_cell_bit(match_masks, key_ba, bit_a)
            if record_non_matches:
                _clear_cell_bit(non_match_masks, key_ab, bit_b)
                _clear_cell_bit(non_match_masks, key_ba, bit_a)
        else:
            _clear_cell_bit(match_masks, key_ab, bit_b)
            _clear_cell_bit(match_masks, key_ba, bit_a)
            if record_non_matches:
                _set_cell_bit(non_match_masks, key_ab, bit_b)
                _set_cell_bit(non_match_masks, key_ba, bit_a)

    # Fast path: one batch kernel evaluation over just the affected rows.
    vectorized = _patch_pairs_vectorized(query, constraint, pair_edges,
                                         compiled, rows, allowed_masks,
                                         indexer)
    if vectorized is not None:
        matched_by_pair, evaluations = vectorized
        for (qa, qb), matched_rows in matched_by_pair.items():
            if deadline is not None:
                deadline.check()
            for row, matched in zip(row_info, matched_rows):
                apply_verdict(qa, qb, row, matched)
    else:
        # Scalar fallback, mirroring the scalar pass of build_filters
        # exactly (same contexts, same short-circuits).
        evaluate = constraint.evaluate
        evaluations = 0
        for (qa, qb), edges_between in pair_edges.items():
            if deadline is not None:
                deadline.check()
            allowed_a = allowed_masks.get(qa, 0)
            allowed_b = allowed_masks.get(qb, 0)
            edge_contexts = []
            for q_source, q_target in edges_between:
                edge_contexts.append((q_source == qa, {
                    "vEdge": query.edge_attrs(q_source, q_target),
                    "vSource": query.node_attrs(q_source),
                    "vTarget": query.node_attrs(q_target),
                    "rEdge": None, "rSource": None, "rTarget": None,
                }))
            for row in row_info:
                ra, rb, bit_a, bit_b, attrs_ab, attrs_ba, attrs_a, attrs_b = row
                matched = bool(allowed_a & bit_a) and bool(allowed_b & bit_b)
                if matched:
                    for forward, context in edge_contexts:
                        r_edge_attrs = attrs_ab if forward else attrs_ba
                        if r_edge_attrs is None:
                            matched = False
                            break
                        if trivial:
                            continue
                        evaluations += 1
                        context["rEdge"] = r_edge_attrs
                        context["rSource"] = attrs_a if forward else attrs_b
                        context["rTarget"] = attrs_b if forward else attrs_a
                        if not evaluate(context):
                            matched = False
                            break
                apply_verdict(qa, qb, row, matched)

    # Candidate masks re-derive from the patched cells: a host is an
    # expression-(1) candidate for a query node iff some cell it is placed
    # in survives; nodes with no surviving match fall back to the
    # node-screening mask, exactly as a from-scratch build does.
    bit_of = indexer.bit
    derived: Dict[NodeId, int] = {}
    for (placed_query, placed_host, _next_query), mask in match_masks.items():
        if mask:
            derived[placed_query] = derived.get(placed_query, 0) | bit_of(placed_host)
    node_masks = patched.node_candidate_masks
    for node in query.nodes():
        node_masks[node] = derived.get(node, 0) or allowed_masks.get(node, 0)

    # Word-backing carry-over: when the base snapshot already materialised
    # its word arrays, patch them row-wise (copy-on-write) instead of
    # leaving the patched snapshot to re-encode every cell on first kernel
    # or pickle use.
    base_words = filters._words_cache
    if base_words is not None and HAVE_NUMPY:
        patched._words_cache = base_words.patched(patched, touched_keys)

    patched.constraint_evaluations += evaluations
    patched.build_seconds += stopwatch.stop()
    return patched
