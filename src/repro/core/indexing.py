"""Dense node indexing and bitmask encoding for the candidate-set algebra.

The filter matrices and the search inner loops historically manipulated
Python ``set`` objects keyed by arbitrary hashable node ids.  Re-encoding
those sets as integer bitmasks over a *dense index* turns every intersection,
union and subtraction of the hot path into single-instruction-per-word
bitwise arithmetic on Python ints:

* expression (2)'s intersection chain becomes ``mask & cell``;
* the "minus hosts already in use" subtraction becomes ``mask & ~used_mask``;
* candidate counting becomes ``mask.bit_count()``.

:class:`NodeIndexer` owns the id ↔ index mapping.  Indices are assigned in
``sorted(nodes, key=str)`` order, so decoding a mask by ascending bit index
yields exactly the ``sorted(candidates, key=str)`` order the pre-bitset
search used — the mapping streams produced by ECF/RWB/LNS stay byte-for-byte
identical to the set-based engine.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Set, Tuple

NodeId = Hashable

#: Fixed mask-word width of the compiled search kernel.  Unbounded Python
#: ints remain the in-process representation (arbitrary-precision ``&``/``|``
#: keep the accessor API unchanged), but across process boundaries and inside
#: the kernel the same masks travel as little-endian arrays of this many bits
#: per word (see :mod:`repro.core.words`).
WORD_BITS = 64


def word_count(num_bits: int) -> int:
    """How many fixed-width words cover *num_bits* mask bits (at least one,
    so degenerate empty indexes still yield well-formed word arrays)."""
    return max(1, (num_bits + WORD_BITS - 1) // WORD_BITS)


class NodeIndexer:
    """A stable, dense mapping from node ids to contiguous bit positions.

    Parameters
    ----------
    nodes:
        The node universe.  Bit positions follow ``sorted(nodes, key=str)``
        (ties between distinct ids with equal ``str`` keep the input order,
        which is the network's deterministic insertion order), so ascending
        bit order *is* the canonical candidate order of the search.
    """

    __slots__ = ("_nodes", "_index")

    def __init__(self, nodes: Iterable[NodeId] = ()) -> None:
        self._nodes: Tuple[NodeId, ...] = tuple(sorted(nodes, key=str))
        self._index = {node: i for i, node in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):
            raise ValueError("duplicate node ids cannot be densely indexed")

    # ------------------------------------------------------------------ #
    # Index protocol
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All indexed nodes in bit order (ascending ``str`` order)."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def index_of(self, node: NodeId) -> int:
        """The bit position of *node* (raises ``KeyError`` if unindexed)."""
        return self._index[node]

    def node_at(self, index: int) -> NodeId:
        """The node occupying bit position *index*."""
        return self._nodes[index]

    def bit(self, node: NodeId) -> int:
        """The single-bit mask ``1 << index_of(node)``."""
        return 1 << self._index[node]

    @property
    def full_mask(self) -> int:
        """The mask with every indexed node's bit set."""
        return (1 << len(self._nodes)) - 1

    # ------------------------------------------------------------------ #
    # Mask encoding / decoding
    # ------------------------------------------------------------------ #

    def encode(self, nodes: Iterable[NodeId]) -> int:
        """The bitmask over *nodes*.

        Ids outside the index are ignored: subtracting or intersecting an
        unknown node is a no-op under set semantics, and tolerating them
        keeps the decode views drop-in compatible with the old set API.
        """
        index = self._index
        mask = 0
        for node in nodes:
            i = index.get(node)
            if i is not None:
                mask |= 1 << i
        return mask

    def iter_indices(self, mask: int) -> Iterator[int]:
        """Yield the set bit positions of *mask* in ascending order."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def decode(self, mask: int) -> List[NodeId]:
        """The nodes of *mask* in ascending bit order (= ``sorted(key=str)``)."""
        nodes = self._nodes
        return [nodes[i] for i in self.iter_indices(mask)]

    def decode_set(self, mask: int) -> Set[NodeId]:
        """The nodes of *mask* as a plain set."""
        nodes = self._nodes
        return {nodes[i] for i in self.iter_indices(mask)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NodeIndexer over {len(self._nodes)} nodes>"


def popcount(mask: int) -> int:
    """Number of set bits in *mask* (the cardinality of the encoded set)."""
    return mask.bit_count()
