"""Compiled search kernel for the ECF/RWB inner loops.

PR 2's bitset engine still walks the ECF stack in pure Python and does its
candidate algebra on unbounded ints — search only got ~2x where filter
construction got ~29x.  This module moves the explicit-stack inner loops
behind a backend switch:

* ``python`` — a chunked pure-Python driver over the same int masks, but
  with the per-expansion dict/attribute traffic of the legacy loop hoisted
  into precomputed row tables (a :class:`KernelPlan`).  Always available.
* ``numba`` — the same algorithm transliterated to ``numba.njit`` over
  fixed-width ``uint64`` word arrays (:mod:`repro.core.words`), compiled
  ``nogil`` so thread-based shards can actually scale.  Selected only when
  numba imports *and* passes a tiny compile-and-verify self-test; otherwise
  the python backend takes over with a warning.
* ``legacy`` — disable the kernel entirely; callers fall back to the PR 2
  loops.  This is the reference the parity gates compare against.

Selection happens once at import from ``REPRO_KERNEL`` (``auto`` | ``python``
| ``numba`` | ``legacy``; default ``auto`` = numba when available, else
python) and can be overridden programmatically via :func:`set_backend` /
:func:`forced`.

**Byte-identity contract.**  Whatever the backend, the mapping stream and
the evaluation counters (``nodes_expanded`` / ``candidates_considered`` /
``backtracks``) are identical to the legacy loops: candidates are tried
lowest-bit-first (the canonical ``sorted(key=str)`` order), expansions are
counted before the emptiness test, and a result cap pauses the kernel at
exactly the capping leaf.  The one sanctioned divergence is deadline
granularity: the legacy loop polls the deadline every node, the kernel polls
between chunks (a few thousand expansions), so a *timed-out* run may stop a
chunk-width later — never a completed one.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from repro.constraints.vectorizer import HAVE_NUMPY, np
from repro.core.indexing import word_count
from repro.core.words import mask_to_words, pack_masks

__all__ = [
    "active_backend",
    "set_backend",
    "forced",
    "require_backend",
    "describe",
    "plan_for",
    "ecf_search",
    "RwbCursor",
    "KernelPlan",
    "HAVE_NUMBA",
]

#: Expansions per kernel chunk before control returns to Python for the
#: deadline/cancellation poll.  Small enough that a cancel lands within
#: milliseconds, large enough that the poll is invisible in profiles.
CHUNK_STEPS = 2048
#: Leaf buffer per chunk; full-enumeration workloads flush mappings to the
#: context in batches of this size (in discovery order).
CHUNK_LEAVES = 256

_DONE = 0
_PAUSED = 1

_ENV_VAR = "REPRO_KERNEL"
_VALID = ("auto", "python", "numba", "legacy")

_BACKEND = "python"
_NUMBA: Optional[dict] = None
_NUMBA_LOAD_TRIED = False
_LOCK = threading.Lock()


# ---------------------------------------------------------------------- #
# Backend selection
# ---------------------------------------------------------------------- #

def _load_numba() -> Optional[dict]:
    """Compile (or load from ``NUMBA_CACHE_DIR``) and self-verify the
    njit kernels.  Returns the callable table, or ``None`` with a warning
    when numba is missing or the self-test fails."""
    global _NUMBA, _NUMBA_LOAD_TRIED
    with _LOCK:
        if _NUMBA is not None:
            return _NUMBA
        if _NUMBA_LOAD_TRIED:
            return None
        _NUMBA_LOAD_TRIED = True
        if not HAVE_NUMPY:
            return None
        try:
            import numba
        except Exception:
            return None
        try:
            table = _compile_numba(numba)
            _self_test(table)
        except Exception as exc:  # pragma: no cover - depends on numba build
            warnings.warn(
                f"numba search kernel failed its compile/self-test ({exc!r}); "
                f"using the pure-python kernel instead", RuntimeWarning,
                stacklevel=3)
            return None
        _NUMBA = table
        return table


def _resolve(name: str) -> str:
    """Map a requested backend name to the one actually available."""
    if name == "legacy" or name == "python":
        return name
    if name == "numba":
        if _load_numba() is None:
            warnings.warn(
                "REPRO_KERNEL=numba requested but the numba kernel is "
                "unavailable; falling back to the python kernel",
                RuntimeWarning, stacklevel=3)
            return "python"
        return "numba"
    # auto: prefer the compiled kernel, silently fall back.
    return "numba" if _load_numba() is not None else "python"


def _init_from_env() -> str:
    raw = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if raw not in _VALID:
        warnings.warn(
            f"unknown {_ENV_VAR}={raw!r} (expected one of {_VALID}); "
            f"using 'auto'", RuntimeWarning)
        raw = "auto"
    return _resolve(raw)


def active_backend() -> str:
    """The backend in use: ``"python"``, ``"numba"`` or ``"legacy"``."""
    return _BACKEND


def set_backend(name: str) -> str:
    """Switch backends at runtime (tests, benchmarks).  Returns the backend
    actually selected — asking for ``numba`` without numba yields
    ``python`` with a warning, mirroring the env-var path.

    The switch is process-global and unsynchronised: searches already in
    flight on other threads (``REPRO_SHARD_BACKEND=thread`` shards) read
    the backend per call and would straddle the flip.  Only switch while
    no search is running."""
    if name not in _VALID:
        raise ValueError(f"unknown kernel backend {name!r}; "
                         f"expected one of {_VALID}")
    global _BACKEND
    _BACKEND = _resolve(name)
    return _BACKEND


@contextmanager
def forced(name: str):
    """Temporarily pin the backend (``legacy`` runs the PR 2 loops).

    Same caveat as :func:`set_backend`: not safe while searches are in
    flight on other threads — both the pin and the restore are global."""
    previous = _BACKEND
    set_backend(name)
    try:
        yield _BACKEND
    finally:
        set_backend(previous)


def require_backend(name: str) -> None:
    """Assert the active backend is *name* — CI calls this so a numba job
    that silently fell back to python fails loudly instead of green-washing
    the matrix."""
    if _BACKEND != name:
        raise RuntimeError(
            f"kernel backend is {_BACKEND!r}, expected {name!r} "
            f"(REPRO_KERNEL={os.environ.get(_ENV_VAR, '')!r})")


def describe() -> Dict[str, object]:
    """Diagnostic snapshot (surfaced by ``EmbeddingPlan.describe`` and CI)."""
    return {
        "backend": _BACKEND,
        "numba_available": HAVE_NUMBA,
        "env": os.environ.get(_ENV_VAR),
        "chunk_steps": CHUNK_STEPS,
        "chunk_leaves": CHUNK_LEAVES,
    }


# ---------------------------------------------------------------------- #
# Kernel plans: the search-ready view of one (filters, order) pair
# ---------------------------------------------------------------------- #

class KernelPlan:
    """Precomputed row tables for one ``(filters, order, prior)`` triple.

    The legacy loop pays a tuple-hash dict lookup per (neighbour, host)
    pair per expansion.  The plan pays them all once: for every depth and
    every prior neighbour it materialises a dense ``host index -> filter
    row`` table, so the inner loop is list indexing only.  Rows index into
    ``masks_int`` (python backend) and into the ``uint64`` word array of
    ``filters.words().match`` (numba backend) — both enumerate
    ``match_masks`` in the same order, so row ids agree by construction.

    Plans are derived caches: they are rebuilt on demand and never pickled
    (shards rebuild from the shipped word arrays in their own process).
    """

    __slots__ = ("filters", "order", "prior", "indexer", "host_nodes",
                 "depth_of", "n", "num_hosts", "node_ints", "cell_tables",
                 "masks_int", "_words")

    def __init__(self, filters, order: Sequence, prior: Sequence) -> None:
        self.filters = filters
        self.order = tuple(order)
        self.prior = tuple(tuple(p) for p in prior)
        self.indexer = filters.host_indexer
        self.host_nodes = self.indexer.nodes
        self.depth_of = {node: d for d, node in enumerate(self.order)}
        self.n = len(self.order)
        self.num_hosts = len(self.host_nodes)
        match_masks = filters.match_masks
        row_index = {key: r for r, key in enumerate(match_masks)}
        self.masks_int: List[int] = list(match_masks.values())
        node_masks = filters.node_candidate_masks
        self.node_ints: List[int] = [node_masks.get(node, 0)
                                     for node in self.order]
        hosts = self.host_nodes
        tables = []
        for depth, node in enumerate(self.order):
            neighbors = self.prior[depth]
            if not neighbors:
                tables.append(None)
                continue
            slots = []
            for neighbor in neighbors:
                get = row_index.get
                rows = [get((neighbor, host, node), -1) for host in hosts]
                slots.append((self.depth_of[neighbor], rows))
            tables.append(tuple(slots))
        self.cell_tables = tuple(tables)
        self._words = None

    def words(self):
        """The numba-side arrays, built once: ``(match_words, node_words,
        prior_off, slot_depth, slot_rows, num_words)``."""
        cached = self._words
        if cached is None:
            nw = word_count(self.num_hosts)
            match_words = self.filters.words().match.words
            node_words = pack_masks(self.node_ints, nw)
            offsets = [0]
            slot_depth: List[int] = []
            slot_rows: List[List[int]] = []
            for slots in self.cell_tables:
                if slots:
                    for nb_depth, rows in slots:
                        slot_depth.append(nb_depth)
                        slot_rows.append(rows)
                offsets.append(len(slot_depth))
            width = max(1, self.num_hosts)
            rows_arr = (np.asarray(slot_rows, dtype=np.int64)
                        if slot_rows else np.zeros((0, width), dtype=np.int64))
            cached = (np.ascontiguousarray(match_words, dtype=np.uint64),
                      node_words,
                      np.asarray(offsets, dtype=np.int64),
                      np.asarray(slot_depth, dtype=np.int64),
                      rows_arr,
                      nw)
            self._words = cached
        return cached


_PLAN_ATTR = "_kernel_plan"


def plan_for(filters, order: Sequence, prior: Sequence) -> Optional[KernelPlan]:
    """The cached :class:`KernelPlan` for this triple, or ``None`` when the
    kernel is disabled (``legacy`` backend) or the plan is degenerate."""
    if _BACKEND == "legacy" or not order:
        return None
    plan = getattr(filters, _PLAN_ATTR, None)
    if (plan is None or plan.order != tuple(order)
            or plan.prior != tuple(tuple(p) for p in prior)):
        plan = KernelPlan(filters, order, prior)
        try:
            setattr(filters, _PLAN_ATTR, plan)
        except AttributeError:  # pragma: no cover - slotted stand-ins
            pass
    return plan


# ---------------------------------------------------------------------- #
# Shared candidate algebra (python ints)
# ---------------------------------------------------------------------- #

def _candidates_int(plan: KernelPlan, depth: int, assign_idx, used: int) -> int:
    """Expression (2)/(1) over the plan's row tables, minus used hosts."""
    slots = plan.cell_tables[depth]
    if slots is None:
        mask = plan.node_ints[depth]
    else:
        mask = -1
        masks_int = plan.masks_int
        for nb_depth, rows in slots:
            row = rows[assign_idx[nb_depth]]
            if row < 0:
                return 0
            mask &= masks_int[row]
            if not mask:
                return 0
    return mask & ~used


# ---------------------------------------------------------------------- #
# ECF: chunked explicit-stack drivers
# ---------------------------------------------------------------------- #

def _ecf_chunk_ints(remaining: List[int], placed: List[int],
                    assign_idx: List[int], depth: int, start_depth: int,
                    n: int, used: int, node_ints, cell_tables, masks_int,
                    max_steps: int, leaves: list, max_leaves: int):
    """One chunk of the explicit-stack DFS on int masks.

    Mirrors ``ECF._search`` exactly — lowest-bit-first trials, expansions
    counted before the emptiness test, a backtrack counted per freshly
    empty child — but buffers leaves (as assignment-index rows) instead of
    recording them inline, and returns after *max_steps* expansions or
    *max_leaves* leaves so the driver can poll the deadline and flush.
    """
    steps = expanded = considered = backtracks = 0
    last = n - 1
    while depth >= start_depth:
        mask = remaining[depth]
        if not mask:
            bit = placed[depth]
            if bit:
                used ^= bit
                placed[depth] = 0
            depth -= 1
            continue
        low = mask & -mask
        remaining[depth] = mask ^ low
        prev = placed[depth]
        if prev:
            used ^= prev
        placed[depth] = low
        used |= low
        assign_idx[depth] = low.bit_length() - 1
        if depth == last:
            leaves.append(assign_idx[start_depth:])
            if len(leaves) >= max_leaves:
                return _PAUSED, depth, used, expanded, considered, backtracks
            continue
        depth += 1
        slots = cell_tables[depth]
        if slots is None:
            child = node_ints[depth] & ~used
        else:
            child = -1
            for nb_depth, rows in slots:
                row = rows[assign_idx[nb_depth]]
                if row < 0:
                    child = 0
                    break
                child &= masks_int[row]
                if not child:
                    break
            if child:
                child &= ~used
        expanded += 1
        considered += child.bit_count()
        remaining[depth] = child
        placed[depth] = 0
        if not child:
            backtracks += 1
        steps += 1
        if steps >= max_steps:
            return _PAUSED, depth, used, expanded, considered, backtracks
    return _DONE, depth, used, expanded, considered, backtracks


def _leaf_budget(context, n_mapped_cap: Optional[int]) -> int:
    """Leaves the next chunk may buffer: the result cap (minus what is
    already recorded) bounds it so the kernel pauses at exactly the capping
    leaf and never explores — or counts — past what the legacy loop would."""
    if n_mapped_cap is None:
        return CHUNK_LEAVES
    return max(1, min(CHUNK_LEAVES, n_mapped_cap - len(context.mappings)))


def ecf_search(context, plan: KernelPlan, start_depth: int = 0,
               assignment: Optional[dict] = None, used_mask: int = 0,
               start_mask: Optional[int] = None) -> bool:
    """Kernel-backed equivalent of ``ECF._search`` (same contract: ``False``
    iff the search stopped early on the result cap)."""
    # The legacy loop checks the deadline before its first expansion; an
    # already-expired budget must surface zero mappings here too, not a
    # chunk's worth.  Mid-run granularity stays chunk-width (sanctioned).
    context.check_deadline()
    if _BACKEND == "numba" and _NUMBA is not None:
        return _ecf_search_words(context, plan, start_depth, assignment,
                                 used_mask, start_mask)
    return _ecf_search_ints(context, plan, start_depth, assignment,
                            used_mask, start_mask)


def _prefix_indices(plan: KernelPlan, prefix: dict, assign_idx) -> None:
    index_of = plan.indexer.index_of
    depth_of = plan.depth_of
    for node, host in prefix.items():
        assign_idx[depth_of[node]] = index_of(host)


def _ecf_search_ints(context, plan, start_depth, assignment, used_mask,
                     start_mask) -> bool:
    n = plan.n
    stats = context.stats
    prefix = dict(assignment) if assignment else {}
    assign_idx = [-1] * n
    _prefix_indices(plan, prefix, assign_idx)

    if start_mask is None:
        mask = _candidates_int(plan, start_depth, assign_idx, used_mask)
        stats.nodes_expanded += 1
        stats.candidates_considered += mask.bit_count()
        if not mask:
            stats.backtracks += 1
            return True
    else:
        mask = start_mask    # expansion already counted by _shard_specs
        if not mask:
            return True

    remaining = [0] * n
    placed = [0] * n
    remaining[start_depth] = mask
    depth = start_depth
    used = used_mask
    order = plan.order
    host_nodes = plan.host_nodes
    cap = context.max_results
    record_mapping = context.record_mapping

    while True:
        leaves: list = []
        status, depth, used, expanded, considered, backtracks = \
            _ecf_chunk_ints(remaining, placed, assign_idx, depth, start_depth,
                            n, used, plan.node_ints, plan.cell_tables,
                            plan.masks_int, CHUNK_STEPS, leaves,
                            _leaf_budget(context, cap))
        stats.nodes_expanded += expanded
        stats.candidates_considered += considered
        stats.backtracks += backtracks
        for row in leaves:
            mapping = dict(prefix)
            for d in range(start_depth, n):
                mapping[order[d]] = host_nodes[row[d - start_depth]]
            if record_mapping(mapping):
                return False
        if status == _DONE:
            return True
        context.check_deadline()


def _ecf_search_words(context, plan, start_depth, assignment, used_mask,
                      start_mask) -> bool:
    kernels = _NUMBA
    match_words, node_words, prior_off, slot_depth, slot_rows, nw = plan.words()
    n = plan.n
    stats = context.stats
    prefix = dict(assignment) if assignment else {}
    assign_idx = np.full(n, -1, dtype=np.int64)
    _prefix_indices(plan, prefix, assign_idx)

    if start_mask is None:
        mask = _candidates_int(plan, start_depth, assign_idx, used_mask)
        stats.nodes_expanded += 1
        stats.candidates_considered += mask.bit_count()
        if not mask:
            stats.backtracks += 1
            return True
    else:
        mask = start_mask
        if not mask:
            return True

    remaining = np.zeros((n, nw), dtype=np.uint64)
    remaining[start_depth] = mask_to_words(mask, nw)
    placed_idx = np.full(n, -1, dtype=np.int64)
    used = mask_to_words(used_mask, nw)
    out = np.zeros(5, dtype=np.int64)
    depth = start_depth
    order = plan.order
    host_nodes = plan.host_nodes
    cap = context.max_results
    record_mapping = context.record_mapping
    ecf_chunk = kernels["ecf"]

    while True:
        max_leaves = _leaf_budget(context, cap)
        leaves = np.empty((max_leaves, n), dtype=np.int64)
        status = ecf_chunk(remaining, placed_idx, assign_idx, used,
                           node_words, prior_off, slot_depth, slot_rows,
                           match_words, depth, start_depth, n, nw,
                           CHUNK_STEPS, leaves, max_leaves, out)
        depth = int(out[0])
        stats.nodes_expanded += int(out[1])
        stats.candidates_considered += int(out[2])
        stats.backtracks += int(out[3])
        for i in range(int(out[4])):
            mapping = dict(prefix)
            for d in range(start_depth, n):
                mapping[order[d]] = host_nodes[int(leaves[i, d])]
            if record_mapping(mapping):
                return False
        if status == _DONE:
            return True
        context.check_deadline()


# ---------------------------------------------------------------------- #
# RWB: kernel-backed candidate cursor
# ---------------------------------------------------------------------- #

class RwbCursor:
    """Incremental candidate algebra for the randomised walk.

    RWB's *control* loop (shuffles, placements) must stay in Python — its
    stream identity is pinned to ``random.Random`` — but its candidate-set
    computation is the same expression-(2) chain as ECF and runs on the
    kernel tables here.  ``candidates(depth)`` returns host *indices* in
    ascending order, which is exactly the decode order the legacy walk
    shuffles, so the seeded permutations coincide.
    """

    __slots__ = ("_plan", "_numba", "_used", "_assign", "_scratch", "_out")

    def __init__(self, plan: KernelPlan) -> None:
        self._plan = plan
        self._numba = _BACKEND == "numba" and _NUMBA is not None
        if self._numba:
            _, _, _, _, _, nw = plan.words()
            self._used = np.zeros(nw, dtype=np.uint64)
            self._assign = np.full(plan.n, -1, dtype=np.int64)
            self._scratch = np.zeros(nw, dtype=np.uint64)
            self._out = np.empty(max(1, plan.num_hosts), dtype=np.int64)
        else:
            self._used = 0
            self._assign = [-1] * plan.n
            self._scratch = self._out = None

    def place(self, depth: int, host_index: int) -> None:
        if self._numba:
            self._used[host_index >> 6] |= np.uint64(1 << (host_index & 63))
        else:
            self._used |= 1 << host_index
        self._assign[depth] = host_index

    def unplace(self, depth: int, host_index: int) -> None:
        if self._numba:
            self._used[host_index >> 6] ^= np.uint64(1 << (host_index & 63))
        else:
            self._used ^= 1 << host_index
        self._assign[depth] = -1

    def candidates(self, depth: int) -> List[int]:
        """Untried host indices for ``order[depth]``, ascending."""
        plan = self._plan
        if self._numba:
            match_words, node_words, prior_off, slot_depth, slot_rows, nw = \
                plan.words()
            count = _NUMBA["rwb"](depth, self._assign, self._used, node_words,
                                  prior_off, slot_depth, slot_rows,
                                  match_words, nw, self._scratch, self._out)
            return [int(h) for h in self._out[:count]]
        mask = _candidates_int(plan, depth, self._assign, self._used)
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out


# ---------------------------------------------------------------------- #
# numba backend: compile + self-test
# ---------------------------------------------------------------------- #

if HAVE_NUMPY:
    # uint64 constants as module globals: numba freezes globals at compile
    # time, and keeping every operand explicitly uint64 avoids the silent
    # uint64/int64 -> float64 promotion trap inside njit code.
    _U0 = np.uint64(0)
    _U1 = np.uint64(1)
    _P5 = np.uint64(0x5555555555555555)
    _P3 = np.uint64(0x3333333333333333)
    _PF = np.uint64(0x0F0F0F0F0F0F0F0F)
    _PH = np.uint64(0x0101010101010101)
    _S32 = np.uint64(32)
    _S16 = np.uint64(16)
    _S8 = np.uint64(8)
    _S4 = np.uint64(4)
    _S2 = np.uint64(2)
    _S1 = np.uint64(1)
    _S56 = np.uint64(56)
    _M32 = np.uint64(0xFFFFFFFF)
    _M16 = np.uint64(0xFFFF)
    _M8 = np.uint64(0xFF)
    _M4 = np.uint64(0xF)
    _M2 = np.uint64(0x3)
    _M1 = np.uint64(0x1)


def _nb_popcount64(x):
    x = x - ((x >> _S1) & _P5)
    x = (x & _P3) + ((x >> _S2) & _P3)
    x = (x + (x >> _S4)) & _PF
    return np.int64((x * _PH) >> _S56)


def _nb_ctz64(x):
    # x is nonzero; binary search over the low bits.
    n = 0
    if x & _M32 == _U0:
        n += 32
        x >>= _S32
    if x & _M16 == _U0:
        n += 16
        x >>= _S16
    if x & _M8 == _U0:
        n += 8
        x >>= _S8
    if x & _M4 == _U0:
        n += 4
        x >>= _S4
    if x & _M2 == _U0:
        n += 2
        x >>= _S2
    if x & _M1 == _U0:
        n += 1
    return n


def _nb_ecf_chunk(remaining, placed_idx, assign_idx, used, node_words,
                  prior_off, slot_depth, slot_rows, match_words, depth,
                  start_depth, n, num_words, max_steps, leaves, max_leaves,
                  out):
    # Word-array transliteration of _ecf_chunk_ints; out receives
    # (depth, expanded, considered, backtracks, n_leaves).
    steps = 0
    expanded = 0
    considered = 0
    backtracks = 0
    n_leaves = 0
    last = n - 1
    while depth >= start_depth:
        w = -1
        for k in range(num_words):
            if remaining[depth, k] != _U0:
                w = k
                break
        if w < 0:
            prev = placed_idx[depth]
            if prev >= 0:
                used[prev >> 6] ^= _U1 << np.uint64(prev & 63)
                placed_idx[depth] = -1
            depth -= 1
            continue
        word = remaining[depth, w]
        b = _nb_ctz64(word)
        remaining[depth, w] = word & (word - _U1)
        host = (w << 6) + b
        prev = placed_idx[depth]
        if prev >= 0:
            used[prev >> 6] ^= _U1 << np.uint64(prev & 63)
        placed_idx[depth] = host
        used[w] |= _U1 << np.uint64(b)
        assign_idx[depth] = host
        if depth == last:
            for d in range(n):
                leaves[n_leaves, d] = assign_idx[d]
            n_leaves += 1
            if n_leaves >= max_leaves:
                out[0] = depth
                out[1] = expanded
                out[2] = considered
                out[3] = backtracks
                out[4] = n_leaves
                return 1
            continue
        depth += 1
        lo = prior_off[depth]
        hi = prior_off[depth + 1]
        count = 0
        if lo == hi:
            for k in range(num_words):
                v = node_words[depth, k] & ~used[k]
                remaining[depth, k] = v
                count += _nb_popcount64(v)
        else:
            alive = True
            row = slot_rows[lo, assign_idx[slot_depth[lo]]]
            if row < 0:
                alive = False
            else:
                for k in range(num_words):
                    remaining[depth, k] = match_words[row, k]
                for j in range(lo + 1, hi):
                    row = slot_rows[j, assign_idx[slot_depth[j]]]
                    if row < 0:
                        alive = False
                        break
                    nz = _U0
                    for k in range(num_words):
                        v = remaining[depth, k] & match_words[row, k]
                        remaining[depth, k] = v
                        nz |= v
                    if nz == _U0:
                        alive = False
                        break
            if alive:
                for k in range(num_words):
                    v = remaining[depth, k] & ~used[k]
                    remaining[depth, k] = v
                    count += _nb_popcount64(v)
            else:
                for k in range(num_words):
                    remaining[depth, k] = _U0
        expanded += 1
        considered += count
        placed_idx[depth] = -1
        if count == 0:
            backtracks += 1
        steps += 1
        if steps >= max_steps:
            out[0] = depth
            out[1] = expanded
            out[2] = considered
            out[3] = backtracks
            out[4] = n_leaves
            return 1
    out[0] = depth
    out[1] = expanded
    out[2] = considered
    out[3] = backtracks
    out[4] = n_leaves
    return 0


def _nb_rwb_candidates(depth, assign_idx, used, node_words, prior_off,
                       slot_depth, slot_rows, match_words, num_words,
                       scratch, out_idx):
    lo = prior_off[depth]
    hi = prior_off[depth + 1]
    if lo == hi:
        for k in range(num_words):
            scratch[k] = node_words[depth, k] & ~used[k]
    else:
        row = slot_rows[lo, assign_idx[slot_depth[lo]]]
        if row < 0:
            return 0
        for k in range(num_words):
            scratch[k] = match_words[row, k]
        for j in range(lo + 1, hi):
            row = slot_rows[j, assign_idx[slot_depth[j]]]
            if row < 0:
                return 0
            nz = _U0
            for k in range(num_words):
                v = scratch[k] & match_words[row, k]
                scratch[k] = v
                nz |= v
            if nz == _U0:
                return 0
        for k in range(num_words):
            scratch[k] &= ~used[k]
    count = 0
    for k in range(num_words):
        word = scratch[k]
        base = k << 6
        while word != _U0:
            out_idx[count] = base + _nb_ctz64(word)
            count += 1
            word &= word - _U1
    return count


def _compile_numba(numba) -> dict:
    # Rebind the module-level kernel sources to their jitted dispatchers so
    # the cross-calls (_nb_ecf_chunk -> _nb_ctz64) resolve to compiled code.
    # Module-level functions keep numba's on-disk cache (NUMBA_CACHE_DIR)
    # usable; locally-defined closures would defeat it.
    global _nb_popcount64, _nb_ctz64, _nb_ecf_chunk, _nb_rwb_candidates
    njit = numba.njit(cache=True, nogil=True)
    if not hasattr(_nb_ecf_chunk, "py_func"):
        _nb_popcount64 = njit(_nb_popcount64)
        _nb_ctz64 = njit(_nb_ctz64)
        _nb_ecf_chunk = njit(_nb_ecf_chunk)
        _nb_rwb_candidates = njit(_nb_rwb_candidates)
    return {"ecf": _nb_ecf_chunk, "rwb": _nb_rwb_candidates}


def _self_test(table: dict) -> None:
    """Run the compiled kernels on a 2-node / 2-host universe and verify
    the mapping order and every counter against hand-computed values."""
    n, hosts, nw = 2, 2, 1
    node_words = np.array([[3], [3]], dtype=np.uint64)
    prior_off = np.array([0, 0, 0], dtype=np.int64)
    slot_depth = np.zeros(0, dtype=np.int64)
    slot_rows = np.zeros((0, hosts), dtype=np.int64)
    match_words = np.zeros((0, nw), dtype=np.uint64)
    remaining = np.zeros((n, nw), dtype=np.uint64)
    remaining[0, 0] = 3
    placed_idx = np.full(n, -1, dtype=np.int64)
    assign_idx = np.full(n, -1, dtype=np.int64)
    used = np.zeros(nw, dtype=np.uint64)
    leaves = np.zeros((8, n), dtype=np.int64)
    out = np.zeros(5, dtype=np.int64)
    status = table["ecf"](remaining, placed_idx, assign_idx, used, node_words,
                          prior_off, slot_depth, slot_rows, match_words,
                          0, 0, n, nw, 64, leaves, 8, out)
    expected = [(0, 1), (1, 0)]
    got = [tuple(int(x) for x in leaves[i]) for i in range(int(out[4]))]
    if (status != 0 or got != expected or int(out[1]) != 2
            or int(out[2]) != 2 or int(out[3]) != 0):
        raise RuntimeError(
            f"ecf kernel self-test mismatch: status={status} leaves={got} "
            f"counters={[int(x) for x in out]}")
    scratch = np.zeros(nw, dtype=np.uint64)
    out_idx = np.zeros(hosts, dtype=np.int64)
    used[0] = 0
    assign_idx[:] = -1
    count = table["rwb"](0, assign_idx, used, node_words, prior_off,
                         slot_depth, slot_rows, match_words, nw, scratch,
                         out_idx)
    if count != 2 or list(out_idx[:2]) != [0, 1]:
        raise RuntimeError(
            f"rwb kernel self-test mismatch: count={count} "
            f"idx={list(out_idx[:count])}")


_BACKEND = _init_from_env()
HAVE_NUMBA = _NUMBA is not None
