"""LNS — Lazy Neighborhood Search (paper §V-C, Figs. 6–7).

ECF and RWB pay an up-front cost that can be prohibitive for under-constrained
queries over dense hosting networks: the filter matrices are
``O(n · |E_Q| · |E_R|)`` in the worst case.  LNS avoids them entirely by
evaluating constraints lazily, only for the edges that connect the vertex
being placed to the vertices already placed.

The algorithm maintains three sets of *query* vertices:

* **Covered** — already matched (together they form a valid partial mapping);
* **Neighbors** — adjacent to at least one covered vertex;
* **External** — everything else.

It seeds Covered with the highest-degree query vertex (so the covered region
becomes highly connected quickly), then repeatedly:

1. picks from Neighbors the vertex with the most edges into Covered
   (maximising the conjunction of constraints the new placement must satisfy,
   which prunes dead ends as early as possible);
2. tries every hosting node that could host it — i.e. the hosting neighbours
   of the already-assigned images of its covered neighbours — checking the
   topology and the constraint expression for every connecting edge;
3. recurses; when the Neighbors set empties and no External vertices remain,
   the covered set is a complete feasible mapping.

Queries with several connected components are handled by re-seeding on the
highest-degree external vertex whenever Neighbors runs dry.

Correctness and completeness follow the argument of the paper's appendix:
every extension of a promising partial mapping is attempted, so if a feasible
mapping exists some branch of the recursion constructs it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.api.registry import Capability, register_algorithm
from repro.api.request import SearchRequest
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.core.filters import compute_node_candidates
from repro.core.indexing import NodeIndexer
from repro.core.ordering import lns_next_neighbor
from repro.core.plan import PreparedSearch
from repro.graphs.network import Edge, NodeId
from repro.utils.timing import Deadline


@register_algorithm(
    "LNS",
    capabilities=[
        Capability.COMPLETE_ENUMERATION,
        Capability.DETERMINISTIC,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
        Capability.LOW_MEMORY,
    ],
    summary="Lazy neighborhood search (low memory, lazy constraint checks).",
    tags=["core"],
)
class LNS(EmbeddingAlgorithm):
    """Lazy Neighborhood Search.

    Parameters
    ----------
    candidate_order:
        ``"sorted"`` (deterministic, default) or ``"degree"`` — how candidate
        hosting nodes are ordered when tried.  Ordering by descending hosting
        degree tends to find first matches sooner on sparse hosts; the default
        keeps runs deterministic and reproducible.
    """

    name = "LNS"
    supports_prepare = True
    #: LNS evaluates edge constraints lazily, so its shards ship the
    #: networks and expressions to the workers (the default) — only the
    #: filter-based algorithms can omit them.
    supports_sharding = True

    def __init__(self, candidate_order: str = "sorted") -> None:
        if candidate_order not in ("sorted", "degree"):
            raise ValueError(
                f"candidate_order must be 'sorted' or 'degree', got {candidate_order!r}")
        self._candidate_order = candidate_order

    def plan_signature(self):
        return (self.name, self._candidate_order)

    # ------------------------------------------------------------------ #

    def _prepare(self, request: SearchRequest,
                 deadline: Optional[Deadline] = None) -> PreparedSearch:
        """Stage 1: node screening plus the dense host index.

        LNS has no filter matrices — edge constraints stay lazy — so its
        prepared artifacts are the node-constraint candidate masks and the
        indexer.  The hosting-adjacency memo is created here too and shared
        across executes: it is derived data, filled lazily for hosts a
        partial mapping actually touches, and monotone (safe to share even
        between concurrent executes of the same plan).
        """
        node_allowed = compute_node_candidates(request.query, request.hosting,
                                               request.node_constraint)
        if any(not node_allowed[node] for node in request.query.nodes()):
            return PreparedSearch(infeasible=True)

        # Same bitmask candidate algebra as ECF/RWB: allowed sets and hosting
        # adjacency become masks over the dense host index, so the pruning
        # intersection in the search is a chain of `&`.
        indexer = NodeIndexer(request.hosting.nodes())
        allowed_masks = {node: indexer.encode(hosts)
                         for node, hosts in node_allowed.items()}
        return PreparedSearch(indexer=indexer, allowed_masks=allowed_masks,
                              adjacency_masks={})

    def _patch_prepared(self, request: SearchRequest,
                        prepared: PreparedSearch, delta) -> Optional[PreparedSearch]:
        """Attr-only delta: the dense index and the hosting adjacency are
        untouched; only the node-screening masks can shift, and only on the
        touched hosting nodes.  Edge constraints stay lazy, so the patched
        plan evaluates them against the live attributes exactly as a fresh
        prepare would."""
        indexer = prepared.indexer
        if indexer is None:
            # The old prepare screened out early (infeasible) and kept no
            # artifacts to patch; a fresh LNS prepare is cheap anyway.
            return None
        node_constraint = request.node_constraint
        allowed_masks = dict(prepared.allowed_masks)
        if (node_constraint is not None and not node_constraint.is_trivial
                and delta.touched_nodes):
            query = request.query
            hosting = request.hosting
            touched_hosts = [(host, hosting.node_attrs(host), indexer.bit(host))
                             for host in sorted(delta.touched_nodes, key=str)
                             if hosting.has_node(host)]
            evaluate = node_constraint.evaluate
            for query_node in query.nodes():
                context = {"vNode": query.node_attrs(query_node), "rNode": None}
                mask = allowed_masks.get(query_node, 0)
                for host, attrs, bit in touched_hosts:
                    context["rNode"] = attrs
                    if evaluate(context):
                        mask |= bit
                    else:
                        mask &= ~bit
                allowed_masks[query_node] = mask
        if any(not allowed_masks.get(node) for node in request.query.nodes()):
            return PreparedSearch(infeasible=True)
        # The adjacency memo is purely structural and monotone: safe to keep
        # sharing between the old and the patched plan.
        return PreparedSearch(indexer=indexer, allowed_masks=allowed_masks,
                              adjacency_masks=prepared.adjacency_masks)

    def _run_prepared(self, context: SearchContext,
                      prepared: PreparedSearch) -> bool:
        assignment: Dict[NodeId, NodeId] = {}
        covered: List[NodeId] = []
        neighbors: Set[NodeId] = set()
        external: Set[NodeId] = set(context.query.nodes())
        return self._extend(context, prepared.indexer, prepared.allowed_masks,
                            prepared.adjacency_masks, assignment, 0, covered,
                            neighbors, external)

    # -- sharding: contiguous slices of the seed vertex's trial order ------ #

    def _seed_vertex(self, context: SearchContext) -> NodeId:
        """The vertex Covered is seeded with: the highest-degree query vertex."""
        return max(context.query.nodes(),
                   key=lambda n: (context.query.degree(n), str(n)))

    def _shard_specs(self, context: SearchContext, prepared: PreparedSearch,
                     shards: int) -> List[Tuple[NodeId, Tuple[NodeId, ...]]]:
        """Split the seed vertex's candidate order; the seeding expansion is
        counted here (once, in the parent), per the base-class convention."""
        from repro.core.parallel import split_contiguous

        context.check_deadline()
        seed = self._seed_vertex(context)
        hosts = self._order_candidates(context, prepared.indexer,
                                       prepared.allowed_masks[seed])
        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += len(hosts)
        if not hosts:
            context.stats.backtracks += 1
            return []
        return [(seed, tuple(block)) for block in split_contiguous(hosts, shards)]

    def _run_shard(self, context: SearchContext, prepared: PreparedSearch,
                   spec: Tuple[NodeId, Tuple[NodeId, ...]]) -> bool:
        """Replay the first Covered-seeding expansion over one host slice.

        Mirrors the ``not neighbors and external`` branch of :meth:`_extend`
        exactly — same set evolution, same trial order — but over this
        shard's slice of the candidate hosts, so concatenating the shards
        reproduces the serial stream (the expansion's own statistics were
        counted by :meth:`_shard_specs`).
        """
        current, hosts = spec
        query = context.query
        external = set(query.nodes())
        new_covered = [current]
        new_neighbors = {n for n in query.neighbors(current) if n != current}
        new_external = external - {current} - new_neighbors
        bit_of = prepared.indexer.bit
        assignment: Dict[NodeId, NodeId] = {}
        for host in hosts:
            assignment[current] = host
            keep_going = self._extend(context, prepared.indexer,
                                      prepared.allowed_masks,
                                      prepared.adjacency_masks, assignment,
                                      bit_of(host), new_covered, new_neighbors,
                                      new_external)
            del assignment[current]
            if not keep_going:
                return False
        return True

    # ------------------------------------------------------------------ #

    def _adjacency_mask(self, context: SearchContext, indexer: NodeIndexer,
                        adjacency_masks: Dict[NodeId, int], host: NodeId) -> int:
        """The (memoised) bitmask of *host*'s hosting-network neighbours."""
        mask = adjacency_masks.get(host)
        if mask is None:
            mask = indexer.encode(context.hosting.neighbors(host))
            adjacency_masks[host] = mask
        return mask

    def _extend(self, context: SearchContext, indexer: NodeIndexer,
                allowed_masks: Dict[NodeId, int],
                adjacency_masks: Dict[NodeId, int],
                assignment: Dict[NodeId, NodeId], used_mask: int,
                covered: List[NodeId], neighbors: Set[NodeId],
                external: Set[NodeId]) -> bool:
        """Recursive step 5–16 of Fig. 7.  Returns ``False`` iff stopped early."""
        context.check_deadline()

        if not neighbors:
            if not external:
                # All query vertices are covered: a complete feasible mapping.
                stop = context.record_mapping(dict(assignment))
                return not stop
            # Seed a new connected component with its highest-degree vertex.
            current = max(external,
                          key=lambda n: (context.query.degree(n), str(n)))
            candidates_mask = allowed_masks[current] & ~used_mask
            connecting: List[Tuple[NodeId, NodeId]] = []
        else:
            current = lns_next_neighbor(context.query, covered, neighbors)
            connecting = [(neighbor, assignment[neighbor])
                          for neighbor in context.query.neighbors(current)
                          if neighbor in assignment]
            # Any feasible host for `current` must be a hosting neighbour of
            # the image of each covered neighbour; intersecting adjacency
            # masks before any constraint evaluation is the "lazy" pruning
            # step.
            # Seeding with the bounded all-hosts mask (rather than -1) keeps
            # every intermediate value a non-negative, width-limited int —
            # the same invariant the word-array mask tables rely on.
            candidates_mask = indexer.full_mask
            for _, host in connecting:
                candidates_mask &= self._adjacency_mask(context, indexer,
                                                        adjacency_masks, host)
                if not candidates_mask:
                    break
            candidates_mask &= allowed_masks[current] & ~used_mask

        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += candidates_mask.bit_count()

        if not candidates_mask:
            context.stats.backtracks += 1
            return True

        query_edges = self._query_edges_to_covered(context, current, connecting)

        new_covered = covered + [current]
        new_neighbors = (neighbors | {n for n in context.query.neighbors(current)
                                      if n in external and n != current}) - {current}
        new_external = external - {current} - new_neighbors

        bit_of = indexer.bit
        for host in self._order_candidates(context, indexer, candidates_mask):
            if not self._connecting_edges_ok(context, query_edges, assignment,
                                             current, host):
                continue
            assignment[current] = host
            keep_going = self._extend(context, indexer, allowed_masks,
                                      adjacency_masks, assignment,
                                      used_mask | bit_of(host),
                                      new_covered, new_neighbors, new_external)
            del assignment[current]
            if not keep_going:
                return False
        return True

    # ------------------------------------------------------------------ #

    @staticmethod
    def _query_edges_to_covered(context: SearchContext, current: NodeId,
                                connecting: List[Tuple[NodeId, NodeId]]) -> List[Edge]:
        """The actual query edges between *current* and its covered neighbours.

        For undirected queries there is one edge per covered neighbour; for
        directed queries there may be one in each direction, and each must be
        checked in its own orientation.
        """
        query = context.query
        edges: List[Edge] = []
        for neighbor, _host in connecting:
            if query.has_edge(neighbor, current):
                edges.append((neighbor, current))
            if query.directed and query.has_edge(current, neighbor):
                edges.append((current, neighbor))
            if not query.directed and not query.has_edge(neighbor, current) \
                    and query.has_edge(current, neighbor):
                edges.append((current, neighbor))
        return edges

    @staticmethod
    def _connecting_edges_ok(context: SearchContext, query_edges: List[Edge],
                             assignment: Dict[NodeId, NodeId],
                             current: NodeId, host: NodeId) -> bool:
        """Step 7–8 of Fig. 7: every connecting edge must be supported and satisfied."""
        for q_source, q_target in query_edges:
            r_source = host if q_source == current else assignment[q_source]
            r_target = host if q_target == current else assignment[q_target]
            if not context.query_edge_supported(q_source, q_target, r_source, r_target):
                return False
        return True

    def _order_candidates(self, context: SearchContext, indexer: NodeIndexer,
                          candidates_mask: int) -> List[NodeId]:
        # Decoding already yields ascending str order, the "sorted" default.
        candidates = indexer.decode(candidates_mask)
        if self._candidate_order == "degree":
            candidates.sort(key=lambda n: (-context.hosting.degree(n), str(n)))
        return candidates
