"""Mappings (embeddings) of query nodes onto hosting nodes.

A *mapping* (paper §IV) is a one-to-one function from the query network's
nodes to the hosting network's nodes such that every query edge lands on an
existing hosting edge and all node/edge constraints are satisfied.  The
:class:`Mapping` class is the value object returned by every search
algorithm; :func:`validate_mapping` is the independent checker used by the
test suite and by the service layer before reserving resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping as TMapping, Optional, Tuple

from repro.constraints import ConstraintExpression, edge_context, node_context
from repro.graphs.network import Edge, Network, NodeId


@dataclass(frozen=True)
class Mapping:
    """An immutable query-node → hosting-node assignment.

    Attributes
    ----------
    assignment:
        The node assignment as a plain dict (copied and never mutated).
    """

    assignment: TMapping[NodeId, NodeId]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignment", dict(self.assignment))

    # -- mapping protocol ------------------------------------------------ #

    def __getitem__(self, query_node: NodeId) -> NodeId:
        return self.assignment[query_node]

    def __contains__(self, query_node: NodeId) -> bool:
        return query_node in self.assignment

    def __len__(self) -> int:
        return len(self.assignment)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.assignment)

    def items(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Iterate over (query node, hosting node) pairs."""
        return iter(self.assignment.items())

    def query_nodes(self) -> List[NodeId]:
        """The query nodes covered by this mapping."""
        return list(self.assignment.keys())

    def hosting_nodes(self) -> List[NodeId]:
        """The hosting nodes used by this mapping."""
        return list(self.assignment.values())

    def is_injective(self) -> bool:
        """Whether no two query nodes share a hosting node."""
        values = list(self.assignment.values())
        return len(values) == len(set(values))

    def as_dict(self) -> Dict[NodeId, NodeId]:
        """A plain-dict copy of the assignment."""
        return dict(self.assignment)

    def restricted_to(self, query_nodes) -> "Mapping":
        """The sub-mapping covering only *query_nodes*."""
        keep = set(query_nodes)
        return Mapping({q: r for q, r in self.assignment.items() if q in keep})

    # -- equality is structural (dict equality), hash on frozen items ----- #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return dict(self.assignment) == dict(other.assignment)

    def __hash__(self) -> int:
        return hash(frozenset(self.assignment.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{q}->{r}" for q, r in sorted(self.assignment.items(), key=lambda p: str(p[0])))
        return f"Mapping({pairs})"


@dataclass
class MappingViolation:
    """A single reason a mapping is invalid (produced by :func:`validate_mapping`)."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def validate_mapping(mapping: Mapping, query: Network, hosting: Network,
                     constraint: Optional[ConstraintExpression] = None,
                     node_constraint: Optional[ConstraintExpression] = None,
                     ) -> List[MappingViolation]:
    """Independently check a mapping against the definition in §IV.

    Returns a (possibly empty) list of violations.  The checker is written
    directly from the problem definition and shares no code with the search
    algorithms, so it can serve as their correctness oracle.
    """
    violations: List[MappingViolation] = []
    assignment = mapping.as_dict()

    missing = set(query.nodes()) - set(assignment.keys())
    if missing:
        violations.append(MappingViolation(
            "coverage", f"query nodes not mapped: {sorted(map(str, missing))}"))

    extra = set(assignment.keys()) - set(query.nodes())
    if extra:
        violations.append(MappingViolation(
            "coverage", f"mapping covers unknown query nodes: {sorted(map(str, extra))}"))

    if not mapping.is_injective():
        violations.append(MappingViolation(
            "injectivity", "two query nodes map to the same hosting node"))

    for query_node, hosting_node in assignment.items():
        if not hosting.has_node(hosting_node):
            violations.append(MappingViolation(
                "node", f"{query_node!r} maps to non-existent hosting node {hosting_node!r}"))

    for q_source, q_target in query.edges():
        if q_source not in assignment or q_target not in assignment:
            continue
        r_source, r_target = assignment[q_source], assignment[q_target]
        if not hosting.has_node(r_source) or not hosting.has_node(r_target):
            continue
        oriented = _hosting_orientation(hosting, r_source, r_target)
        if oriented is None:
            violations.append(MappingViolation(
                "topology",
                f"query edge ({q_source!r}, {q_target!r}) maps to "
                f"({r_source!r}, {r_target!r}) which is not a hosting edge"))
            continue
        if constraint is not None and not constraint.is_trivial:
            context = edge_context(query, (q_source, q_target), hosting, oriented)
            if not constraint.evaluate(context):
                violations.append(MappingViolation(
                    "constraint",
                    f"query edge ({q_source!r}, {q_target!r}) on hosting edge "
                    f"{oriented!r} violates {constraint.source!r}"))

    if node_constraint is not None and not node_constraint.is_trivial:
        for query_node, hosting_node in assignment.items():
            if not hosting.has_node(hosting_node):
                continue
            if not node_constraint.evaluate(
                    node_context(query, query_node, hosting, hosting_node)):
                violations.append(MappingViolation(
                    "node-constraint",
                    f"{query_node!r} -> {hosting_node!r} violates "
                    f"{node_constraint.source!r}"))

    return violations


def is_valid_mapping(mapping: Mapping, query: Network, hosting: Network,
                     constraint: Optional[ConstraintExpression] = None,
                     node_constraint: Optional[ConstraintExpression] = None) -> bool:
    """Whether :func:`validate_mapping` finds no violations."""
    return not validate_mapping(mapping, query, hosting, constraint, node_constraint)


def _hosting_orientation(hosting: Network, r_source: NodeId, r_target: NodeId
                         ) -> Optional[Edge]:
    """The hosting edge orientation a query edge maps onto, or ``None``.

    Directed hosting networks require the edge ``r_source -> r_target``;
    undirected ones accept either stored orientation and report it as
    ``(r_source, r_target)`` because edge attributes are shared.
    """
    if hosting.has_edge(r_source, r_target):
        return (r_source, r_target)
    if not hosting.directed and hosting.has_edge(r_target, r_source):
        return (r_source, r_target)
    return None
