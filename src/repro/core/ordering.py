"""Query-node orderings: Lemma 1 and the LNS growth heuristics.

Lemma 1 (paper appendix) shows that visiting query nodes in *ascending order
of their candidate-mapping counts* minimises the total number of nodes in the
permutations tree that ECF/RWB explore.  LNS instead orders by connectivity:
it seeds the Covered set with the highest-degree query node and always grows
it with the neighbour that has the most edges into the Covered set, so each
new placement is checked against as many constraints as possible at once.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.core.filters import FilterMatrices
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork


def candidate_count_order(query: QueryNetwork, filters: FilterMatrices) -> List[NodeId]:
    """Lemma-1 ordering: query nodes sorted by ascending candidate count.

    Ties are broken by descending degree (more constrained first among equals)
    and then by stringified node id so the order — and therefore the entire
    search — is deterministic for a given problem instance.
    """
    def key(node: NodeId):
        return (filters.candidate_count(node), -query.degree(node), str(node))

    return sorted(query.nodes(), key=key)


def connectivity_aware_order(query: QueryNetwork, filters: FilterMatrices) -> List[NodeId]:
    """Lemma-1 ordering refined to keep the prefix connected when possible.

    §V-A notes that "if q_i has edges with any of its predecessors, the number
    of choices is reduced even more because these edges have to be preserved".
    This ordering therefore prefers, at each step, nodes adjacent to the
    already-ordered prefix, and among those the one with the fewest
    candidates.  It degenerates to :func:`candidate_count_order` on queries
    with several components.
    """
    remaining: Set[NodeId] = set(query.nodes())
    ordered: List[NodeId] = []
    ordered_set: Set[NodeId] = set()
    candidate_count = filters.candidate_count

    while remaining:
        adjacent = {node for node in remaining
                    if any(neigh in ordered_set for neigh in query.neighbors(node))}
        pool = adjacent if adjacent else remaining
        chosen = min(pool, key=lambda n: (candidate_count(n), -query.degree(n), str(n)))
        ordered.append(chosen)
        ordered_set.add(chosen)
        remaining.discard(chosen)
    return ordered


def natural_order(query: QueryNetwork, filters: Optional[FilterMatrices] = None
                  ) -> List[NodeId]:
    """No heuristic: nodes in their natural (insertion) order.

    Used by the ordering ablation benchmark to quantify what Lemma 1 buys.
    """
    return query.nodes()


#: Registry of orderings selectable by name (used by the ablation benchmark).
ORDERINGS = {
    "candidate-count": candidate_count_order,
    "connectivity": connectivity_aware_order,
    "natural": natural_order,
}


def lns_seed_node(query: QueryNetwork) -> NodeId:
    """The node LNS covers first: the highest-degree query node (heuristic 1 of §V-C)."""
    if query.num_nodes == 0:
        raise ValueError("cannot seed LNS on an empty query network")
    return query.nodes_by_degree(descending=True)[0]


def lns_next_neighbor(query: QueryNetwork, covered: Sequence[NodeId],
                      neighbors: Iterable[NodeId]) -> NodeId:
    """The neighbour LNS extends with next (heuristic 2 of §V-C).

    Among the current Neighbors set, pick the vertex with the most edges into
    the Covered set, so the new placement must satisfy the largest possible
    conjunction of constraints and dead ends are pruned as early as possible.
    Ties are broken by total degree (descending) then node id.
    """
    covered_set = set(covered)
    pool = list(neighbors)
    if not pool:
        raise ValueError("the Neighbors set is empty; nothing to extend with")

    def key(node: NodeId):
        links = sum(1 for neigh in query.neighbors(node) if neigh in covered_set)
        return (-links, -query.degree(node), str(node))

    return min(pool, key=key)


def permutation_tree_size(candidate_counts: Sequence[int]) -> int:
    """Total node count of the permutations tree for a given visiting order.

    Equation (3) of the appendix:
    ``S = n1 + n1*n2 + ... + n1*n2*...*nN``.  Used by tests to verify Lemma 1
    (the ascending order minimises S over all permutations).
    """
    total = 0
    product = 1
    for count in candidate_counts:
        product *= count
        total += product
    return total
