"""Sharded parallel execution of compiled embedding plans.

The three NETEMBED searches are embarrassingly partitionable at the
*root-candidate* level: the first query node's candidate set is tried in a
deterministic order (ascending bit order for ECF, the seeded shuffle for RWB,
the configured candidate order for LNS), and the subtree under each root
candidate is completely independent of the others.  This module splits that
root trial order into contiguous blocks — *shards* — executes the shards on a
``concurrent.futures`` process pool, and merges the per-shard mapping lists
back together **in shard order**, so the merged stream is byte-identical to a
serial execution for any shard count.

Design notes
------------

* **What ships to a worker.**  One :class:`ShardGroup` per execute — the
  algorithm instance, the compiled :class:`~repro.core.plan.PreparedSearch`
  artifacts, and (only for algorithms that evaluate constraints lazily, i.e.
  LNS) the networks and constraint expressions — is pickled *once*.  Small
  groups ride inline with each task; large ones (a planetlab-scale filter
  set is megabytes) spill to a temporary file that each worker reads and
  memoises once by token, so the per-task payload is just a shard index and
  the algorithm-specific root slice no matter how many shards ship.
* **Budgets.**  The run's wall-clock budget is shared, not divided: the
  absolute deadline (``time.monotonic``-based, valid across local processes)
  ships with the group, and every shard enforces the remaining time when it
  starts.  Result caps are applied per shard (no shard can ever need to
  contribute more than the global cap) and re-applied by the merger, whose
  in-order commit makes the truncated stream equal serial's.
* **Work stealing.**  The engine oversplits — ``shard_factor`` shards per
  requested worker — and dispatches them through a sliding window of
  ``parallelism`` in-flight tasks, so a worker that exhausts a cheap shard
  early immediately picks up the next unfinished shard, and a single skewed
  subtree cannot serialise the whole run.  Shards made redundant by an
  early result-cap hit are cancelled before they start.
* **Failure.**  Exceptions raised inside a worker (including
  :class:`~repro.core.plan.PlanInvalidatedError`) propagate to the caller
  with their original type, exactly as the serial engine would raise them.
  A broken pool (a worker killed mid-run) is *supervised*: because the
  merge commits shard outcomes strictly in order, every uncommitted shard
  can safely be resubmitted to a fresh pool — the committed prefix of the
  stream is never touched — so worker death costs a capped-exponential
  backoff and a retry, not the run.  After ``max_pool_restarts`` failures
  inside one run the remaining shards execute in-process (still
  byte-identical); after ``trip_threshold`` *consecutive* failed runs the
  :class:`PoolSupervisor`'s circuit breaker opens and new runs go straight
  to in-process execution until the cooldown lapses.  Every one of these
  transitions is counted and reported by :meth:`PoolSupervisor.stats` —
  the degraded mode is observable, not silent.
"""

from __future__ import annotations

import itertools
import os
import pickle
import tempfile
import threading
import time
from concurrent.futures import (FIRST_COMPLETED, Executor, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.core.result import SearchStats
from repro.utils.timing import Deadline, TimeoutExpired

#: How many shards the engine targets per requested worker.  Oversplitting is
#: the work-stealing mechanism: subtree costs are wildly skewed, and a pool
#: worker that finishes a cheap shard pulls the next pending one.
DEFAULT_SHARD_FACTOR = 4

#: ``REPRO_SHARD_BACKEND=thread`` swaps the shard pool for a
#: ``ThreadPoolExecutor``.  With the pure-Python kernel threads are
#: GIL-bound (correctness testing only); with the numba kernel the chunk
#: loops run ``nogil``, so thread shards scale across cores while skipping
#: both the pickle round-trip and process start-up entirely.
_BACKEND_ENV = "REPRO_SHARD_BACKEND"


def shard_backend() -> str:
    """The configured shard pool backend: ``process`` (default) or ``thread``."""
    value = os.environ.get(_BACKEND_ENV, "process").strip().lower() or "process"
    if value not in ("process", "thread"):
        raise ValueError(
            f"{_BACKEND_ENV} must be 'process' or 'thread', got {value!r}")
    return value


# --------------------------------------------------------------------------- #
# Picklable work units
# --------------------------------------------------------------------------- #

@dataclass
class ShardGroup:
    """The per-execute state shared by every shard (pickled once).

    ``query``/``hosting``/``constraint``/``node_constraint`` are ``None``
    for algorithms whose search stage never touches them (ECF/RWB bake the
    constraints into the filter bitmasks at prepare time), which keeps the
    shipped payload down to the compiled artifacts themselves.
    """

    algorithm: Any
    prepared: Any
    query: Any = None
    hosting: Any = None
    constraint: Any = None
    node_constraint: Any = None
    #: Per-shard result cap == the run's effective global cap.
    max_results: Optional[int] = None
    #: Absolute ``time.monotonic()`` deadline shared by every shard
    #: (``None`` = unlimited).  Monotonic clocks are system-wide on the
    #: platforms the pool runs on, so parent and workers agree on it.
    deadline_at: Optional[float] = None


@dataclass
class PlanShard:
    """One unit of sharded work: a contiguous slice of the root trial order."""

    #: Merge position; shard *i*'s mappings precede shard *i+1*'s.
    index: int
    #: Algorithm-specific root slice (a bitmask for ECF, ``(start, hosts,
    #: base_seed)`` for RWB, ``(root, hosts)`` for LNS).
    spec: Any


@dataclass
class ShardOutcome:
    """What a worker sends back for one shard."""

    index: int
    #: Raw node assignments in discovery order (re-recorded by the merger so
    #: streaming callbacks and the result cap behave exactly as in serial).
    #: Column-encoded when every mapping shares one key order (ECF/RWB place
    #: nodes in a fixed visiting order): ``(keys, [host rows])`` pickles a
    #: fraction of the equivalent list of dicts.  Decode with
    #: :meth:`iter_assignments`.
    assignments: Any = None
    stats: SearchStats = field(default_factory=SearchStats)
    #: Whether the shard's subtrees were exhaustively explored.
    exhausted: bool = True
    #: Whether the shard stopped on the shared deadline.
    timed_out: bool = False

    def iter_assignments(self):
        """The shard's assignments as dicts, in discovery order."""
        if self.assignments is None:
            return
        kind, payload = self.assignments
        if kind == "dicts":
            yield from payload
        else:
            keys, rows = payload
            for row in rows:
                yield dict(zip(keys, row))


def _encode_assignments(mappings) -> Any:
    """Column-encode a shard's mappings when their key order is uniform.

    Placement order is part of the byte-identical-stream guarantee, so the
    encoding must round-trip dict insertion order — ``dict(zip(keys, row))``
    does, whenever every mapping was built along the same visiting order.
    """
    if not mappings:
        return None
    dicts = [mapping.as_dict() for mapping in mappings]
    keys = tuple(dicts[0])
    if all(tuple(d) == keys for d in dicts):
        return ("columns", (keys, [tuple(d.values()) for d in dicts]))
    return ("dicts", dicts)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

#: Per-process memo of decoded ShardGroups, keyed by token: workers are
#: anonymous (any task can land on any of them), but each process only pays
#: the transport read + unpickle once.  Bounded — an execute's token dies
#: with its run.
_GROUP_CACHE: "Dict[str, ShardGroup]" = {}
_GROUP_CACHE_LIMIT = 4

#: Thread-backend groups, handed to shards by reference (same process, no
#: pickle).  Registered before the first submit and popped by ``run_sharded``
#: as the run ends, so — unlike ``_GROUP_CACHE`` — entries can never be
#: evicted while their shards are still in flight.
_INPROC_GROUPS: "Dict[str, ShardGroup]" = {}

#: Groups above this pickled size ship via a spill file instead of inline
#: task bytes: N shards of a megabytes-sized filter set must not pay the
#: pipe N times.
_INLINE_GROUP_LIMIT = 128 * 1024

_token_counter = itertools.count()

#: Transport: ``("bytes", pickled_group, sentinel_path)``,
#: ``("file", spill_path, sentinel_path)`` or ``("inproc", None,
#: sentinel_path)`` for thread shards.  The sentinel is a file the
#: parent unlinks as the run's very last act (for file transport it *is*
#: the spill), giving in-flight shards of an already-finished run an
#: abandonment signal regardless of how the group shipped.
GroupTransport = Tuple[str, Any, str]


def _decode_group(token: str, transport: GroupTransport) -> ShardGroup:
    group = _INPROC_GROUPS.get(token)
    if group is not None:
        return group
    group = _GROUP_CACHE.get(token)
    if group is None:
        kind, payload, _sentinel = transport
        if kind == "inproc":
            # Registered groups are popped only after the run ends, so this
            # shard was abandoned; its future is never consumed.
            raise LookupError(f"shard group {token} already retired")
        if kind == "file":
            with open(payload, "rb") as handle:
                payload = handle.read()
        group = pickle.loads(payload)
        while len(_GROUP_CACHE) >= _GROUP_CACHE_LIMIT:
            _GROUP_CACHE.pop(next(iter(_GROUP_CACHE)))
        _GROUP_CACHE[token] = group
    return group


def _spill_watcher(path: str, cancel: threading.Event,
                   stop: threading.Event) -> None:
    """Set *cancel* when the run's spill file disappears.

    The parent unlinks the spill as its very last act, so a shard still
    running at that point has been abandoned (result cap hit, stream
    closed, deadline fired) and its outcome will never be consumed —
    unwinding early frees the pool worker for live runs.
    """
    while not stop.wait(0.1):
        if not os.path.exists(path):
            cancel.set()
            return


def _execute_shard(token: str, transport: GroupTransport, index: int,
                   spec: Any) -> ShardOutcome:
    """Run one shard in a worker process.

    Exceptions other than the shard's own deadline expiry and the parent's
    abandonment signal propagate to the parent through the future with
    their original type intact.
    """
    # Imported lazily: base imports plan which must not import parallel first.
    from repro.core.base import SearchContext, StreamClosed

    group = _decode_group(token, transport)
    remaining: Optional[float] = None
    if group.deadline_at is not None:
        remaining = group.deadline_at - time.monotonic()
        if remaining <= 0:
            # The shared budget ran out before this shard even started —
            # the same outcome serial would reach at its next deadline check.
            return ShardOutcome(index=index, exhausted=False, timed_out=True)
    cancel = threading.Event()
    stop_watch = threading.Event()
    threading.Thread(target=_spill_watcher,
                     args=(transport[2], cancel, stop_watch),
                     daemon=True).start()
    context = SearchContext(
        query=group.query,
        hosting=group.hosting,
        constraint=group.constraint,
        node_constraint=group.node_constraint,
        deadline=Deadline(remaining),
        max_results=group.max_results,
        cancel=cancel,
    )
    try:
        exhausted = group.algorithm._run_shard(context, group.prepared, spec)
        timed_out = False
    except TimeoutExpired:
        exhausted, timed_out = False, True
    except StreamClosed:
        # Abandoned by the parent; the outcome is never consumed.
        exhausted, timed_out = False, False
    finally:
        stop_watch.set()
    return ShardOutcome(
        index=index,
        assignments=_encode_assignments(context.mappings),
        stats=context.stats,
        exhausted=exhausted,
        timed_out=timed_out,
    )


# --------------------------------------------------------------------------- #
# Pool management
# --------------------------------------------------------------------------- #

def _pool_context():
    """The multiprocessing context used for shard pools.

    The platform default is used (fork on Linux up to 3.13, forkserver from
    3.14, spawn on macOS/Windows): the engine is routinely driven from
    multithreaded contexts — service batch threads, every
    ``pump_mapping_stream`` producer — where forcing fork would court the
    fork-while-threaded deadlocks the interpreter defaults are moving away
    from.  ``REPRO_PARALLEL_START_METHOD`` overrides the choice explicitly
    (e.g. ``fork`` for cheapest worker start on a trusted workload).
    """
    import multiprocessing

    method = os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    return None


def make_pool(max_workers: Optional[int] = None) -> Executor:
    """A new shard pool (callers own its shutdown).

    ``REPRO_SHARD_BACKEND=thread`` yields a ``ThreadPoolExecutor`` — shard
    groups then travel by reference (see ``_INPROC_GROUPS``) instead of
    being pickled.
    """
    if shard_backend() == "thread":
        return ThreadPoolExecutor(max_workers=max_workers,
                                  thread_name_prefix="repro-shard")
    return ProcessPoolExecutor(max_workers=max_workers,
                               mp_context=_pool_context())


_shared_pool: Optional[Executor] = None
_shared_pool_lock = threading.Lock()


def shared_pool() -> Executor:
    """The process-wide shard pool, created lazily (``os.cpu_count`` workers).

    Used by :meth:`EmbeddingPlan.execute` when the caller supplies no pool of
    its own; the :class:`~repro.service.netembed.NetEmbedService` passes its
    own bounded pool instead.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = make_pool(os.cpu_count())
        return _shared_pool


def shutdown_shared_pool(wait_for_workers: bool = True) -> None:
    """Tear down the process-wide shard pool (no-op if never created)."""
    global _shared_pool
    with _shared_pool_lock:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.shutdown(wait=wait_for_workers)


def _reset_broken_shared_pool(pool: Executor) -> None:
    """Drop the shared pool if *pool* is it, so the next use gets a fresh one."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is pool:
            _shared_pool = None
    pool.shutdown(wait=False)


# --------------------------------------------------------------------------- #
# Supervision: retries, circuit breaker, observable degradation
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class ShardRetryPolicy:
    """How a single run reacts to its process pool breaking mid-merge."""

    #: Fresh pools tried per run before degrading to in-process execution.
    max_pool_restarts: int = 2
    #: Backoff before restart *n* is ``min(cap, base * 2**(n-1))`` seconds.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


class PoolSupervisor:
    """Counts pool failures across runs and trips a circuit breaker.

    One module-level instance (see :func:`default_supervisor`) supervises
    every ``run_sharded`` call by default.  Repeated *consecutive* pool
    failures — a host whose workers keep getting OOM-killed — open the
    breaker: new runs skip the pool entirely and execute in-process until
    ``cooldown`` seconds pass, after which the next run is allowed through
    as a probe (half-open) and a success closes the breaker again.  All
    transitions are counted; :meth:`stats` is the observability contract.
    """

    def __init__(self, retry: ShardRetryPolicy = ShardRetryPolicy(),
                 trip_threshold: int = 3, cooldown: float = 30.0,
                 clock=time.monotonic) -> None:
        if trip_threshold < 1:
            raise ValueError(f"trip_threshold must be >= 1, got {trip_threshold}")
        self.retry = retry
        self.trip_threshold = trip_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive = 0
        self._open_until: Optional[float] = None
        self._counters = {
            "pool_failures": 0,     # BrokenProcessPool raised into a merge
            "shard_retries": 0,     # uncommitted shards resubmitted
            "serial_degradations": 0,  # runs finished in-process after failures
            "breaker_trips": 0,     # closed -> open transitions
            "short_circuits": 0,    # runs refused a pool while open
        }

    # -- state machine ------------------------------------------------- #

    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (cooldown lapsed)."""
        with self._lock:
            if self._open_until is None:
                return "closed"
            return "open" if self._clock() < self._open_until else "half-open"

    def allow_pool(self) -> bool:
        """Whether a run may use a process pool right now."""
        with self._lock:
            if self._open_until is None or self._clock() >= self._open_until:
                return True
            self._counters["short_circuits"] += 1
            return False

    def record_pool_failure(self) -> None:
        with self._lock:
            self._counters["pool_failures"] += 1
            self._consecutive += 1
            if self._consecutive >= self.trip_threshold:
                # (Re-)open: a failed half-open probe restarts the cooldown
                # too; only the closed->open edge counts as a new trip.
                if self._open_until is None:
                    self._counters["breaker_trips"] += 1
                self._open_until = self._clock() + self.cooldown

    def record_pool_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            self._open_until = None

    def record_retry(self, shards: int) -> None:
        with self._lock:
            self._counters["shard_retries"] += shards

    def record_degradation(self) -> None:
        with self._lock:
            self._counters["serial_degradations"] += 1

    def reset(self) -> None:
        """Forget all history (tests and fresh benchmarks)."""
        with self._lock:
            self._consecutive = 0
            self._open_until = None
            for key in self._counters:
                self._counters[key] = 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters)
            consecutive = self._consecutive
        counters.update({
            "state": self.state(),
            "consecutive_failures": consecutive,
            "trip_threshold": self.trip_threshold,
            "cooldown": self.cooldown,
            "max_pool_restarts": self.retry.max_pool_restarts,
        })
        return counters


_default_supervisor = PoolSupervisor()


def default_supervisor() -> PoolSupervisor:
    """The process-wide supervisor used when a run supplies none."""
    return _default_supervisor


# --------------------------------------------------------------------------- #
# The parent-side engine
# --------------------------------------------------------------------------- #

@dataclass
class _MergeState:
    """Merge progress that survives a pool restart.

    The in-order commit is the resumability invariant: exactly the shards
    ``[0, next_commit)`` have been folded into the caller's context, so a
    retry only ever resubmits shards that contributed nothing yet, and the
    merged stream stays byte-identical to serial no matter how many pools
    died along the way.
    """

    specs: Sequence[Any]
    next_commit: int = 0
    committed: int = 0
    exhausted_all: bool = True
    #: Fetched-but-not-yet-committed outcomes (their predecessors are
    #: missing); preserved across pool restarts so finished work is never
    #: re-executed.
    ready: Dict[int, ShardOutcome] = field(default_factory=dict)

    def uncommitted(self) -> List[Tuple[int, Any]]:
        return [(i, self.specs[i])
                for i in range(self.next_commit, len(self.specs))
                if i not in self.ready]


def run_sharded(algorithm, context, prepared, parallelism: int,
                pool: Optional[Executor] = None,
                shard_factor: int = DEFAULT_SHARD_FACTOR,
                supervisor: Optional[PoolSupervisor] = None) -> bool:
    """Execute *prepared* across shards and merge deterministically.

    Populates *context* (mappings, statistics, streaming callbacks) exactly
    like :meth:`EmbeddingAlgorithm._run_prepared` would, and follows the same
    contract: returns whether the search space was exhausted, raising
    :class:`~repro.utils.timing.TimeoutExpired` on deadline expiry.  Falls
    back to the serial path when the plan yields fewer than two shards.

    Worker death is survivable: uncommitted shards are retried on a fresh
    pool with capped exponential backoff (see :class:`ShardRetryPolicy`),
    and exhausted retries — or an open circuit breaker — finish the run
    in-process.  Both paths preserve the byte-identical stream guarantee.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    supervisor = supervisor if supervisor is not None else _default_supervisor
    specs = algorithm._shard_specs(context, prepared,
                                   max(2, parallelism * shard_factor))
    if specs is None:
        return algorithm._run_prepared(context, prepared)
    if len(specs) < 2:
        # Too few roots to shard.  The specs are still executed (not thrown
        # away): _shard_specs may have consumed the run's random stream (RWB),
        # so re-entering _run_prepared would diverge from serial.
        return run_specs_serial(algorithm, context, prepared, specs)
    if not supervisor.allow_pool():
        # Circuit breaker open: a counted, in-process degraded mode.
        return run_specs_serial(algorithm, context, prepared, specs)

    deadline_at = None
    remaining = context.deadline.remaining
    if remaining != float("inf"):
        if remaining <= 0:
            raise TimeoutExpired("search budget exhausted before sharding")
        deadline_at = time.monotonic() + remaining

    ships_networks = algorithm._shard_ships_networks
    group = ShardGroup(
        algorithm=algorithm,
        prepared=prepared,
        query=context.query if ships_networks else None,
        hosting=context.hosting if ships_networks else None,
        constraint=context.constraint if ships_networks else None,
        node_constraint=context.node_constraint if ships_networks else None,
        max_results=context.max_results,
        deadline_at=deadline_at,
    )
    token = f"{os.getpid()}:{next(_token_counter)}"
    state = _MergeState(specs=specs)
    sentinel_path: Optional[str] = None
    retry_pools: List[Executor] = []
    caller_pool = pool
    executor = shared_pool() if pool is None else pool
    inproc = isinstance(executor, ThreadPoolExecutor)
    try:
        # Everything from temp-file creation onward runs under this
        # try/finally: a failing spill write, a worker exception, a broken
        # pool, a deadline — every exit path reaches the unlink below.
        if inproc:
            # Thread shards share the parent's address space: hand the
            # group over by reference and skip the pickle round-trip (the
            # compiled artifacts — word tables, kernel plans — are only
            # *read* by shards, so sharing is safe).  The empty sentinel
            # still carries the abandonment signal.
            _INPROC_GROUPS[token] = group
            fd, sentinel_path = tempfile.mkstemp(prefix="repro-shard-run-",
                                                 suffix=".live")
            os.close(fd)
            transport: GroupTransport = ("inproc", None, sentinel_path)
        else:
            blob = pickle.dumps(group, protocol=pickle.HIGHEST_PROTOCOL)
            if len(blob) > _INLINE_GROUP_LIMIT:
                fd, sentinel_path = tempfile.mkstemp(
                    prefix="repro-shard-group-", suffix=".pkl")
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                transport = ("file", sentinel_path, sentinel_path)
            else:
                # Small groups ship inline; the empty sentinel still gives
                # in-flight shards the abandonment signal when the parent
                # finishes early.
                fd, sentinel_path = tempfile.mkstemp(
                    prefix="repro-shard-run-", suffix=".live")
                os.close(fd)
                transport = ("bytes", blob, sentinel_path)

        attempt = 0
        while True:
            try:
                result = _dispatch_and_merge(
                    executor, context, token, transport,
                    state.uncommitted(), window=parallelism, state=state)
                supervisor.record_pool_success()
                return result
            except BrokenProcessPool:
                # A worker died (OOM-killed, hard crash) or the fault
                # injector simulated one.  The committed prefix is intact;
                # retire the broken pool and decide: retry or degrade.
                supervisor.record_pool_failure()
                if executor is caller_pool:
                    pass      # caller-owned; its owner replaces broken pools
                elif executor in retry_pools:
                    executor.shutdown(wait=False)
                else:
                    _reset_broken_shared_pool(executor)
                attempt += 1
                remaining_work = state.uncommitted()
                if (attempt <= supervisor.retry.max_pool_restarts
                        and supervisor.allow_pool() and remaining_work):
                    delay = supervisor.retry.backoff(attempt)
                    budget = context.deadline.remaining
                    if budget != float("inf"):
                        delay = min(delay, max(0.0, budget))
                    if delay > 0:
                        time.sleep(delay)
                    context.check_deadline()
                    supervisor.record_retry(len(remaining_work))
                    executor = make_pool(parallelism)
                    retry_pools.append(executor)
                    continue
                # Out of restarts (or the breaker opened mid-run): finish
                # the remaining shards in-process — counted, not silent.
                supervisor.record_degradation()
                return _finish_serial(algorithm, context, prepared, state)
    finally:
        # The unlink is also the abandonment signal: discarded still-running
        # shards notice the sentinel vanish and unwind; a discarded pending
        # task that starts afterwards fails to decode the spill, and nobody
        # consumes its future.
        if sentinel_path is not None:
            try:
                os.unlink(sentinel_path)
            except OSError:
                pass
        _INPROC_GROUPS.pop(token, None)
        for retry_pool in retry_pools:
            retry_pool.shutdown(wait=False)


def _commit_ready(context, state: _MergeState) -> Optional[bool]:
    """Commit every ready shard whose predecessors are all committed.

    Returns ``False`` when the global result cap was reached (the run's
    return value), ``None`` to keep going; raises
    :class:`~repro.utils.timing.TimeoutExpired` when a committed shard hit
    the shared deadline — exactly where serial execution would stop.
    """
    while state.next_commit in state.ready:
        outcome = state.ready.pop(state.next_commit)
        state.next_commit += 1
        state.committed += 1
        _merge_stats(context.stats, outcome.stats)
        state.exhausted_all = state.exhausted_all and outcome.exhausted
        for assignment in outcome.iter_assignments():
            if context.record_mapping(assignment):
                return False    # global cap reached, like serial
        if outcome.timed_out:
            # Serial stops the instant the deadline fires; mappings from
            # later shards are discarded so the committed stream stays a
            # prefix of some serial-order stream.
            raise TimeoutExpired(
                f"shard {outcome.index} exceeded the shared search budget")
    return None


def _dispatch_and_merge(executor: Executor, context, token: str,
                        transport: GroupTransport,
                        work: Sequence[Tuple[int, Any]],
                        window: int, state: _MergeState) -> bool:
    """Sliding-window dispatch plus the in-order merge loop.

    ``work`` is the (index, spec) list still owed to the merge — all specs
    on a first attempt, the uncommitted remainder on a retry.  Progress
    lands in *state*, which survives a :class:`BrokenProcessPool` unwind.
    """
    pending: List[Tuple[int, Any]] = list(work)
    pending.reverse()   # pop() from the tail == dispatch in shard order
    in_flight: Dict[Future, int] = {}

    def submit_next() -> None:
        index, spec = pending.pop()
        faults.fire("parallel.pool-submit")
        future = executor.submit(_execute_shard, token, transport, index, spec)
        in_flight[future] = index

    try:
        # A retry may arrive with ready outcomes whose predecessors all
        # committed before the pool broke; commit them before dispatching.
        verdict = _commit_ready(context, state)
        if verdict is not None:
            return verdict
        while pending and len(in_flight) < window:
            submit_next()
        while in_flight:
            done, _ = wait(list(in_flight), timeout=0.1,
                           return_when=FIRST_COMPLETED)
            if not done:
                # Nothing finished in this slice: honour the run's own
                # deadline and cancellation signal while waiting.
                context.check_deadline()
                continue
            for future in done:
                index = in_flight.pop(future)
                faults.fire("parallel.shard-result")
                state.ready[index] = future.result()  # re-raises worker errors
                if pending:
                    submit_next()
            verdict = _commit_ready(context, state)
            if verdict is not None:
                return verdict
        return state.exhausted_all
    finally:
        for future in in_flight:
            future.cancel()


def _finish_serial(algorithm, context, prepared, state: _MergeState) -> bool:
    """Finish a partially-merged run in-process, in shard order.

    Already-fetched outcomes are committed as-is (never re-executed);
    missing shards run via ``_run_shard``, which records mappings straight
    into the context — the same order a healthy merge would have produced.
    """
    while state.next_commit < len(state.specs):
        if state.next_commit in state.ready:
            verdict = _commit_ready(context, state)
            if verdict is not None:
                return verdict
            continue
        index = state.next_commit
        state.next_commit += 1
        if not algorithm._run_shard(context, prepared, state.specs[index]):
            return False
    return state.exhausted_all


def _merge_stats(target: SearchStats, shard: SearchStats) -> None:
    """Fold one shard's search counters into the run's (in place)."""
    target.nodes_expanded += shard.nodes_expanded
    target.candidates_considered += shard.candidates_considered
    target.constraint_evaluations += shard.constraint_evaluations
    target.backtracks += shard.backtracks
    # filter_entries / filter_build_seconds belong to the prepare stage and
    # were credited once by the parent driver; shards report zeros there.


def run_specs_serial(algorithm, context, prepared, specs: Sequence[Any]) -> bool:
    """Execute already-computed shard specs in order, in-process.

    Byte-identical to serial execution — ``_shard_specs`` has already
    accounted for the shared (prefix/root) work in the parent's counters,
    and each spec's subtree work is counted by ``_run_shard`` exactly as a
    worker would.  Used when a plan yields too few shards to be worth
    dispatching, and as the recovery path when the process pool breaks
    before anything was committed.  An empty spec list means the split
    itself already explored (and counted) the entire space.
    """
    for spec in specs:
        if not algorithm._run_shard(context, prepared, spec):
            return False
    return True


def split_contiguous(items: Sequence[Any], shards: int) -> List[Sequence[Any]]:
    """Split *items* into at most *shards* contiguous, near-equal blocks.

    Order is preserved across block boundaries — concatenating the blocks
    reproduces *items* — which is what makes the shard-order merge equal the
    serial trial order.
    """
    count = min(shards, len(items))
    if count <= 0:
        return []
    size, extra = divmod(len(items), count)
    blocks: List[Sequence[Any]] = []
    start = 0
    for i in range(count):
        end = start + size + (1 if i < extra else 0)
        blocks.append(items[start:end])
        start = end
    return blocks
