"""Sharded parallel execution of compiled embedding plans.

The three NETEMBED searches are embarrassingly partitionable at the
*root-candidate* level: the first query node's candidate set is tried in a
deterministic order (ascending bit order for ECF, the seeded shuffle for RWB,
the configured candidate order for LNS), and the subtree under each root
candidate is completely independent of the others.  This module splits that
root trial order into contiguous blocks — *shards* — executes the shards on a
``concurrent.futures`` process pool, and merges the per-shard mapping lists
back together **in shard order**, so the merged stream is byte-identical to a
serial execution for any shard count.

Design notes
------------

* **What ships to a worker.**  One :class:`ShardGroup` per execute — the
  algorithm instance, the compiled :class:`~repro.core.plan.PreparedSearch`
  artifacts, and (only for algorithms that evaluate constraints lazily, i.e.
  LNS) the networks and constraint expressions — is pickled *once*.  Small
  groups ride inline with each task; large ones (a planetlab-scale filter
  set is megabytes) spill to a temporary file that each worker reads and
  memoises once by token, so the per-task payload is just a shard index and
  the algorithm-specific root slice no matter how many shards ship.
* **Budgets.**  The run's wall-clock budget is shared, not divided: the
  absolute deadline (``time.monotonic``-based, valid across local processes)
  ships with the group, and every shard enforces the remaining time when it
  starts.  Result caps are applied per shard (no shard can ever need to
  contribute more than the global cap) and re-applied by the merger, whose
  in-order commit makes the truncated stream equal serial's.
* **Work stealing.**  The engine oversplits — ``shard_factor`` shards per
  requested worker — and dispatches them through a sliding window of
  ``parallelism`` in-flight tasks, so a worker that exhausts a cheap shard
  early immediately picks up the next unfinished shard, and a single skewed
  subtree cannot serialise the whole run.  Shards made redundant by an
  early result-cap hit are cancelled before they start.
* **Failure.**  Exceptions raised inside a worker (including
  :class:`~repro.core.plan.PlanInvalidatedError`) propagate to the caller
  with their original type, exactly as the serial engine would raise them.
  A broken pool (a worker killed mid-run) degrades to serial execution when
  nothing has been committed yet, and re-raises otherwise.
"""

from __future__ import annotations

import itertools
import os
import pickle
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.result import SearchStats
from repro.utils.timing import Deadline, TimeoutExpired

#: How many shards the engine targets per requested worker.  Oversplitting is
#: the work-stealing mechanism: subtree costs are wildly skewed, and a pool
#: worker that finishes a cheap shard pulls the next pending one.
DEFAULT_SHARD_FACTOR = 4


# --------------------------------------------------------------------------- #
# Picklable work units
# --------------------------------------------------------------------------- #

@dataclass
class ShardGroup:
    """The per-execute state shared by every shard (pickled once).

    ``query``/``hosting``/``constraint``/``node_constraint`` are ``None``
    for algorithms whose search stage never touches them (ECF/RWB bake the
    constraints into the filter bitmasks at prepare time), which keeps the
    shipped payload down to the compiled artifacts themselves.
    """

    algorithm: Any
    prepared: Any
    query: Any = None
    hosting: Any = None
    constraint: Any = None
    node_constraint: Any = None
    #: Per-shard result cap == the run's effective global cap.
    max_results: Optional[int] = None
    #: Absolute ``time.monotonic()`` deadline shared by every shard
    #: (``None`` = unlimited).  Monotonic clocks are system-wide on the
    #: platforms the pool runs on, so parent and workers agree on it.
    deadline_at: Optional[float] = None


@dataclass
class PlanShard:
    """One unit of sharded work: a contiguous slice of the root trial order."""

    #: Merge position; shard *i*'s mappings precede shard *i+1*'s.
    index: int
    #: Algorithm-specific root slice (a bitmask for ECF, ``(start, hosts,
    #: base_seed)`` for RWB, ``(root, hosts)`` for LNS).
    spec: Any


@dataclass
class ShardOutcome:
    """What a worker sends back for one shard."""

    index: int
    #: Raw node assignments in discovery order (re-recorded by the merger so
    #: streaming callbacks and the result cap behave exactly as in serial).
    #: Column-encoded when every mapping shares one key order (ECF/RWB place
    #: nodes in a fixed visiting order): ``(keys, [host rows])`` pickles a
    #: fraction of the equivalent list of dicts.  Decode with
    #: :meth:`iter_assignments`.
    assignments: Any = None
    stats: SearchStats = field(default_factory=SearchStats)
    #: Whether the shard's subtrees were exhaustively explored.
    exhausted: bool = True
    #: Whether the shard stopped on the shared deadline.
    timed_out: bool = False

    def iter_assignments(self):
        """The shard's assignments as dicts, in discovery order."""
        if self.assignments is None:
            return
        kind, payload = self.assignments
        if kind == "dicts":
            yield from payload
        else:
            keys, rows = payload
            for row in rows:
                yield dict(zip(keys, row))


def _encode_assignments(mappings) -> Any:
    """Column-encode a shard's mappings when their key order is uniform.

    Placement order is part of the byte-identical-stream guarantee, so the
    encoding must round-trip dict insertion order — ``dict(zip(keys, row))``
    does, whenever every mapping was built along the same visiting order.
    """
    if not mappings:
        return None
    dicts = [mapping.as_dict() for mapping in mappings]
    keys = tuple(dicts[0])
    if all(tuple(d) == keys for d in dicts):
        return ("columns", (keys, [tuple(d.values()) for d in dicts]))
    return ("dicts", dicts)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #

#: Per-process memo of decoded ShardGroups, keyed by token: workers are
#: anonymous (any task can land on any of them), but each process only pays
#: the transport read + unpickle once.  Bounded — an execute's token dies
#: with its run.
_GROUP_CACHE: "Dict[str, ShardGroup]" = {}
_GROUP_CACHE_LIMIT = 4

#: Groups above this pickled size ship via a spill file instead of inline
#: task bytes: N shards of a megabytes-sized filter set must not pay the
#: pipe N times.
_INLINE_GROUP_LIMIT = 128 * 1024

_token_counter = itertools.count()

#: Transport: ``("bytes", pickled_group, sentinel_path)`` or
#: ``("file", spill_path, sentinel_path)``.  The sentinel is a file the
#: parent unlinks as the run's very last act (for file transport it *is*
#: the spill), giving in-flight shards of an already-finished run an
#: abandonment signal regardless of how the group shipped.
GroupTransport = Tuple[str, Any, str]


def _decode_group(token: str, transport: GroupTransport) -> ShardGroup:
    group = _GROUP_CACHE.get(token)
    if group is None:
        kind, payload, _sentinel = transport
        if kind == "file":
            with open(payload, "rb") as handle:
                payload = handle.read()
        group = pickle.loads(payload)
        while len(_GROUP_CACHE) >= _GROUP_CACHE_LIMIT:
            _GROUP_CACHE.pop(next(iter(_GROUP_CACHE)))
        _GROUP_CACHE[token] = group
    return group


def _spill_watcher(path: str, cancel: threading.Event,
                   stop: threading.Event) -> None:
    """Set *cancel* when the run's spill file disappears.

    The parent unlinks the spill as its very last act, so a shard still
    running at that point has been abandoned (result cap hit, stream
    closed, deadline fired) and its outcome will never be consumed —
    unwinding early frees the pool worker for live runs.
    """
    while not stop.wait(0.1):
        if not os.path.exists(path):
            cancel.set()
            return


def _execute_shard(token: str, transport: GroupTransport, index: int,
                   spec: Any) -> ShardOutcome:
    """Run one shard in a worker process.

    Exceptions other than the shard's own deadline expiry and the parent's
    abandonment signal propagate to the parent through the future with
    their original type intact.
    """
    # Imported lazily: base imports plan which must not import parallel first.
    from repro.core.base import SearchContext, StreamClosed

    group = _decode_group(token, transport)
    remaining: Optional[float] = None
    if group.deadline_at is not None:
        remaining = group.deadline_at - time.monotonic()
        if remaining <= 0:
            # The shared budget ran out before this shard even started —
            # the same outcome serial would reach at its next deadline check.
            return ShardOutcome(index=index, exhausted=False, timed_out=True)
    cancel = threading.Event()
    stop_watch = threading.Event()
    threading.Thread(target=_spill_watcher,
                     args=(transport[2], cancel, stop_watch),
                     daemon=True).start()
    context = SearchContext(
        query=group.query,
        hosting=group.hosting,
        constraint=group.constraint,
        node_constraint=group.node_constraint,
        deadline=Deadline(remaining),
        max_results=group.max_results,
        cancel=cancel,
    )
    try:
        exhausted = group.algorithm._run_shard(context, group.prepared, spec)
        timed_out = False
    except TimeoutExpired:
        exhausted, timed_out = False, True
    except StreamClosed:
        # Abandoned by the parent; the outcome is never consumed.
        exhausted, timed_out = False, False
    finally:
        stop_watch.set()
    return ShardOutcome(
        index=index,
        assignments=_encode_assignments(context.mappings),
        stats=context.stats,
        exhausted=exhausted,
        timed_out=timed_out,
    )


# --------------------------------------------------------------------------- #
# Pool management
# --------------------------------------------------------------------------- #

def _pool_context():
    """The multiprocessing context used for shard pools.

    The platform default is used (fork on Linux up to 3.13, forkserver from
    3.14, spawn on macOS/Windows): the engine is routinely driven from
    multithreaded contexts — service batch threads, every
    ``pump_mapping_stream`` producer — where forcing fork would court the
    fork-while-threaded deadlocks the interpreter defaults are moving away
    from.  ``REPRO_PARALLEL_START_METHOD`` overrides the choice explicitly
    (e.g. ``fork`` for cheapest worker start on a trusted workload).
    """
    import multiprocessing

    method = os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    return None


def make_pool(max_workers: Optional[int] = None) -> ProcessPoolExecutor:
    """A new shard process pool (callers own its shutdown)."""
    return ProcessPoolExecutor(max_workers=max_workers,
                               mp_context=_pool_context())


_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_lock = threading.Lock()


def shared_pool() -> ProcessPoolExecutor:
    """The process-wide shard pool, created lazily (``os.cpu_count`` workers).

    Used by :meth:`EmbeddingPlan.execute` when the caller supplies no pool of
    its own; the :class:`~repro.service.netembed.NetEmbedService` passes its
    own bounded pool instead.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = make_pool(os.cpu_count())
        return _shared_pool


def shutdown_shared_pool(wait_for_workers: bool = True) -> None:
    """Tear down the process-wide shard pool (no-op if never created)."""
    global _shared_pool
    with _shared_pool_lock:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.shutdown(wait=wait_for_workers)


def _reset_broken_shared_pool(pool: ProcessPoolExecutor) -> None:
    """Drop the shared pool if *pool* is it, so the next use gets a fresh one."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is pool:
            _shared_pool = None
    pool.shutdown(wait=False)


# --------------------------------------------------------------------------- #
# The parent-side engine
# --------------------------------------------------------------------------- #

def run_sharded(algorithm, context, prepared, parallelism: int,
                pool: Optional[ProcessPoolExecutor] = None,
                shard_factor: int = DEFAULT_SHARD_FACTOR) -> bool:
    """Execute *prepared* across shards and merge deterministically.

    Populates *context* (mappings, statistics, streaming callbacks) exactly
    like :meth:`EmbeddingAlgorithm._run_prepared` would, and follows the same
    contract: returns whether the search space was exhausted, raising
    :class:`~repro.utils.timing.TimeoutExpired` on deadline expiry.  Falls
    back to the serial path when the plan yields fewer than two shards.
    """
    if parallelism < 1:
        raise ValueError(f"parallelism must be >= 1, got {parallelism}")
    specs = algorithm._shard_specs(context, prepared,
                                   max(2, parallelism * shard_factor))
    if specs is None:
        return algorithm._run_prepared(context, prepared)
    if len(specs) < 2:
        # Too few roots to shard.  The specs are still executed (not thrown
        # away): _shard_specs may have consumed the run's random stream (RWB),
        # so re-entering _run_prepared would diverge from serial.
        return run_specs_serial(algorithm, context, prepared, specs)

    deadline_at = None
    remaining = context.deadline.remaining
    if remaining != float("inf"):
        if remaining <= 0:
            raise TimeoutExpired("search budget exhausted before sharding")
        deadline_at = time.monotonic() + remaining

    ships_networks = algorithm._shard_ships_networks
    group = ShardGroup(
        algorithm=algorithm,
        prepared=prepared,
        query=context.query if ships_networks else None,
        hosting=context.hosting if ships_networks else None,
        constraint=context.constraint if ships_networks else None,
        node_constraint=context.node_constraint if ships_networks else None,
        max_results=context.max_results,
        deadline_at=deadline_at,
    )
    token = f"{os.getpid()}:{next(_token_counter)}"
    blob = pickle.dumps(group, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > _INLINE_GROUP_LIMIT:
        fd, sentinel_path = tempfile.mkstemp(prefix="repro-shard-group-",
                                             suffix=".pkl")
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        transport: GroupTransport = ("file", sentinel_path, sentinel_path)
    else:
        # Small groups ship inline; the empty sentinel still gives in-flight
        # shards the abandonment signal when the parent finishes early.
        fd, sentinel_path = tempfile.mkstemp(prefix="repro-shard-run-",
                                             suffix=".live")
        os.close(fd)
        transport = ("bytes", blob, sentinel_path)

    owns_shared = pool is None
    executor = shared_pool() if pool is None else pool

    committed = [0]   # outcomes merged so far, visible to the except path
    try:
        return _dispatch_and_merge(executor, context, token, transport, specs,
                                   window=parallelism, committed=committed)
    except BrokenProcessPool:
        # A worker died (OOM-killed, hard crash).  If no outcome was merged
        # yet the run degrades to executing the shards serially in-process —
        # byte-identical to both the parallel and the serial stream.
        # Otherwise re-raise: a partially-committed stream must not restart.
        if owns_shared:
            _reset_broken_shared_pool(executor)
        if committed[0]:
            raise
        return run_specs_serial(algorithm, context, prepared, specs)
    finally:
        # The unlink is also the abandonment signal: discarded still-running
        # shards notice the sentinel vanish and unwind; a discarded pending
        # task that starts afterwards fails to decode the spill, and nobody
        # consumes its future.
        try:
            os.unlink(sentinel_path)
        except OSError:
            pass


def _dispatch_and_merge(executor: ProcessPoolExecutor, context, token: str,
                        transport: GroupTransport, specs: Sequence[Any],
                        window: int, committed: List[int]) -> bool:
    """Sliding-window dispatch plus the in-order merge loop.

    ``committed[0]`` counts merged outcomes; the caller's broken-pool
    recovery may only re-run the specs when it is still zero.
    """
    pending: List[Tuple[int, Any]] = [(i, spec) for i, spec in enumerate(specs)]
    pending.reverse()   # pop() from the tail == dispatch in shard order
    in_flight: Dict[Future, int] = {}
    ready: Dict[int, ShardOutcome] = {}
    next_commit = 0
    exhausted_all = True

    def submit_next() -> None:
        index, spec = pending.pop()
        future = executor.submit(_execute_shard, token, transport, index, spec)
        in_flight[future] = index

    try:
        while pending and len(in_flight) < window:
            submit_next()
        while in_flight:
            done, _ = wait(list(in_flight), timeout=0.1,
                           return_when=FIRST_COMPLETED)
            if not done:
                # Nothing finished in this slice: honour the run's own
                # deadline and cancellation signal while waiting.
                context.check_deadline()
                continue
            for future in done:
                index = in_flight.pop(future)
                ready[index] = future.result()  # re-raises worker exceptions
                if pending:
                    submit_next()
            # Commit every shard whose predecessors are all committed.
            while next_commit in ready:
                outcome = ready.pop(next_commit)
                next_commit += 1
                committed[0] += 1
                _merge_stats(context.stats, outcome.stats)
                exhausted_all = exhausted_all and outcome.exhausted
                for assignment in outcome.iter_assignments():
                    if context.record_mapping(assignment):
                        return False    # global cap reached, like serial
                if outcome.timed_out:
                    # Serial stops the instant the deadline fires; mappings
                    # from later shards are discarded so the committed
                    # stream stays a prefix of some serial-order stream.
                    raise TimeoutExpired(
                        f"shard {outcome.index} exceeded the shared "
                        f"search budget")
        return exhausted_all
    finally:
        for future in in_flight:
            future.cancel()


def _merge_stats(target: SearchStats, shard: SearchStats) -> None:
    """Fold one shard's search counters into the run's (in place)."""
    target.nodes_expanded += shard.nodes_expanded
    target.candidates_considered += shard.candidates_considered
    target.constraint_evaluations += shard.constraint_evaluations
    target.backtracks += shard.backtracks
    # filter_entries / filter_build_seconds belong to the prepare stage and
    # were credited once by the parent driver; shards report zeros there.


def run_specs_serial(algorithm, context, prepared, specs: Sequence[Any]) -> bool:
    """Execute already-computed shard specs in order, in-process.

    Byte-identical to serial execution — ``_shard_specs`` has already
    accounted for the shared (prefix/root) work in the parent's counters,
    and each spec's subtree work is counted by ``_run_shard`` exactly as a
    worker would.  Used when a plan yields too few shards to be worth
    dispatching, and as the recovery path when the process pool breaks
    before anything was committed.  An empty spec list means the split
    itself already explored (and counted) the entire space.
    """
    for spec in specs:
        if not algorithm._run_shard(context, prepared, spec):
            return False
    return True


def split_contiguous(items: Sequence[Any], shards: int) -> List[Sequence[Any]]:
    """Split *items* into at most *shards* contiguous, near-equal blocks.

    Order is preserved across block boundaries — concatenating the blocks
    reproduces *items* — which is what makes the shard-order merge equal the
    serial trial order.
    """
    count = min(shards, len(items))
    if count <= 0:
        return []
    size, extra = divmod(len(items), count)
    blocks: List[Sequence[Any]] = []
    start = 0
    for i in range(count):
        end = start + size + (1 if i < extra else 0)
        blocks.append(items[start:end])
        start = end
    return blocks
