"""Compiled embedding plans and the version-aware plan cache.

The NETEMBED service (paper §III) is a long-lived facade answering a stream
of embedding queries against slowly-drifting network models.  Treating each
query as a one-shot ``search()`` re-pays the whole hosting-side compilation —
indexing, arc tables, filter matrices — on every call, even though that work
is identical for every request hitting the same model version.  This module
splits the API in two:

* :meth:`EmbeddingAlgorithm.prepare(request) <repro.core.base.EmbeddingAlgorithm.prepare>`
  compiles the request into an :class:`EmbeddingPlan` — the
  :class:`~repro.core.indexing.NodeIndexer`, the vectorizer kernels and the
  filter/candidate bitmasks, frozen at a specific model epoch;
* :meth:`EmbeddingPlan.execute` / :meth:`EmbeddingPlan.iter_mappings` run the
  search against those artifacts as many times as the caller likes, each run
  with its own budget (and, for seedable algorithms, its own random stream).

Plans are *version-aware*: they capture the hosting and query networks'
monotonic :attr:`~repro.graphs.network.Network.mutation_count` at prepare
time, so staleness is a pair of integer comparisons.  Executing a stale plan
raises :class:`PlanInvalidatedError`; :meth:`EmbeddingPlan.refresh` recompiles.

:class:`PlanCache` is the bounded LRU the service routes its traffic through,
keyed by (network name, model version, algorithm signature, request
fingerprint) with hit/miss/eviction statistics per cache and per entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.api.request import Budget, SearchRequest
from repro.constraints.vectorizer import HAVE_NUMPY
from repro.core.filters import FilterMatrices
from repro.core.indexing import NodeIndexer
from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult
from repro.core.words import WordTable

NodeId = Hashable


class PlanInvalidatedError(RuntimeError):
    """Raised when a stale :class:`EmbeddingPlan` is executed.

    A plan is stale once the hosting or query network has mutated since
    :meth:`~repro.core.base.EmbeddingAlgorithm.prepare` compiled it — its
    bitmasks may describe edges that no longer exist.  Re-prepare (or call
    :meth:`EmbeddingPlan.refresh`) to get fresh artifacts.
    """


@dataclass
class PreparedSearch:
    """Artifacts compiled by an algorithm's prepare stage.

    Which fields are populated depends on the algorithm: ECF/RWB fill
    :attr:`filters`/:attr:`order`/:attr:`prior`, LNS fills
    :attr:`indexer`/:attr:`allowed_masks` (its constraints are evaluated
    lazily at search time), and algorithms without a separable prepare stage
    leave everything empty — their plans simply re-run the search from
    scratch on every execute.
    """

    #: ECF/RWB: the compiled filter matrices (``F``/``F̄`` bitmasks).
    filters: Optional[FilterMatrices] = None
    #: ECF/RWB: the query-node visiting order (Lemma 1 heuristics).
    order: Optional[List[NodeId]] = None
    #: ECF/RWB: per-depth placed-neighbour tuples for ``order``.
    prior: Optional[List[Tuple[NodeId, ...]]] = None
    #: LNS: dense index over the hosting nodes.
    indexer: Optional[NodeIndexer] = None
    #: LNS: per-query-node candidate bitmasks from the node constraint.
    allowed_masks: Optional[Dict[NodeId, int]] = None
    #: LNS: memoised hosting adjacency bitmasks, shared across executes.
    adjacency_masks: Optional[Dict[NodeId, int]] = None
    #: Some query node has no candidate at all: every execute is an empty,
    #: provably complete search and the tree stage is skipped entirely.
    infeasible: bool = False
    #: Outcome of the cheap structural screens, decided once at prepare time:
    #: ``"empty"`` (zero-node query — embeds trivially), ``"infeasible"``
    #: (structurally impossible), or ``None`` (search normally).  Executes
    #: trust this instead of re-screening on every run.
    screen: Optional[str] = None
    #: Stats credited to each execute so a planned run reports exactly what a
    #: fresh search would (the filter stage ran once, at prepare time).
    constraint_evaluations: int = 0
    filter_entries: int = 0
    filter_build_seconds: float = 0.0

    #: The LNS mask dicts that travel as word tables across pickle
    #: boundaries (the ECF/RWB masks do the same inside FilterMatrices).
    _WORD_FIELDS = ("allowed_masks", "adjacency_masks")

    def __getstate__(self):
        """Ship the mask dicts as fixed-width word tables.

        The word tables pickle private copies of their arrays (see
        :class:`~repro.core.words.WordTable`), so a shard payload never
        aliases this object's buffers; compiled-kernel plans live on the
        filters object and are stripped by *its* ``__getstate__``.
        """
        state = dict(self.__dict__)
        if HAVE_NUMPY and self.indexer is not None:
            num_bits = len(self.indexer)
            for name in self._WORD_FIELDS:
                masks = state.get(name)
                if isinstance(masks, dict):
                    state[name] = WordTable.from_masks(masks, num_bits)
        return state

    def __setstate__(self, state) -> None:
        for name in self._WORD_FIELDS:
            value = state.get(name)
            if isinstance(value, WordTable):
                state[name] = value.to_masks()
        self.__dict__.update(state)


class EmbeddingPlan:
    """A compiled, reusable (algorithm, request) pair.

    Obtained from :meth:`EmbeddingAlgorithm.prepare`; holds everything the
    search needs that does not depend on the per-run budget or random stream.
    Executions are independent and thread-safe: the prepared artifacts are
    only read (LNS's adjacency memo grows monotonically), and each execute
    gets its own deadline, statistics and result.
    """

    def __init__(self, algorithm, request: SearchRequest,
                 prepared: PreparedSearch, prepare_seconds: float = 0.0,
                 hosting_epoch: Optional[int] = None,
                 query_epoch: Optional[int] = None) -> None:
        self.algorithm = algorithm
        self.request = request
        self.prepared = prepared
        #: Wall-clock seconds the prepare stage took.
        self.prepare_seconds = prepare_seconds
        #: Model epochs the plan was compiled against.  prepare() reads them
        #: *before* compilation, so a mutation landing mid-compile leaves the
        #: plan stale rather than silently half-built.
        self.hosting_epoch = (request.hosting.mutation_count
                              if hosting_epoch is None else hosting_epoch)
        self.query_epoch = (request.query.mutation_count
                            if query_epoch is None else query_epoch)
        #: How the plan came to be, when produced by :meth:`refresh`:
        #: ``"patched"`` (delta-aware incremental patch) or ``"recompiled"``
        #: (full prepare); ``None`` for plans prepared directly.
        self.refresh_mode: Optional[str] = None
        self._executions = 0
        self._executions_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Staleness
    # ------------------------------------------------------------------ #

    @property
    def stale(self) -> bool:
        """Whether either network has mutated since this plan was compiled."""
        return (self.hosting_epoch != self.request.hosting.mutation_count
                or self.query_epoch != self.request.query.mutation_count)

    def check_fresh(self) -> None:
        """Raise :class:`PlanInvalidatedError` if the plan is stale."""
        if self.stale:
            raise PlanInvalidatedError(
                f"plan for {self.request.query.name!r} -> "
                f"{self.request.hosting.name!r} was compiled at epoch "
                f"(hosting={self.hosting_epoch}, query={self.query_epoch}) but "
                f"the networks are now at "
                f"(hosting={self.request.hosting.mutation_count}, "
                f"query={self.request.query.mutation_count}); re-prepare the plan")

    @property
    def patchable(self) -> bool:
        """Whether the incremental patch path *could* apply to this plan.

        True when the query is unchanged and the hosting network's journal
        still covers the plan's epoch with attribute-only mutations.  A
        cheap (O(1), no delta materialised) necessary condition —
        :meth:`try_patch` may still decline (e.g. the delta touches too
        many rows) — used by the plan cache on its eviction sweep to decide
        which stale entries are worth keeping around.
        """
        if self.query_epoch != self.request.query.mutation_count:
            return False
        return self.request.hosting.mutation_journal.can_replay_from(
            self.hosting_epoch)

    def try_patch(self) -> Optional["EmbeddingPlan"]:
        """A delta-patched plan at the current epochs, or ``None``.

        Routes through the algorithm's incremental recompile path
        (:meth:`~repro.core.base.EmbeddingAlgorithm.patch_plan`): the
        hosting network's mutation journal is replayed onto the compiled
        artifacts, so the cost is proportional to the delta rather than to
        the network.  ``None`` means "not patchable — rebuild": the journal
        overflowed, the delta was structural, the query itself mutated, or
        the algorithm keeps no patchable artifacts.  This plan is never
        mutated; a returned plan is a fresh object with
        ``refresh_mode == "patched"``.
        """
        patched = self.algorithm.patch_plan(self)
        if patched is not None and patched is not self:
            patched.refresh_mode = "patched"
        return patched

    def refresh(self, incremental: bool = True) -> "EmbeddingPlan":
        """A plan for the same request at the current epochs.

        With *incremental* (the default) a fresh plan is returned as-is, and
        a stale one is first offered to the delta-aware patch path —
        falling back to a full :meth:`~repro.core.base.EmbeddingAlgorithm.prepare`
        whenever patching does not apply.  ``incremental=False`` forces the
        historical full recompile unconditionally.  The returned plan's
        :attr:`refresh_mode` says which route was taken.
        """
        if incremental:
            if not self.stale:
                return self
            patched = self.try_patch()
            if patched is not None:
                return patched
        plan = self.algorithm.prepare(self.request)
        plan.refresh_mode = "recompiled"
        return plan

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    @property
    def executions(self) -> int:
        """How many times this plan has been executed."""
        return self._executions

    def execute(self, budget: Optional[Budget] = None, *,
                on_mapping=None, cancel=None, rng=None,
                parallelism: Optional[int] = None, pool=None) -> EmbeddingResult:
        """Run the search against the compiled artifacts.

        Parameters
        ----------
        budget:
            Per-run limits; defaults to the prepared request's budget.  The
            timeout covers only the tree search — the filter stage already
            ran at prepare time, which is the whole point.
        on_mapping, cancel:
            Streaming hooks, as on :meth:`EmbeddingAlgorithm.request`.
        rng:
            Per-run randomness source for seedable algorithms (RWB); lets a
            single cached plan serve requests carrying different seeds.
            Ignored by deterministic algorithms.
        parallelism:
            Shard the search across this many process-pool workers
            (:mod:`repro.core.parallel`); the mapping stream and the
            full-enumeration counters are identical to a serial run.
            ``None`` defers to the prepared request's own ``parallelism``;
            ``1`` forces serial.
        pool:
            Process pool for the shards (``None`` = the module-wide shared
            pool); only consulted when parallelism is in effect.
        """
        self.check_fresh()
        run_budget = self.request.budget if budget is None else budget
        result = self.algorithm._drive(self.request, prepared=self.prepared,
                                       budget=run_budget, on_mapping=on_mapping,
                                       cancel=cancel, rng=rng,
                                       parallelism=parallelism, pool=pool)
        with self._executions_lock:
            self._executions += 1
        return result

    def stream(self, budget: Optional[Budget] = None, buffer_size: int = 1,
               rng=None, parallelism: Optional[int] = None,
               pool=None) -> Iterator[Mapping]:
        """Generator form of :meth:`execute`: lazily yields each Mapping."""
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.check_fresh()
        from repro.core.base import pump_mapping_stream

        def run(push, closed):
            return self.execute(budget, on_mapping=push, cancel=closed,
                                rng=rng, parallelism=parallelism, pool=pool)

        return pump_mapping_stream(run, f"{self.algorithm.name}-plan",
                                   buffer_size)

    def iter_mappings(self, budget: Optional[Budget] = None,
                      buffer_size: int = 1, rng=None,
                      parallelism: Optional[int] = None,
                      pool=None) -> Iterator[Mapping]:
        """Alias of :meth:`stream`, mirroring the algorithm-level API."""
        return self.stream(budget=budget, buffer_size=buffer_size, rng=rng,
                           parallelism=parallelism, pool=pool)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly summary of the plan (used by ``repro plan``)."""
        from repro.core import kernel

        filters = self.prepared.filters
        return {
            "kernel": kernel.active_backend(),
            "algorithm": self.algorithm.name,
            "query": self.request.query.name,
            "hosting": self.request.hosting.name,
            "hosting_epoch": self.hosting_epoch,
            "query_epoch": self.query_epoch,
            "stale": self.stale,
            "infeasible": self.prepared.infeasible,
            "executions": self._executions,
            "prepare_seconds": self.prepare_seconds,
            "filter_cells": filters.cell_count if filters is not None else 0,
            "filter_entries": self.prepared.filter_entries,
            "constraint_evaluations": self.prepared.constraint_evaluations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stale" if self.stale else "fresh"
        return (f"<EmbeddingPlan {self.algorithm.name} "
                f"{self.request.query.name!r} -> {self.request.hosting.name!r} "
                f"[{state}, {self._executions} executions]>")


# --------------------------------------------------------------------------- #
# The version-aware LRU plan cache
# --------------------------------------------------------------------------- #

#: Cache key: (network name, model version, algorithm signature, request
#: fingerprint).  The model version makes monitor refreshes an automatic
#: miss; the plan's own epoch check catches in-place mutations that nobody
#: reported to the registry.
PlanKey = Tuple


@dataclass
class PlanCacheEntry:
    """One cached plan plus its per-entry statistics."""

    key: PlanKey
    plan: EmbeddingPlan
    hits: int = 0


class PlanCache:
    """A bounded, thread-safe LRU cache of :class:`EmbeddingPlan` objects.

    ``get`` drops (and counts) entries whose plan went stale underneath the
    key — the cache never hands out a plan that would raise
    :class:`PlanInvalidatedError` on execute.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, PlanCacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._patched = 0
        self._recompiled = 0

    # ------------------------------------------------------------------ #

    def get(self, key: PlanKey) -> Optional[EmbeddingPlan]:
        """The cached plan for *key*, or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.plan.stale:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            entry.hits += 1
            return entry.plan

    def put(self, key: PlanKey, plan: EmbeddingPlan,
            refresh_mode: Optional[str] = None) -> None:
        """Insert (or replace) *key*'s plan, evicting LRU entries if needed.

        Also purges every entry whose plan has gone stale *and* is beyond
        the reach of the incremental patch path: entries keyed by a
        superseded model version become unreachable through :meth:`get`
        (lookups carry the new version), so without the sweep they would pin
        their filter matrices — and, after a re-register, the whole replaced
        network — until LRU churn aged them out.  Stale-but-patchable
        entries survive the sweep: they are the raw material
        :meth:`pop_predecessor` turns into cheaply patched plans when their
        traffic returns, and the LRU bound still caps their number.  ``put``
        only runs on the cold miss path, so the O(size) sweep never taxes
        warm hits.

        *refresh_mode* records how a stale predecessor was brought up to
        date for this key — ``"patched"`` (delta patch) or ``"recompiled"``
        (full prepare) — and feeds the corresponding :meth:`stats` counters.
        """
        with self._lock:
            if refresh_mode == "patched":
                self._patched += 1
            elif refresh_mode == "recompiled":
                self._recompiled += 1
            for stale_key in [k for k, entry in self._entries.items()
                              if entry.plan.stale and not entry.plan.patchable]:
                del self._entries[stale_key]
                self._invalidations += 1
            if key in self._entries:
                self._entries[key].plan = plan
                self._entries.move_to_end(key)
            else:
                self._entries[key] = PlanCacheEntry(key=key, plan=plan)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1

    def pop_predecessor(self, key: PlanKey) -> Optional[EmbeddingPlan]:
        """Remove and return a superseded-version plan for *key*'s traffic.

        A predecessor shares *key*'s network name, algorithm signature and
        request fingerprint but was compiled against a different model
        version — exactly the entry a monitor tick stranded.  The caller
        (the service's miss path) decides whether it can be patched onto the
        live model or must be recompiled; either way it is removed here so a
        failed patch cannot be retried forever.  ``None`` when no such entry
        exists.  Requires the canonical 4-tuple key shape.
        """
        name, _version, signature, fingerprint = key
        with self._lock:
            for other, entry in self._entries.items():
                if (other != key and other[0] == name
                        and other[2] == signature and other[3] == fingerprint):
                    del self._entries[other]
                    return entry.plan
        return None

    def clear(self) -> None:
        """Drop every cached plan (statistics are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        """Aggregate hit/miss/eviction counters (a snapshot)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "patched": self._patched,
                "recompiled": self._recompiled,
            }

    def entries(self) -> List[PlanCacheEntry]:
        """Snapshot of the cached entries, LRU-first."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not entry.plan.stale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (f"<PlanCache {stats['size']}/{stats['capacity']} entries, "
                f"{stats['hits']} hits / {stats['misses']} misses>")
