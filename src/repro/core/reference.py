"""The pre-bitset, set-semantics candidate engine, preserved verbatim.

This module is the frozen "before" of the bitset refactor: dict-of-set filter
matrices built and queried exactly the way the original implementation did,
plus a recursive ECF on top of them.  It exists for two reasons:

* **Parity.**  ``tests/test_core_bitset_parity.py`` asserts that the bitmask
  engine produces identical cells, candidate sets, entry counts and mapping
  streams on randomised workloads, with this module as the oracle.
* **Trajectory.**  ``benchmarks/bench_perf_core.py`` times this engine
  against the bitset engine on the same workload and records both numbers in
  ``BENCH_core.json``, so every future perf PR can see where it started.

It is intentionally *not* registered with the algorithm registry: nothing in
the production path should ever pick it up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.constraints import ConstraintExpression
from repro.core.base import EmbeddingAlgorithm, SearchContext
from repro.core.filters import FilterKey, compute_node_candidates
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Stopwatch

_EMPTY_SET: Set[NodeId] = set()


@dataclass
class ReferenceFilterMatrices:
    """Dict-of-set filter matrices with the original candidate algebra."""

    match: Dict[FilterKey, Set[NodeId]] = field(default_factory=dict)
    non_match: Dict[FilterKey, Set[NodeId]] = field(default_factory=dict)
    node_candidates: Dict[NodeId, Set[NodeId]] = field(default_factory=dict)
    constraint_evaluations: int = 0
    build_seconds: float = 0.0

    @property
    def entry_count(self) -> int:
        return (sum(len(s) for s in self.match.values())
                + sum(len(s) for s in self.non_match.values()))

    @property
    def cell_count(self) -> int:
        return len(self.match)

    def candidate_count(self, query_node: NodeId) -> int:
        """Cardinality of expression (1)'s candidate set for *query_node*."""
        return len(self.node_candidates.get(query_node, _EMPTY_SET))

    def candidates_unplaced(self, query_node: NodeId) -> Set[NodeId]:
        return set(self.node_candidates.get(query_node, _EMPTY_SET))

    def candidates_given(self, query_node: NodeId,
                         placed_neighbors: Iterable[Tuple[NodeId, NodeId]],
                         used_hosts: Iterable[NodeId]) -> Set[NodeId]:
        placed = list(placed_neighbors)
        if not placed:
            result = self.candidates_unplaced(query_node)
        else:
            result: Optional[Set[NodeId]] = None
            for neighbor, host in placed:
                cell = self.match.get((neighbor, host, query_node), _EMPTY_SET)
                if result is None:
                    result = set(cell)
                else:
                    result &= cell
                if not result:
                    return set()
        result -= set(used_hosts)
        return result

    def cell(self, placed_query: NodeId, placed_host: NodeId,
             next_query: NodeId) -> FrozenSet[NodeId]:
        return frozenset(self.match.get((placed_query, placed_host, next_query),
                                        _EMPTY_SET))

    def non_match_cell(self, placed_query: NodeId, placed_host: NodeId,
                       next_query: NodeId) -> FrozenSet[NodeId]:
        return frozenset(self.non_match.get((placed_query, placed_host, next_query),
                                            _EMPTY_SET))


def build_filters_reference(query: QueryNetwork, hosting: HostingNetwork,
                            constraint: ConstraintExpression,
                            node_constraint: Optional[ConstraintExpression] = None,
                            record_non_matches: bool = True,
                            deadline=None) -> ReferenceFilterMatrices:
    """The original (pre-bitset) ``build_filters``, kept line-for-line."""
    stopwatch = Stopwatch().start()
    filters = ReferenceFilterMatrices()
    trivial = constraint.is_trivial

    node_allowed = compute_node_candidates(query, hosting, node_constraint)

    pair_edges: Dict[Tuple[NodeId, NodeId], List[Edge]] = {}
    for q_source, q_target in query.edges():
        qa, qb = sorted((q_source, q_target), key=str)
        pair_edges.setdefault((qa, qb), []).append((q_source, q_target))

    def arc_attrs(r_from: NodeId, r_to: NodeId):
        if hosting.has_edge(r_from, r_to):
            return hosting.edge_attrs(r_from, r_to)
        if not hosting.directed and hosting.has_edge(r_to, r_from):
            return hosting.edge_attrs(r_to, r_from)
        return None

    host_pair_info = []
    seen_pairs = set()
    for r1, r2 in hosting.edges():
        for ra, rb in ((r1, r2), (r2, r1)):
            if ra == rb or (ra, rb) in seen_pairs:
                continue
            seen_pairs.add((ra, rb))
            host_pair_info.append((ra, rb, arc_attrs(ra, rb), arc_attrs(rb, ra),
                                   hosting.node_attrs(ra), hosting.node_attrs(rb)))

    evaluate = constraint.evaluate
    evaluations = 0
    for (qa, qb), edges_between in pair_edges.items():
        if deadline is not None:
            deadline.check()
        allowed_a = node_allowed[qa]
        allowed_b = node_allowed[qb]
        edge_contexts = []
        for q_source, q_target in edges_between:
            edge_contexts.append((q_source == qa, {
                "vEdge": query.edge_attrs(q_source, q_target),
                "vSource": query.node_attrs(q_source),
                "vTarget": query.node_attrs(q_target),
                "rEdge": None, "rSource": None, "rTarget": None,
            }))
        for ra, rb, attrs_ab, attrs_ba, attrs_a, attrs_b in host_pair_info:
            matched = ra in allowed_a and rb in allowed_b
            if matched:
                for forward, context in edge_contexts:
                    r_edge_attrs = attrs_ab if forward else attrs_ba
                    if r_edge_attrs is None:
                        matched = False
                        break
                    if trivial:
                        continue
                    evaluations += 1
                    context["rEdge"] = r_edge_attrs
                    context["rSource"] = attrs_a if forward else attrs_b
                    context["rTarget"] = attrs_b if forward else attrs_a
                    if not evaluate(context):
                        matched = False
                        break
            if matched:
                filters.match.setdefault((qa, ra, qb), set()).add(rb)
                filters.match.setdefault((qb, rb, qa), set()).add(ra)
                filters.node_candidates.setdefault(qb, set()).add(rb)
                filters.node_candidates.setdefault(qa, set()).add(ra)
            elif record_non_matches:
                filters.non_match.setdefault((qa, ra, qb), set()).add(rb)
                filters.non_match.setdefault((qb, rb, qa), set()).add(ra)

    for node in query.nodes():
        if node not in filters.node_candidates:
            filters.node_candidates[node] = set(node_allowed[node])

    filters.constraint_evaluations = evaluations
    filters.build_seconds = stopwatch.stop()
    return filters


class ReferenceECF(EmbeddingAlgorithm):
    """The original recursive ECF over :class:`ReferenceFilterMatrices`.

    Same ordering heuristics, same candidate algebra, same
    ``sorted(candidates, key=str)`` trial order — so its mapping stream is
    the ground truth the bitset ECF must reproduce byte for byte.
    """

    name = "ECF-reference"

    def __init__(self, ordering: str = "connectivity",
                 record_non_matches: bool = True) -> None:
        from repro.core.ordering import ORDERINGS
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}")
        self._ordering = ORDERINGS[ordering]
        self._record_non_matches = bool(record_non_matches)

    def _run(self, context: SearchContext) -> bool:
        filters = build_filters_reference(
            context.query, context.hosting, context.constraint,
            context.node_constraint,
            record_non_matches=self._record_non_matches,
            deadline=context.deadline)
        context.stats.constraint_evaluations += filters.constraint_evaluations
        context.stats.filter_entries = filters.entry_count
        context.stats.filter_build_seconds = filters.build_seconds

        if any(not filters.node_candidates.get(node)
               for node in context.query.nodes()):
            return True

        order = self._ordering(context.query, filters)
        assignment: Dict[NodeId, NodeId] = {}
        used: Set[NodeId] = set()
        return self._descend(context, filters, order, 0, assignment, used)

    def _descend(self, context: SearchContext, filters: ReferenceFilterMatrices,
                 order: List[NodeId], depth: int,
                 assignment: Dict[NodeId, NodeId], used: Set[NodeId]) -> bool:
        context.check_deadline()

        if depth == len(order):
            stop = context.record_mapping(dict(assignment))
            return not stop

        node = order[depth]
        placed_neighbors = [(neighbor, assignment[neighbor])
                            for neighbor in context.query.neighbors(node)
                            if neighbor in assignment]
        candidates = filters.candidates_given(node, placed_neighbors, used)

        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += len(candidates)

        if not candidates:
            context.stats.backtracks += 1
            return True

        for host in sorted(candidates, key=str):
            assignment[node] = host
            used.add(host)
            keep_going = self._descend(context, filters, order, depth + 1,
                                       assignment, used)
            del assignment[node]
            used.discard(host)
            if not keep_going:
                return False
        return True
