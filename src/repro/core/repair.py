"""Embedding repair under network churn: fix a mapping, don't re-embed it.

A reserved embedding keeps running while the hosting network drifts
underneath it — delays jitter, load moves, nodes go down.  When the drift
breaks the mapping (a hosting edge leaves the requested delay window, a host
fails ``rNode.up == true``), re-running the full search throws away every
still-valid placement.  This module repairs instead: it re-validates the
mapping against the current model, *releases only the violated assignments*,
and re-places them with an LNS-style local search that keeps every other
assignment pinned.

The search mirrors LNS's heuristics (paper §V-C): released vertices are
re-placed most-constrained-first (most edges into the already-assigned
region), candidate hosts come from the intersection of the hosting
neighbourhoods of the assigned neighbours' images, and every connecting edge
is checked lazily.  When the released set cannot be re-placed, the
neighbourhood *ripples outward* — the released region grows by its query
neighbours and the search retries — degrading gracefully to a full re-embed
(every vertex released) before reporting failure, so a ``failed`` repair of a
connected query really means the query no longer embeds at all under the
pinned-free relaxation.

Repaired mappings satisfy exactly the same validity oracle as fresh
embeddings (:func:`~repro.core.mapping.validate_mapping`), which the test
suite asserts property-style under randomised churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.constraints import ConstraintExpression, edge_context, node_context
from repro.core.mapping import Mapping, MappingViolation, validate_mapping
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, NodeId
from repro.graphs.query import QueryNetwork
from repro.utils.timing import Deadline, Stopwatch, TimeoutExpired

#: Candidate filter hook: ``(query node, hosting node) -> bool``.  The service
#: uses it to keep repairs inside spare reservation capacity.
CandidateFilter = Callable[[NodeId, NodeId], bool]


@dataclass
class RepairStats:
    """Work counters of one repair run (same vocabulary as SearchStats)."""

    nodes_expanded: int = 0
    candidates_considered: int = 0
    backtracks: int = 0
    constraint_evaluations: int = 0


@dataclass
class RepairResult:
    """Outcome of :func:`repair_mapping`.

    ``status`` is one of:

    * ``"intact"`` — the mapping still validates; nothing was touched;
    * ``"repaired"`` — a valid mapping was rebuilt; see :attr:`moved`;
    * ``"failed"`` — no valid mapping exists even with every vertex released;
    * ``"timeout"`` — the budget expired before a verdict.
    """

    status: str
    original: Mapping
    mapping: Optional[Mapping]
    #: What the re-validation found before any repair was attempted.
    violations: List[MappingViolation] = field(default_factory=list)
    #: Query nodes directly implicated in the violations.
    violated_nodes: List[NodeId] = field(default_factory=list)
    #: Query nodes whose assignment was released for re-placement (grows
    #: with each ripple round; superset of :attr:`violated_nodes`).
    released_nodes: List[NodeId] = field(default_factory=list)
    #: Ripple rounds attempted (1 = the violated set alone sufficed).
    rounds: int = 0
    elapsed_seconds: float = 0.0
    stats: RepairStats = field(default_factory=RepairStats)

    @property
    def ok(self) -> bool:
        """Whether a valid mapping is in hand (intact or repaired)."""
        return self.status in ("intact", "repaired")

    @property
    def moved(self) -> Dict[NodeId, Tuple[NodeId, NodeId]]:
        """Query nodes whose host actually changed: ``{q: (old, new)}``."""
        if self.mapping is None:
            return {}
        old = self.original.as_dict()
        return {q: (old.get(q), r) for q, r in self.mapping.items()
                if old.get(q) != r}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RepairResult {self.status}: {len(self.moved)} moved / "
                f"{len(self.released_nodes)} released in {self.rounds} round(s)>")


def violated_query_nodes(mapping: Mapping, query: QueryNetwork,
                         hosting: HostingNetwork,
                         constraint: Optional[ConstraintExpression] = None,
                         node_constraint: Optional[ConstraintExpression] = None,
                         ) -> Set[NodeId]:
    """The query nodes directly implicated in a mapping's violations.

    The node-level restatement of :func:`~repro.core.mapping.validate_mapping`:
    unmapped nodes, nodes on missing/failing hosts, both endpoints of every
    unsupported or constraint-violating edge, and all parties to an
    injectivity collision.  Empty set == the mapping is valid.
    """
    assignment = {q: r for q, r in mapping.items() if query.has_node(q)}
    violated: Set[NodeId] = set(query.nodes()) - set(assignment)

    by_host: Dict[NodeId, List[NodeId]] = {}
    for query_node, host in assignment.items():
        by_host.setdefault(host, []).append(query_node)
        if not hosting.has_node(host):
            violated.add(query_node)
            continue
        if node_constraint is not None and not node_constraint.is_trivial:
            if not node_constraint.evaluate(
                    node_context(query, query_node, hosting, host)):
                violated.add(query_node)
    for host, holders in by_host.items():
        if len(holders) > 1:
            violated.update(holders)

    check_constraint = constraint is not None and not constraint.is_trivial
    for q_source, q_target in query.edges():
        if q_source not in assignment or q_target not in assignment:
            continue
        r_source, r_target = assignment[q_source], assignment[q_target]
        if not hosting.has_node(r_source) or not hosting.has_node(r_target):
            continue   # already violated above
        oriented = _hosting_orientation(hosting, r_source, r_target)
        if oriented is None:
            violated.update((q_source, q_target))
            continue
        if check_constraint and not constraint.evaluate(
                edge_context(query, (q_source, q_target), hosting, oriented)):
            violated.update((q_source, q_target))
    return violated


def repair_mapping(query: QueryNetwork, hosting: HostingNetwork,
                   mapping: Mapping,
                   constraint: Optional[ConstraintExpression] = None,
                   node_constraint: Optional[ConstraintExpression] = None,
                   timeout: Optional[float] = None,
                   max_rounds: Optional[int] = None,
                   candidate_ok: Optional[CandidateFilter] = None
                   ) -> RepairResult:
    """Re-validate *mapping* against the live model and repair it in place.

    Parameters
    ----------
    query, hosting, constraint, node_constraint:
        The embedding problem the mapping was an answer to, evaluated
        against the hosting network's *current* attributes.
    mapping:
        The (possibly broken) embedding to repair.
    timeout:
        Wall-clock budget in seconds (``None`` = unlimited); expiry yields
        ``status="timeout"``.
    max_rounds:
        Cap on ripple rounds (``None`` = keep growing until every query
        node is released).  With a cap, exhausting it reports ``failed``
        even though a wider release might have succeeded.
    candidate_ok:
        Optional per-(query node, hosting node) veto, e.g. "has spare
        reservation capacity".  Hosts already used by *mapping* should be
        accepted by the filter or the repair may needlessly fail.
    """
    stopwatch = Stopwatch().start()
    deadline = Deadline(timeout)
    violations = validate_mapping(mapping, query, hosting, constraint,
                                  node_constraint)
    if not violations:
        return RepairResult(status="intact", original=mapping, mapping=mapping,
                            elapsed_seconds=stopwatch.stop())

    violated = violated_query_nodes(mapping, query, hosting, constraint,
                                    node_constraint)
    original = {q: r for q, r in mapping.items() if query.has_node(q)}
    stats = RepairStats()
    released = set(violated)
    rounds = 0
    status = "failed"
    repaired: Optional[Mapping] = None
    try:
        while True:
            rounds += 1
            assignment = _reassign(query, hosting, original, released,
                                   constraint, node_constraint, candidate_ok,
                                   deadline, stats)
            if assignment is not None:
                repaired = Mapping(assignment)
                status = "repaired"
                break
            if max_rounds is not None and rounds >= max_rounds:
                break
            # Ripple outward: free the query neighbours of the released
            # region; once a component saturates, free everything (an
            # injectivity conflict can sit in another component).
            grown = released | {neighbor for node in released
                                for neighbor in query.neighbors(node)}
            if grown == released:
                grown = set(query.nodes())
            if grown == released:
                break
            released = grown
    except TimeoutExpired:
        status = "timeout"

    return RepairResult(status=status, original=mapping, mapping=repaired,
                        violations=violations,
                        violated_nodes=sorted(violated, key=str),
                        released_nodes=sorted(released, key=str),
                        rounds=rounds, elapsed_seconds=stopwatch.stop(),
                        stats=stats)


# --------------------------------------------------------------------------- #
# The pinned-region local search
# --------------------------------------------------------------------------- #

def _reassign(query: QueryNetwork, hosting: HostingNetwork,
              original: Dict[NodeId, NodeId], released: Set[NodeId],
              constraint: Optional[ConstraintExpression],
              node_constraint: Optional[ConstraintExpression],
              candidate_ok: Optional[CandidateFilter],
              deadline: Deadline, stats: RepairStats
              ) -> Optional[Dict[NodeId, NodeId]]:
    """Re-place *released* with everything else pinned; ``None`` on failure."""
    pinned = {q: r for q, r in original.items() if q not in released}
    order = _placement_order(query, released, set(pinned))

    assignment = dict(pinned)
    used = set(pinned.values())
    check_constraint = constraint is not None and not constraint.is_trivial
    check_node = node_constraint is not None and not node_constraint.is_trivial

    def candidates_for(node: NodeId) -> List[NodeId]:
        assigned_neighbors = [n for n in query.neighbors(node) if n in assignment]
        pool: Optional[Set[NodeId]] = None
        for neighbor in assigned_neighbors:
            adjacent = set(hosting.neighbors(assignment[neighbor]))
            pool = adjacent if pool is None else pool & adjacent
            if not pool:
                return []
        hosts = hosting.nodes() if pool is None else pool
        # Prefer the host the node already held: a repair should disturb as
        # little as possible, and the original host is often still fine for
        # nodes released only by the ripple expansion.
        prev = original.get(node)
        ordered = sorted(hosts, key=lambda h: (h != prev, str(h)))
        result = []
        for host in ordered:
            if host in used:
                continue
            if candidate_ok is not None and not candidate_ok(node, host):
                continue
            if check_node:
                stats.constraint_evaluations += 1
                if not node_constraint.evaluate(
                        node_context(query, node, hosting, host)):
                    continue
            if not _edges_ok(node, host):
                continue
            result.append(host)
        return result

    def _edges_ok(node: NodeId, host: NodeId) -> bool:
        for q_source, q_target in _incident_edges(query, node, assignment):
            r_source = host if q_source == node else assignment[q_source]
            r_target = host if q_target == node else assignment[q_target]
            oriented = _hosting_orientation(hosting, r_source, r_target)
            if oriented is None:
                return False
            if check_constraint:
                stats.constraint_evaluations += 1
                if not constraint.evaluate(edge_context(
                        query, (q_source, q_target), hosting, oriented)):
                    return False
        return True

    def extend(index: int) -> bool:
        if index == len(order):
            return True
        deadline.check()
        node = order[index]
        candidates = candidates_for(node)
        stats.nodes_expanded += 1
        stats.candidates_considered += len(candidates)
        for host in candidates:
            assignment[node] = host
            used.add(host)
            if extend(index + 1):
                return True
            del assignment[node]
            used.discard(host)
        stats.backtracks += 1
        return False

    return assignment if extend(0) else None


def _placement_order(query: QueryNetwork, released: Set[NodeId],
                     assigned: Set[NodeId]) -> List[NodeId]:
    """Most-constrained-first: maximise edges into the assigned region.

    The LNS expansion heuristic applied to the released set — each pick
    maximises the conjunction of connecting-edge constraints the placement
    must satisfy, pruning dead ends as early as possible.  Deterministic
    tie-breaks (degree, then id) keep repairs reproducible.
    """
    order: List[NodeId] = []
    placed = set(assigned)
    remaining = set(released)
    while remaining:
        node = max(remaining,
                   key=lambda n: (sum(1 for nb in query.neighbors(n)
                                      if nb in placed),
                                  query.degree(n), str(n)))
        order.append(node)
        placed.add(node)
        remaining.remove(node)
    return order


def _incident_edges(query: QueryNetwork, node: NodeId,
                    assignment: Dict[NodeId, NodeId]) -> List[Edge]:
    """Query edges between *node* and currently-assigned nodes, oriented as
    stored (one per direction for directed queries, cf. LNS)."""
    edges: List[Edge] = []
    for neighbor in query.neighbors(node):
        if neighbor not in assignment:
            continue
        if query.has_edge(neighbor, node):
            edges.append((neighbor, node))
        if query.has_edge(node, neighbor) and (
                query.directed or not query.has_edge(neighbor, node)):
            edges.append((node, neighbor))
    return edges


def _hosting_orientation(hosting: HostingNetwork, r_source: NodeId,
                         r_target: NodeId) -> Optional[Edge]:
    """The hosting orientation covering ``r_source -> r_target``, or ``None``."""
    if hosting.has_edge(r_source, r_target):
        return (r_source, r_target)
    if not hosting.directed and hosting.has_edge(r_target, r_source):
        return (r_source, r_target)
    return None
