"""Search results: embeddings found, how long it took, and what the answer means.

Paper §VII-E classifies the outcome of a NETEMBED query into three types:

* **complete** — the algorithm terminated before its timeout, so the returned
  set is the *complete* set of feasible embeddings (possibly empty, which is a
  proof of infeasibility);
* **partial** — the algorithm timed out (or hit a result cap) after finding at
  least one feasible embedding;
* **inconclusive** — the algorithm timed out without finding any embedding, so
  nothing can be said about feasibility.

:class:`EmbeddingResult` carries that classification together with the raw
mappings, wall-clock timings (total and time-to-first-match — the two curves
of Figs. 8–14), and :class:`SearchStats` counters used by the ablation
benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.mapping import Mapping


class ResultStatus(enum.Enum):
    """Outcome classification of an embedding search (paper §VII-E)."""

    COMPLETE = "complete"
    PARTIAL = "partial"
    INCONCLUSIVE = "inconclusive"

    def __str__(self) -> str:
        return self.value


@dataclass
class SearchStats:
    """Work counters accumulated during a single search.

    Attributes
    ----------
    nodes_expanded:
        Search-tree nodes visited (partial assignments extended).
    candidates_considered:
        Candidate hosting nodes examined across all expansions.
    constraint_evaluations:
        Evaluations of the edge constraint expression (filter construction
        plus on-the-fly checks).
    backtracks:
        Times the search retreated from a dead end.
    filter_entries:
        Number of (placed-node, placed-host, next-node) → candidate entries
        stored in the filter matrices (ECF/RWB memory footprint; zero for LNS).
    filter_build_seconds:
        Time spent building the filter matrices before the tree search began.
    """

    nodes_expanded: int = 0
    candidates_considered: int = 0
    constraint_evaluations: int = 0
    backtracks: int = 0
    filter_entries: int = 0
    filter_build_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Element-wise sum of two stats records (used by experiment aggregation)."""
        return SearchStats(
            nodes_expanded=self.nodes_expanded + other.nodes_expanded,
            candidates_considered=self.candidates_considered + other.candidates_considered,
            constraint_evaluations=self.constraint_evaluations + other.constraint_evaluations,
            backtracks=self.backtracks + other.backtracks,
            filter_entries=self.filter_entries + other.filter_entries,
            filter_build_seconds=self.filter_build_seconds + other.filter_build_seconds,
        )


@dataclass
class EmbeddingResult:
    """Everything a search returns.

    Attributes
    ----------
    status:
        The §VII-E classification (complete / partial / inconclusive).
    mappings:
        The feasible embeddings found, in discovery order.
    algorithm:
        Name of the algorithm that produced the result ("ECF", "RWB", "LNS",
        or a baseline name).
    elapsed_seconds:
        Total wall-clock search time.
    time_to_first_seconds:
        Time until the first feasible embedding was found (``None`` if none).
    timed_out:
        Whether the search stopped because of its deadline.
    truncated:
        Whether the search stopped because it reached ``max_results``.
    stats:
        Work counters for this search.
    """

    status: ResultStatus
    mappings: List[Mapping] = field(default_factory=list)
    algorithm: str = ""
    elapsed_seconds: float = 0.0
    time_to_first_seconds: Optional[float] = None
    timed_out: bool = False
    truncated: bool = False
    stats: SearchStats = field(default_factory=SearchStats)

    # -- convenience accessors ------------------------------------------- #

    @property
    def found(self) -> bool:
        """Whether at least one feasible embedding was found."""
        return bool(self.mappings)

    @property
    def count(self) -> int:
        """Number of embeddings found."""
        return len(self.mappings)

    @property
    def first(self) -> Optional[Mapping]:
        """The first embedding found, or ``None``."""
        return self.mappings[0] if self.mappings else None

    @property
    def proved_infeasible(self) -> bool:
        """Whether the search completed and found no embedding at all."""
        return self.status is ResultStatus.COMPLETE and not self.mappings

    def __len__(self) -> int:
        return len(self.mappings)

    def __iter__(self):
        return iter(self.mappings)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EmbeddingResult {self.algorithm}: {self.status.value}, "
                f"{self.count} mapping(s), {self.elapsed_seconds * 1000:.1f} ms>")


def classify(found_any: bool, exhausted: bool, timed_out: bool, truncated: bool
             ) -> ResultStatus:
    """Derive the §VII-E status from how the search terminated.

    Parameters
    ----------
    found_any:
        Whether at least one embedding was found.
    exhausted:
        Whether the search space was fully explored (so the result set is
        provably complete).
    timed_out:
        Whether the deadline expired.
    truncated:
        Whether the search stopped early because it hit ``max_results``.
    """
    if exhausted and not timed_out and not truncated:
        return ResultStatus.COMPLETE
    if found_any:
        return ResultStatus.PARTIAL
    if timed_out:
        return ResultStatus.INCONCLUSIVE
    # Not exhausted, nothing found, no timeout: a truncated search that found
    # nothing can only happen with max_results == 0; treat it as inconclusive.
    return ResultStatus.INCONCLUSIVE
