"""RWB — Random Walk Search with Backtracking (paper §V-B, Fig. 5).

RWB is the non-deterministic sibling of ECF for applications that only need
*one* feasible embedding (or a small random sample of them).  It uses exactly
the same filter matrices and candidate-set expressions as ECF, but:

* query nodes' candidates are tried in uniformly random order instead of a
  deterministic order, so repeated runs explore different regions of the
  solution space;
* the search stops as soon as the requested number of embeddings (one by
  default) has been found;
* dead ends are handled by backtracking to the previous query node, exactly
  as the paper's pseudocode keeps a per-node "discarded" list.

Because backtracking is systematic, an RWB run that exhausts the space
without finding an embedding is a proof of infeasibility, just like ECF.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import Capability, register_algorithm
from repro.api.request import SearchRequest
from repro.core.base import EmbeddingAlgorithm, SearchContext, placed_neighbor_plan
from repro.core.filters import FilterMatrices, build_filters
from repro.core.ordering import ORDERINGS
from repro.core.plan import PreparedSearch
from repro.graphs.network import NodeId
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timing import Deadline


@register_algorithm(
    "RWB",
    capabilities=[
        Capability.RANDOMIZED,
        Capability.FIRST_MATCH_ONLY,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
        Capability.SEEDABLE,
    ],
    summary="Random walk with backtracking (first embedding, randomised).",
    tags=["core"],
)
class RWB(EmbeddingAlgorithm):
    """Random Walk Search with Backtracking.

    Parameters
    ----------
    rng:
        Seed or generator controlling the random candidate order; pass an
        integer for reproducible runs.
    ordering:
        Node-visit ordering; RWB defaults to the connectivity-aware Lemma-1
        ordering, like ECF (the randomness is in the candidate choice, not in
        which node is expanded next).
    seed:
        Convenience alias for ``rng`` taking an integer only, so call sites
        that thread per-request seeds (the batch service, JSON specs) read
        naturally.  Mutually exclusive with ``rng``.
    """

    name = "RWB"
    supports_prepare = True

    def __init__(self, rng: RandomSource = None,
                 ordering: str = "connectivity",
                 seed: Optional[int] = None) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}")
        if seed is not None:
            if rng is not None:
                raise ValueError("pass either rng or seed, not both")
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise TypeError(f"seed must be an int, got {type(seed).__name__}")
            rng = seed
        self._rng_source = rng
        self._ordering_name = ordering
        self._ordering = ORDERINGS[ordering]

    def _effective_max_results(self, requested: Optional[int]) -> Optional[int]:
        # "By design it terminates as soon as it finds the first solution"
        # (paper footnote 7).  An explicit larger cap is honoured so callers
        # can sample several random embeddings.
        return 1 if requested is None else requested

    def plan_signature(self):
        # The rng source is deliberately absent: filters and visiting order
        # are seed-independent, so one cached plan serves requests carrying
        # different seeds (the per-run stream arrives via execute(rng=...)).
        return (self.name, self._ordering_name)

    # ------------------------------------------------------------------ #

    def _prepare(self, request: SearchRequest,
                 deadline: Optional[Deadline] = None) -> PreparedSearch:
        """Stage 1: same compile as ECF, minus the never-read ``F̄`` filter."""
        filters = build_filters(request.query, request.hosting,
                                request.constraint, request.node_constraint,
                                record_non_matches=False,
                                deadline=deadline)
        prepared = PreparedSearch(
            filters=filters,
            constraint_evaluations=filters.constraint_evaluations,
            filter_entries=filters.entry_count,
            filter_build_seconds=filters.build_seconds)

        if any(not filters.node_candidate_masks.get(node)
               for node in request.query.nodes()):
            prepared.infeasible = True
            return prepared

        prepared.order = self._ordering(request.query, filters)
        prepared.prior = placed_neighbor_plan(request.query, prepared.order)
        return prepared

    def _run_prepared(self, context: SearchContext,
                      prepared: PreparedSearch) -> bool:
        # A per-run rng (a plan execute carrying a request seed) wins over
        # the construction-time source; both normalise through as_rng, so a
        # fresh search and a planned execute with the same seed walk the
        # exact same random candidate order.
        rng = context.rng if context.rng is not None else as_rng(self._rng_source)
        assignment: Dict[NodeId, NodeId] = {}
        return self._walk(context, prepared.filters, prepared.order,
                          prepared.prior, 0, assignment, 0, rng)

    def _walk(self, context: SearchContext, filters: FilterMatrices,
              order: List[NodeId], prior: Sequence[Tuple[NodeId, ...]],
              depth: int, assignment: Dict[NodeId, NodeId],
              used_mask: int, rng) -> bool:
        """Randomised depth-first walk.  Returns ``False`` iff stopped early."""
        context.check_deadline()

        if depth == len(order):
            stop = context.record_mapping(dict(assignment))
            return not stop

        node = order[depth]
        placed_neighbors = [(neighbor, assignment[neighbor])
                            for neighbor in prior[depth]]
        mask = filters.candidates_mask_given(node, placed_neighbors, used_mask)
        # Decoding yields ascending bit order == the canonical str-sorted
        # order, so the seeded shuffle below sees the same input it did under
        # the set engine and reproduces across processes.
        candidates = filters.host_indexer.decode(mask)

        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += len(candidates)

        if not candidates:
            context.stats.backtracks += 1
            return True

        # The random walk: candidates are tried in random order; failed ones
        # are implicitly "discarded" by the loop, which is equivalent to the
        # paper's per-node discarded list.
        rng.shuffle(candidates)
        bit_of = filters.host_indexer.bit
        for host in candidates:
            assignment[node] = host
            keep_going = self._walk(context, filters, order, prior, depth + 1,
                                    assignment, used_mask | bit_of(host), rng)
            del assignment[node]
            if not keep_going:
                return False
        return True
