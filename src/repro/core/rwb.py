"""RWB — Random Walk Search with Backtracking (paper §V-B, Fig. 5).

RWB is the non-deterministic sibling of ECF for applications that only need
*one* feasible embedding (or a small random sample of them).  It uses exactly
the same filter matrices and candidate-set expressions as ECF, but:

* query nodes' candidates are tried in uniformly random order instead of a
  deterministic order, so repeated runs explore different regions of the
  solution space;
* the search stops as soon as the requested number of embeddings (one by
  default) has been found;
* dead ends are handled by backtracking to the previous query node, exactly
  as the paper's pseudocode keeps a per-node "discarded" list.

Because backtracking is systematic, an RWB run that exhausts the space
without finding an embedding is a proof of infeasibility, just like ECF.

**Random-stream discipline.**  The run's random source is consumed exactly
twice at the top level: once to shuffle the first query node's candidates
(the root trial order) and once to draw a 64-bit base seed.  Every root
candidate's subtree is then walked with its own :class:`random.Random`
derived from ``(base, root index)``.  Decorrelating the subtrees this way is
what makes RWB shardable (see :mod:`repro.core.parallel`): a worker handed an
arbitrary slice of the root order reproduces exactly the subtree streams a
serial run would, so parallel and serial mapping streams are byte-identical
for any shard count — and seeded runs reproduce across process boundaries.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import Capability, register_algorithm
from repro.api.request import SearchRequest
from repro.core import kernel
from repro.core.base import EmbeddingAlgorithm, SearchContext, placed_neighbor_plan
from repro.core.filters import FilterMatrices, build_filters
from repro.core.ordering import ORDERINGS
from repro.core.plan import PreparedSearch
from repro.graphs.network import NodeId
from repro.utils.rng import RandomSource, as_rng
from repro.utils.timing import Deadline

#: Weyl-sequence constant decorrelating the per-root subtree streams.
_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _subtree_seed(base: int, root_index: int) -> int:
    """The derived seed of root candidate *root_index*'s subtree walk."""
    return (base + _GOLDEN64 * (root_index + 1)) & _MASK64


@register_algorithm(
    "RWB",
    capabilities=[
        Capability.RANDOMIZED,
        Capability.FIRST_MATCH_ONLY,
        Capability.PROVES_INFEASIBILITY,
        Capability.SUPPORTS_DIRECTED,
        Capability.SEEDABLE,
    ],
    summary="Random walk with backtracking (first embedding, randomised).",
    tags=["core"],
)
class RWB(EmbeddingAlgorithm):
    """Random Walk Search with Backtracking.

    Parameters
    ----------
    rng:
        Seed or generator controlling the random candidate order; pass an
        integer for reproducible runs.
    ordering:
        Node-visit ordering; RWB defaults to the connectivity-aware Lemma-1
        ordering, like ECF (the randomness is in the candidate choice, not in
        which node is expanded next).
    seed:
        Convenience alias for ``rng`` taking an integer only, so call sites
        that thread per-request seeds (the batch service, JSON specs) read
        naturally.  Mutually exclusive with ``rng``.
    """

    name = "RWB"
    supports_prepare = True
    supports_sharding = True
    #: Constraints are baked into the filter bitmasks at prepare time; a
    #: shard needs nothing beyond the compiled artifacts and its seeds.
    _shard_ships_networks = False

    def __init__(self, rng: RandomSource = None,
                 ordering: str = "connectivity",
                 seed: Optional[int] = None) -> None:
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}")
        if seed is not None:
            if rng is not None:
                raise ValueError("pass either rng or seed, not both")
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise TypeError(f"seed must be an int, got {type(seed).__name__}")
            rng = seed
        self._rng_source = rng
        self._ordering_name = ordering
        self._ordering = ORDERINGS[ordering]

    def _effective_max_results(self, requested: Optional[int]) -> Optional[int]:
        # "By design it terminates as soon as it finds the first solution"
        # (paper footnote 7).  An explicit larger cap is honoured so callers
        # can sample several random embeddings.
        return 1 if requested is None else requested

    def plan_signature(self):
        # The rng source is deliberately absent: filters and visiting order
        # are seed-independent, so one cached plan serves requests carrying
        # different seeds (the per-run stream arrives via execute(rng=...)).
        return (self.name, self._ordering_name)

    # ------------------------------------------------------------------ #

    def _prepare(self, request: SearchRequest,
                 deadline: Optional[Deadline] = None) -> PreparedSearch:
        """Stage 1: same compile as ECF, minus the never-read ``F̄`` filter."""
        filters = build_filters(request.query, request.hosting,
                                request.constraint, request.node_constraint,
                                record_non_matches=False,
                                deadline=deadline)
        prepared = PreparedSearch(
            filters=filters,
            constraint_evaluations=filters.constraint_evaluations,
            filter_entries=filters.entry_count,
            filter_build_seconds=filters.build_seconds)

        if any(not filters.node_candidate_masks.get(node)
               for node in request.query.nodes()):
            prepared.infeasible = True
            return prepared

        prepared.order = self._ordering(request.query, filters)
        prepared.prior = placed_neighbor_plan(request.query, prepared.order)
        return prepared

    def _patch_prepared(self, request: SearchRequest,
                        prepared: PreparedSearch, delta) -> Optional[PreparedSearch]:
        return self._patch_filters_prepared(request, prepared, delta,
                                            self._ordering)

    def _root_plan(self, context: SearchContext, prepared: PreparedSearch
                   ) -> Tuple[List[NodeId], int]:
        """The shuffled root trial order plus the subtree-stream base seed.

        Consumes the run's random source exactly twice (one shuffle, one
        64-bit draw) — the single point where serial execution and the
        sharded engine must agree on how the stream is spent.  A per-run rng
        (a plan execute carrying a request seed) wins over the
        construction-time source; both normalise through as_rng, so a fresh
        search and a planned execute with the same seed walk the exact same
        random candidate order.
        """
        rng = context.rng if context.rng is not None else as_rng(self._rng_source)
        node = prepared.order[0]
        mask = prepared.filters.candidates_mask_unplaced(node)
        # Decoding yields ascending bit order == the canonical str-sorted
        # order, so the seeded shuffle below sees the same input it did under
        # the set engine and reproduces across processes.
        candidates = prepared.filters.host_indexer.decode(mask)
        rng.shuffle(candidates)
        return candidates, rng.getrandbits(64)

    def _run_prepared(self, context: SearchContext,
                      prepared: PreparedSearch) -> bool:
        from repro.core.parallel import run_specs_serial

        return run_specs_serial(self, context, prepared,
                                self._shard_specs(context, prepared, 1))

    # -- sharding: contiguous slices of the shuffled root order ----------- #

    def _shard_specs(self, context: SearchContext, prepared: PreparedSearch,
                     shards: int) -> List[Tuple[int, List[NodeId], int]]:
        """Split the shuffled root order; the root expansion is counted here
        (once, in the parent), per the base-class statistics convention."""
        from repro.core.parallel import split_contiguous

        context.check_deadline()
        roots, base = self._root_plan(context, prepared)
        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += len(roots)
        if not roots:
            context.stats.backtracks += 1
            return []
        specs: List[Tuple[int, List[NodeId], int]] = []
        start = 0
        for block in split_contiguous(roots, shards):
            specs.append((start, list(block), base))
            start += len(block)
        return specs

    def _run_shard(self, context: SearchContext, prepared: PreparedSearch,
                   spec: Tuple[int, List[NodeId], int]) -> bool:
        """Walk one slice of the root order, one derived rng per subtree."""
        start, hosts, base = spec
        filters = prepared.filters
        order = prepared.order
        node = order[0]
        plan = kernel.plan_for(filters, order, prepared.prior)
        if plan is not None:
            index_of = filters.host_indexer.index_of
            for offset, host in enumerate(hosts):
                rng = random.Random(_subtree_seed(base, start + offset))
                keep_going = self._walk_kernel(context, plan, node, host,
                                               index_of(host), rng)
                if not keep_going:
                    return False
            return True
        bit_of = filters.host_indexer.bit
        assignment: Dict[NodeId, NodeId] = {}
        for offset, host in enumerate(hosts):
            rng = random.Random(_subtree_seed(base, start + offset))
            assignment[node] = host
            keep_going = self._walk(context, filters, order, prepared.prior,
                                    1, assignment, bit_of(host), rng)
            del assignment[node]
            if not keep_going:
                return False
        return True

    def _walk_kernel(self, context: SearchContext, plan, root_node: NodeId,
                     root_host: NodeId, root_index: int, rng) -> bool:
        """Iterative twin of :meth:`_walk` over the kernel's candidate
        cursor.  Returns ``False`` iff stopped early (result cap).

        The control flow — deadline poll on every node entry (leaves
        included), expansion/backtrack counting, one ``rng.shuffle`` per
        non-leaf — replays the recursion exactly; shuffling the *index*
        list yields the same permutation the legacy walk applies to the
        decoded node list, because ``random.shuffle`` depends only on the
        sequence length and the rng state, and ascending index order *is*
        the decode order.
        """
        order = plan.order
        host_nodes = plan.host_nodes
        n = plan.n
        stats = context.stats
        cursor = kernel.RwbCursor(plan)
        cursor.place(0, root_index)
        candidate_lists: List[Optional[List[int]]] = [None] * n
        next_pos = [0] * n
        placed = [-1] * n
        depth = 1
        entering = True
        while True:
            if entering:
                context.check_deadline()
                if depth == n:
                    mapping: Dict[NodeId, NodeId] = {root_node: root_host}
                    for d in range(1, n):
                        mapping[order[d]] = host_nodes[placed[d]]
                    if context.record_mapping(mapping):
                        return False
                    depth -= 1
                    entering = False
                    continue
                candidates = cursor.candidates(depth)
                stats.nodes_expanded += 1
                stats.candidates_considered += len(candidates)
                if not candidates:
                    stats.backtracks += 1
                    depth -= 1
                    entering = False
                    continue
                rng.shuffle(candidates)
                candidate_lists[depth] = candidates
                next_pos[depth] = 0
                entering = False
                continue
            if depth < 1:
                return True      # the root subtree is exhausted
            if placed[depth] >= 0:
                cursor.unplace(depth, placed[depth])
                placed[depth] = -1
            position = next_pos[depth]
            candidates = candidate_lists[depth]
            if candidates is None or position >= len(candidates):
                depth -= 1
                continue
            next_pos[depth] = position + 1
            host_index = candidates[position]
            cursor.place(depth, host_index)
            placed[depth] = host_index
            depth += 1
            entering = True

    def _walk(self, context: SearchContext, filters: FilterMatrices,
              order: List[NodeId], prior: Sequence[Tuple[NodeId, ...]],
              depth: int, assignment: Dict[NodeId, NodeId],
              used_mask: int, rng) -> bool:
        """Randomised depth-first walk.  Returns ``False`` iff stopped early."""
        context.check_deadline()

        if depth == len(order):
            stop = context.record_mapping(dict(assignment))
            return not stop

        node = order[depth]
        placed_neighbors = [(neighbor, assignment[neighbor])
                            for neighbor in prior[depth]]
        mask = filters.candidates_mask_given(node, placed_neighbors, used_mask)
        candidates = filters.host_indexer.decode(mask)

        context.stats.nodes_expanded += 1
        context.stats.candidates_considered += len(candidates)

        if not candidates:
            context.stats.backtracks += 1
            return True

        # The random walk: candidates are tried in random order; failed ones
        # are implicitly "discarded" by the loop, which is equivalent to the
        # paper's per-node discarded list.
        rng.shuffle(candidates)
        bit_of = filters.host_indexer.bit
        for host in candidates:
            assignment[node] = host
            keep_going = self._walk(context, filters, order, prior, depth + 1,
                                    assignment, used_mask | bit_of(host), rng)
            del assignment[node]
            if not keep_going:
                return False
        return True
