"""Fixed-width word backing for the candidate-set bitmasks.

The in-process mask representation stays an unbounded Python int (PR 2's
bitset algebra — the accessor API of :class:`~repro.core.filters.FilterMatrices`
is unchanged).  This module provides the *other* backing of the same masks:
little-endian ``numpy.uint64`` word arrays, which are

* what the compiled search kernel (:mod:`repro.core.kernel`) iterates over —
  fixed-width words admit branch-free popcount/ctz and ``nogil`` compilation,
  which arbitrary-precision ints never can;
* what crosses process boundaries — shard groups and compiled plans pickle
  contiguous word arrays instead of re-serialising thousands of bignums.

Bit *i* of a mask lives in word ``i // 64``, bit ``i % 64`` — i.e. the word
array is exactly ``mask.to_bytes(..., "little")`` viewed as ``uint64``.  All
conversions are loss-free and round-trip exactly, including masks of zero
and masks whose top bit sits on a word boundary.

Everything here is gated on numpy being importable (``HAVE_NUMPY``); the
pure-dict pickle path and the Python kernel keep working without it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.constraints.vectorizer import HAVE_NUMPY, np

from repro.core.indexing import WORD_BITS, word_count

__all__ = [
    "WORD_BITS",
    "word_count",
    "mask_to_words",
    "words_to_mask",
    "pack_masks",
    "unpack_masks",
    "WordTable",
]

_WORD_BYTES = WORD_BITS // 8


def _require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - numpy is a baked-in dependency
        raise RuntimeError(
            "word-array mask backing requires numpy; "
            "install numpy or stay on the pure-int representation")


def mask_to_words(mask: int, num_words: int):
    """Encode a non-negative int *mask* as ``num_words`` little-endian uint64.

    Raises ``OverflowError`` if the mask does not fit — a mask wider than
    its indexer is always a bug upstream, never something to truncate.
    """
    _require_numpy()
    if mask < 0:
        raise ValueError("masks are non-negative candidate sets")
    raw = mask.to_bytes(num_words * _WORD_BYTES, "little")
    return np.frombuffer(raw, dtype=np.uint64).copy()


def words_to_mask(row) -> int:
    """Decode one word row (any uint64 sequence) back to the Python int."""
    _require_numpy()
    arr = np.ascontiguousarray(row, dtype=np.uint64)
    return int.from_bytes(arr.tobytes(), "little")


def pack_masks(masks: Sequence[int], num_words: int):
    """Stack many masks into one C-contiguous ``(len(masks), num_words)``
    uint64 array (zero rows when *masks* is empty — no row is ever
    referenced in that case)."""
    _require_numpy()
    if not masks:
        return np.zeros((0, num_words), dtype=np.uint64)
    raw = b"".join(mask.to_bytes(num_words * _WORD_BYTES, "little")
                   for mask in masks)
    out = np.frombuffer(raw, dtype=np.uint64).copy()
    return out.reshape(len(masks), num_words)


def unpack_masks(words) -> List[int]:
    """Inverse of :func:`pack_masks` — one int per row."""
    _require_numpy()
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    width = arr.shape[1] * _WORD_BYTES if arr.ndim == 2 else _WORD_BYTES
    raw = arr.tobytes()
    return [int.from_bytes(raw[i * width:(i + 1) * width], "little")
            for i in range(arr.shape[0])]


class WordTable:
    """A keyed family of masks backed by one contiguous word array.

    This is the word-array twin of a ``{key: int_mask}`` dict: ``keys[r]``
    owns row ``r`` of ``words``.  Zero-valued masks keep their key — an
    empty candidate set is real information (an infeasible node), not an
    absent entry — so ``to_masks()`` round-trips the source dict exactly,
    including insertion order.
    """

    __slots__ = ("keys", "rows", "words", "num_bits")

    def __init__(self, keys: Tuple, words, num_bits: int) -> None:
        self.keys = tuple(keys)
        self.words = words
        self.num_bits = int(num_bits)
        self.rows: Dict[object, int] = {k: r for r, k in enumerate(self.keys)}

    @classmethod
    def from_masks(cls, masks: Dict[object, int], num_bits: int) -> "WordTable":
        nw = word_count(num_bits)
        return cls(tuple(masks.keys()),
                   pack_masks(list(masks.values()), nw), num_bits)

    @property
    def num_words(self) -> int:
        return int(self.words.shape[1])

    def __len__(self) -> int:
        return len(self.keys)

    def row_of(self, key) -> int:
        """Row index of *key*, or -1 when absent (kernel sentinel for an
        empty/deleted cell)."""
        return self.rows.get(key, -1)

    def mask_of(self, key) -> int:
        row = self.rows.get(key)
        return 0 if row is None else words_to_mask(self.words[row])

    def to_masks(self) -> Dict[object, int]:
        """Rebuild the ``{key: int_mask}`` dict, order and zeros preserved."""
        ints = unpack_masks(self.words)
        return {key: ints[r] for r, key in enumerate(self.keys)}

    def updated(self, masks: Dict[object, int], touched) -> "WordTable":
        """A copy with only *touched* rows rewritten from *masks*.

        This is the incremental-patch path: when a churn patch flips a few
        cells, the untouched rows are block-copied and only the touched rows
        are re-encoded.  Falls back to a full rebuild (returns a fresh
        table) when the keys changed *in any way, including order* — row
        ids are assigned from dict enumeration order downstream
        (``KernelPlan``), and a patch that deletes a key and re-inserts it
        moves it to the end of the dict without changing the key set.
        """
        if tuple(masks.keys()) != self.keys:
            return WordTable.from_masks(masks, self.num_bits)
        words = self.words.copy()
        nw = self.num_words
        for key in touched:
            row = self.rows.get(key)
            if row is not None:
                words[row] = mask_to_words(masks[key], nw)
        table = WordTable.__new__(WordTable)
        table.keys = self.keys
        table.words = words
        table.num_bits = self.num_bits
        table.rows = dict(self.rows)
        return table

    # ------------------------------------------------------------------ #
    # Pickling: ship a private copy, never a view of the parent buffer
    # ------------------------------------------------------------------ #

    def __getstate__(self):
        # np.ascontiguousarray + copy guarantees the pickled payload owns
        # its memory even if self.words is a view into a larger buffer; the
        # rows dict is derivable and stays out of the payload.
        return (self.keys, np.ascontiguousarray(self.words).copy(),
                self.num_bits)

    def __setstate__(self, state):
        keys, words, num_bits = state
        self.keys = tuple(keys)
        self.words = words
        self.num_bits = int(num_bits)
        self.rows = {k: r for r, k in enumerate(self.keys)}
