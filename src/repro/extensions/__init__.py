"""Extensions sketched in the paper's §VIII (current and future work).

* :mod:`~repro.extensions.optimizer` — pick the best feasible embedding under
  a cost metric (the optimisation stage NETEMBED deliberately leaves to the
  application);
* :mod:`~repro.extensions.pathmapping` — map query links onto bounded-length
  hosting paths (many-to-one mapping);
* :mod:`~repro.extensions.scheduler` — integrate embedding with time-slotted
  scheduling (the snBench scenario);
* :mod:`~repro.extensions.distributed` — hierarchical, per-domain embedding
  with a global fallback (the decentralised deployment sketch).
"""

from repro.extensions.distributed import (
    DomainOutcome,
    HierarchicalEmbedder,
    HierarchicalResult,
    partition_balanced,
    partition_by_attribute,
)
from repro.extensions.optimizer import (
    RankedMapping,
    attribute_sum_cost,
    best_mapping,
    load_balance_cost,
    rank_mappings,
    stress_cost,
    total_delay_cost,
)
from repro.extensions.pathmapping import (
    PathEmbedder,
    PathEmbeddingResult,
    PathMapping,
    build_closure_network,
)
from repro.extensions.scheduler import (
    EmbeddingCalendar,
    EmbeddingScheduler,
    ScheduleResult,
    ScheduledEmbedding,
)

__all__ = [
    "RankedMapping",
    "rank_mappings",
    "best_mapping",
    "total_delay_cost",
    "load_balance_cost",
    "attribute_sum_cost",
    "stress_cost",
    "PathEmbedder",
    "PathEmbeddingResult",
    "PathMapping",
    "build_closure_network",
    "EmbeddingScheduler",
    "EmbeddingCalendar",
    "ScheduleResult",
    "ScheduledEmbedding",
    "HierarchicalEmbedder",
    "HierarchicalResult",
    "DomainOutcome",
    "partition_by_attribute",
    "partition_balanced",
]
