"""Hierarchical / partitioned embedding (§VIII "decentralized implementation").

"For truly large-scale networks, a complete view of the network may not be
available to a single domain ... it is desirable in such settings for
services such as NETEMBED to be implemented in a distributed fashion ...
We are currently looking into a hierarchical approach."

This module simulates that hierarchical approach in-process:

* the hosting network is split into *domains*, either by an existing node
  attribute (e.g. the ``region`` attribute of the PlanetLab-like trace, or
  the ``domain`` attribute of transit-stub networks) or by a balanced
  connected partitioning;
* each domain runs its own embedding search over its local sub-network only
  (what a per-domain NETEMBED server would see);
* the coordinator tries domains in a configurable order and returns the first
  domain that can host the whole query, falling back to a global search when
  allowed.

This models the common "place the experiment entirely inside one
administrative domain" policy; queries that genuinely must span domains
require the global fallback (and the coordinator reports which happened).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import networkx as nx

from repro.api.request import SearchRequest
from repro.constraints import ConstraintExpression
from repro.core.base import EmbeddingAlgorithm
from repro.core.ecf import ECF
from repro.core.result import EmbeddingResult
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork


def partition_by_attribute(hosting: HostingNetwork, attribute: str = "region"
                           ) -> Dict[str, List[NodeId]]:
    """Group hosting nodes by a categorical node attribute."""
    domains: Dict[str, List[NodeId]] = {}
    for node in hosting.nodes():
        value = hosting.get_node_attr(node, attribute)
        key = str(value) if value is not None else "unassigned"
        domains.setdefault(key, []).append(node)
    return domains


def partition_balanced(hosting: HostingNetwork, num_domains: int
                       ) -> Dict[str, List[NodeId]]:
    """Split the hosting network into *num_domains* roughly equal connected chunks.

    A BFS order from an arbitrary node is sliced into contiguous chunks; each
    chunk is connected *within the BFS tree*, which is good enough for the
    simulation (per-domain searches only need the induced subgraph).
    """
    if num_domains < 1:
        raise ValueError(f"num_domains must be >= 1, got {num_domains}")
    nodes = hosting.nodes()
    if not nodes:
        return {}
    order: List[NodeId] = []
    seen = set()
    for start in nodes:
        if start in seen:
            continue
        for node in nx.bfs_tree(hosting.graph.to_undirected(as_view=True), start):
            if node not in seen:
                order.append(node)
                seen.add(node)
    chunk = max(1, (len(order) + num_domains - 1) // num_domains)
    return {f"domain{i}": order[i * chunk:(i + 1) * chunk]
            for i in range((len(order) + chunk - 1) // chunk)}


@dataclass
class DomainOutcome:
    """Result of trying one domain."""

    domain: str
    result: EmbeddingResult

    @property
    def found(self) -> bool:
        """Whether this domain could host the query."""
        return self.result.found


@dataclass
class HierarchicalResult:
    """Outcome of a hierarchical embedding attempt."""

    winning_domain: Optional[str]
    result: Optional[EmbeddingResult]
    domain_outcomes: List[DomainOutcome] = field(default_factory=list)
    used_global_fallback: bool = False

    @property
    def found(self) -> bool:
        """Whether any domain (or the global fallback) hosted the query."""
        return self.result is not None and self.result.found


class HierarchicalEmbedder:
    """Coordinator for per-domain embedding with optional global fallback.

    Parameters
    ----------
    hosting:
        The full hosting network (the coordinator's global view).
    domains:
        Mapping of domain name to its hosting nodes; build it with
        :func:`partition_by_attribute` or :func:`partition_balanced`.
    algorithm:
        Algorithm used for every per-domain (and fallback) search.
    """

    def __init__(self, hosting: HostingNetwork, domains: Dict[str, Sequence[NodeId]],
                 algorithm: Optional[EmbeddingAlgorithm] = None) -> None:
        if not domains:
            raise ValueError("at least one domain is required")
        self.hosting = hosting
        self._algorithm = algorithm or ECF()
        self._domains = {name: list(nodes) for name, nodes in domains.items()}
        self._subnetworks: Dict[str, HostingNetwork] = {}
        for name, nodes in self._domains.items():
            sub = hosting.subnetwork(nodes, name=f"{hosting.name}:{name}")
            # subnetwork() preserves the class of `hosting`, i.e. HostingNetwork.
            self._subnetworks[name] = sub  # type: ignore[assignment]

    @property
    def domain_names(self) -> List[str]:
        """All domain names, largest domain first (the default try order)."""
        return sorted(self._domains, key=lambda d: (-len(self._domains[d]), d))

    def domain_network(self, name: str) -> HostingNetwork:
        """The induced hosting sub-network of a domain."""
        return self._subnetworks[name]

    def embed(self, query: QueryNetwork,
              constraint: Optional[Union[str, ConstraintExpression]] = None,
              node_constraint: Optional[Union[str, ConstraintExpression]] = None,
              timeout: Optional[float] = None, max_results: Optional[int] = 1,
              domain_order: Optional[Sequence[str]] = None,
              allow_global_fallback: bool = True) -> HierarchicalResult:
        """Try to embed *query* inside a single domain; optionally fall back globally."""
        outcomes: List[DomainOutcome] = []
        order = list(domain_order) if domain_order is not None else self.domain_names
        for name in order:
            if name not in self._subnetworks:
                raise KeyError(f"unknown domain {name!r}")
            sub = self._subnetworks[name]
            if sub.num_nodes < query.num_nodes:
                continue
            result = self._algorithm.request(SearchRequest.build(
                query, sub, constraint=constraint,
                node_constraint=node_constraint, timeout=timeout,
                max_results=max_results))
            outcomes.append(DomainOutcome(domain=name, result=result))
            if result.found:
                return HierarchicalResult(winning_domain=name, result=result,
                                          domain_outcomes=outcomes)
        if allow_global_fallback:
            result = self._algorithm.request(SearchRequest.build(
                query, self.hosting, constraint=constraint,
                node_constraint=node_constraint, timeout=timeout,
                max_results=max_results))
            return HierarchicalResult(winning_domain=None if not result.found else "*global*",
                                      result=result, domain_outcomes=outcomes,
                                      used_global_fallback=True)
        return HierarchicalResult(winning_domain=None, result=None,
                                  domain_outcomes=outcomes)
