"""Hierarchical / partitioned embedding (§VIII "decentralized implementation").

.. deprecated::
    This module predates :mod:`repro.cluster`, which is the real scale-out
    tier: sharded replicas, a contracted quotient graph for coarse placement,
    journal-delta replication, and cross-partition split-and-stitch search.
    :class:`HierarchicalEmbedder` is kept as a thin compatibility shim — its
    per-domain searches now run through a :class:`repro.cluster.ClusterCoordinator`
    (so they share the plan cache and partition summaries) and constructing
    one emits a :class:`DeprecationWarning`.  New code should use
    :class:`repro.cluster.ClusterCoordinator` or
    :class:`repro.cluster.ClusterService` directly.

The legacy semantics are preserved exactly: domains are tried largest-first
(or in the caller's ``domain_order``), the first domain that can host the
whole query wins, and queries that genuinely must span domains use the
global-view fallback (reported as ``winning_domain == "*global*"``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Union

from repro.api.request import SearchRequest
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.partition import UNASSIGNED, PartitionMap
from repro.constraints import ConstraintExpression
from repro.core.base import EmbeddingAlgorithm
from repro.core.ecf import ECF
from repro.core.result import EmbeddingResult
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork

__all__ = [
    "UNASSIGNED",
    "DomainOutcome",
    "HierarchicalResult",
    "HierarchicalEmbedder",
    "partition_by_attribute",
    "partition_balanced",
]


def partition_by_attribute(hosting: HostingNetwork, attribute: str = "region"
                           ) -> Dict[Hashable, List[NodeId]]:
    """Group hosting nodes by a categorical node attribute.

    Nodes *lacking* the attribute are grouped under the
    :data:`repro.cluster.UNASSIGNED` sentinel, never under the string
    ``"unassigned"`` — a node whose attribute value really is the string
    ``"unassigned"`` (or ``None``) keeps its own group.  (The old behaviour
    conflated the two, silently merging real values with missing ones.)
    """
    domains: Dict[Hashable, List[NodeId]] = {}
    for node in hosting.nodes():
        attrs = hosting.node_attrs(node)
        key: Hashable = str(attrs[attribute]) if attribute in attrs else UNASSIGNED
        domains.setdefault(key, []).append(node)
    return domains


def partition_balanced(hosting: HostingNetwork, num_domains: int
                       ) -> Dict[str, List[NodeId]]:
    """Split the hosting network into *num_domains* roughly equal connected chunks.

    Delegates to :meth:`repro.cluster.PartitionMap.balanced` (BFS-contiguous
    chunks); kept for the legacy ``domain<i>`` naming.
    """
    pmap = PartitionMap.balanced(hosting, num_domains, prefix="domain")
    return {name: list(nodes) for name, nodes in pmap.partitions.items()}


@dataclass
class DomainOutcome:
    """Result of trying one domain."""

    domain: Hashable
    result: EmbeddingResult

    @property
    def found(self) -> bool:
        """Whether this domain could host the query."""
        return self.result.found


@dataclass
class HierarchicalResult:
    """Outcome of a hierarchical embedding attempt."""

    winning_domain: Optional[Hashable]
    result: Optional[EmbeddingResult]
    domain_outcomes: List[DomainOutcome] = field(default_factory=list)
    used_global_fallback: bool = False

    @property
    def found(self) -> bool:
        """Whether any domain (or the global fallback) hosted the query."""
        return self.result is not None and self.result.found


class HierarchicalEmbedder:
    """Deprecated first-fit coordinator, now a shim over :mod:`repro.cluster`.

    Parameters
    ----------
    hosting:
        The full hosting network (the coordinator's global view).
    domains:
        Mapping of domain name to its hosting nodes; build it with
        :func:`partition_by_attribute` or :func:`partition_balanced`.
    algorithm:
        Algorithm used for every per-domain (and fallback) search.
    """

    def __init__(self, hosting: HostingNetwork,
                 domains: Dict[Hashable, Sequence[NodeId]],
                 algorithm: Optional[EmbeddingAlgorithm] = None) -> None:
        warnings.warn(
            "HierarchicalEmbedder is deprecated; use "
            "repro.cluster.ClusterCoordinator (or ClusterService) for "
            "partitioned embedding", DeprecationWarning, stacklevel=2)
        if not domains:
            raise ValueError("at least one domain is required")
        self.hosting = hosting
        self._algorithm = algorithm or ECF()
        self._domains = {name: list(nodes) for name, nodes in domains.items()}
        # Partition names must be strings for the cluster tier; remember the
        # original (possibly sentinel) keys so results report them verbatim.
        self._key_of: Dict[str, Hashable] = {}
        parts: Dict[str, tuple] = {}
        for name, nodes in self._domains.items():
            pname = str(name)
            self._key_of[pname] = name
            parts[pname] = tuple(nodes)
        self._coordinator = ClusterCoordinator(
            hosting, partition_map=PartitionMap(parts),
            algorithm=self._algorithm)

    @property
    def domain_names(self) -> List[Hashable]:
        """All domain names, largest domain first (the default try order)."""
        return sorted(self._domains,
                      key=lambda d: (-len(self._domains[d]), str(d)))

    def domain_network(self, name: Hashable) -> HostingNetwork:
        """The induced hosting sub-network of a domain."""
        return self._coordinator.workers[str(name)].replica.network

    def embed(self, query: QueryNetwork,
              constraint: Optional[Union[str, ConstraintExpression]] = None,
              node_constraint: Optional[Union[str, ConstraintExpression]] = None,
              timeout: Optional[float] = None, max_results: Optional[int] = 1,
              domain_order: Optional[Sequence[Hashable]] = None,
              allow_global_fallback: bool = True) -> HierarchicalResult:
        """Try to embed *query* inside a single domain; optionally fall back globally."""
        outcomes: List[DomainOutcome] = []
        order = list(domain_order) if domain_order is not None else self.domain_names
        for name in order:
            pname = str(name)
            if pname not in self._coordinator.workers or name not in self._domains:
                raise KeyError(f"unknown domain {name!r}")
            if len(self._domains[name]) < query.num_nodes:
                continue
            cluster_result = self._coordinator.embed(
                query, constraint=constraint, node_constraint=node_constraint,
                timeout=timeout, max_results=max_results,
                partition_order=[pname], cross_partition=False)
            result = cluster_result.to_embedding_result(
                algorithm=self._algorithm.name)
            outcomes.append(DomainOutcome(domain=name, result=result))
            if result.found:
                return HierarchicalResult(winning_domain=name, result=result,
                                          domain_outcomes=outcomes)
        if allow_global_fallback:
            result = self._algorithm.request(SearchRequest.build(
                query, self.hosting, constraint=constraint,
                node_constraint=node_constraint, timeout=timeout,
                max_results=max_results))
            return HierarchicalResult(winning_domain=None if not result.found else "*global*",
                                      result=result, domain_outcomes=outcomes,
                                      used_global_fallback=True)
        return HierarchicalResult(winning_domain=None, result=None,
                                  domain_outcomes=outcomes)
