"""Optimisation over the feasible set (§VIII "current and future work").

NETEMBED deliberately separates feasibility from optimality: the service
returns feasible embeddings and "the embedding of choice would be the one
that minimizes a specific cost metric" (§II footnote 1).  This module
provides that second stage — cost functions over mappings and a selector that
ranks the feasible set an algorithm returned.

Built-in cost functions:

* :func:`total_delay_cost` — sum of the hosting delays the query edges land on
  (latency-sensitive applications want this small);
* :func:`load_balance_cost` — maximum hosting-node load used by the mapping
  (spread work across lightly loaded nodes);
* :func:`attribute_sum_cost` — generic "sum an edge attribute over mapped
  edges" builder;
* :func:`stress_cost` — number of embeddings already placed on the chosen
  hosts (Zhu–Ammar-style interference minimisation), given an occupancy map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult
from repro.graphs.network import Network, NodeId
from repro.graphs.query import QueryNetwork

#: A cost function maps (query, hosting, mapping) to a number to minimise.
CostFunction = Callable[[QueryNetwork, Network, Mapping], float]


def _mapped_edge_attr(query: QueryNetwork, hosting: Network, mapping: Mapping,
                      attr: str, default: float) -> List[float]:
    values = []
    for q_source, q_target in query.edges():
        r_source, r_target = mapping[q_source], mapping[q_target]
        if hosting.has_edge(r_source, r_target):
            value = hosting.get_edge_attr(r_source, r_target, attr, default)
        elif not hosting.directed and hosting.has_edge(r_target, r_source):
            value = hosting.get_edge_attr(r_target, r_source, attr, default)
        else:
            value = default
        values.append(float(value))
    return values


def total_delay_cost(query: QueryNetwork, hosting: Network, mapping: Mapping,
                     attr: str = "avgDelay") -> float:
    """Sum of the hosting link delays used by the mapping."""
    return sum(_mapped_edge_attr(query, hosting, mapping, attr, 0.0))


def attribute_sum_cost(attr: str, default: float = 0.0) -> CostFunction:
    """Build a cost function that sums hosting edge attribute *attr* over the mapping."""
    def cost(query: QueryNetwork, hosting: Network, mapping: Mapping) -> float:
        return sum(_mapped_edge_attr(query, hosting, mapping, attr, default))
    cost.__name__ = f"sum_{attr}_cost"
    return cost


def load_balance_cost(query: QueryNetwork, hosting: Network, mapping: Mapping,
                      attr: str = "cpuLoad") -> float:
    """Maximum load among the hosting nodes used (smaller = better balanced)."""
    loads = [float(hosting.get_node_attr(host, attr, 0.0))
             for host in mapping.hosting_nodes()]
    return max(loads) if loads else 0.0


def stress_cost(occupancy: Dict[NodeId, int]) -> CostFunction:
    """Cost = total pre-existing occupancy of the chosen hosting nodes.

    *occupancy* maps hosting nodes to the number of embeddings already placed
    on them (e.g. from the reservation manager); minimising it spreads new
    virtual networks away from crowded nodes, the Zhu–Ammar objective.
    """
    def cost(query: QueryNetwork, hosting: Network, mapping: Mapping) -> float:
        return float(sum(occupancy.get(host, 0) for host in mapping.hosting_nodes()))
    cost.__name__ = "stress_cost"
    return cost


@dataclass(frozen=True)
class RankedMapping:
    """A mapping together with its cost under the chosen objective."""

    mapping: Mapping
    cost: float


def rank_mappings(result_or_mappings, query: QueryNetwork, hosting: Network,
                  cost: CostFunction = total_delay_cost) -> List[RankedMapping]:
    """Rank feasible mappings by ascending cost.

    Accepts either an :class:`~repro.core.result.EmbeddingResult` or a plain
    sequence of mappings, so it composes directly with any algorithm's output.
    """
    if isinstance(result_or_mappings, EmbeddingResult):
        mappings: Sequence[Mapping] = result_or_mappings.mappings
    else:
        mappings = list(result_or_mappings)
    ranked = [RankedMapping(mapping=m, cost=float(cost(query, hosting, m)))
              for m in mappings]
    return sorted(ranked, key=lambda r: (r.cost, str(sorted(map(str, r.mapping.hosting_nodes())))))


def best_mapping(result_or_mappings, query: QueryNetwork, hosting: Network,
                 cost: CostFunction = total_delay_cost) -> Optional[RankedMapping]:
    """The minimum-cost feasible mapping, or ``None`` when the set is empty."""
    ranked = rank_mappings(result_or_mappings, query, hosting, cost)
    return ranked[0] if ranked else None
