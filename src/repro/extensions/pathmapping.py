"""Link-to-path (many-to-one) mapping — the first §VIII follow-up.

The base NETEMBED problem maps every query edge onto a *single* hosting edge.
§VIII proposes relaxing this "by mapping a link in the query network to a
path in the real network", which matters for sparse physical infrastructures
(BRITE-like router graphs) where two chosen hosts are rarely directly
adjacent.

:class:`PathEmbedder` implements that relaxation on top of any base
algorithm:

1. it builds a *closure network*: a dense auxiliary hosting network whose
   nodes are the original hosting nodes and whose edge ``(u, v)`` exists
   whenever the hosting network has a path from ``u`` to ``v`` of at most
   ``max_hops`` hops, annotated with the path's aggregate delay
   (sums of ``avgDelay`` / ``minDelay`` / ``maxDelay``) and a ``hopCount``;
2. it runs the base algorithm on the closure network with the caller's
   constraint expression (which can now reference ``rEdge.hopCount``);
3. it expands each returned node mapping with the concrete hosting paths that
   realise every query edge, returning :class:`PathMapping` objects.

Aggregate delays along a multi-hop path are additive, so constraints written
against ``avgDelay`` keep their meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.api.request import SearchRequest
from repro.constraints import ConstraintExpression
from repro.core.base import EmbeddingAlgorithm
from repro.core.ecf import ECF
from repro.core.mapping import Mapping
from repro.core.result import EmbeddingResult
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import Edge, NodeId
from repro.graphs.query import QueryNetwork


@dataclass
class PathMapping:
    """A node mapping plus the hosting path realising each query edge."""

    node_mapping: Mapping
    edge_paths: Dict[Edge, Tuple[NodeId, ...]] = field(default_factory=dict)

    def path_for(self, query_edge: Edge) -> Tuple[NodeId, ...]:
        """The hosting-node path realising *query_edge* (endpoints included)."""
        return self.edge_paths[query_edge]

    def total_hops(self) -> int:
        """Total number of hosting hops used across all query edges."""
        return sum(max(0, len(path) - 1) for path in self.edge_paths.values())


@dataclass
class PathEmbeddingResult:
    """Result of a link-to-path embedding: wraps the closure-network search."""

    base_result: EmbeddingResult
    path_mappings: List[PathMapping] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """Whether at least one path embedding was found."""
        return bool(self.path_mappings)


def build_closure_network(hosting: HostingNetwork, max_hops: int = 3,
                          delay_attr: str = "avgDelay",
                          weight_attrs: Tuple[str, ...] = ("minDelay", "avgDelay", "maxDelay"),
                          ) -> Tuple[HostingNetwork, Dict[Edge, Tuple[NodeId, ...]]]:
    """The closure network and the shortest paths backing its edges.

    Edge ``(u, v)`` of the closure carries the summed delay attributes of the
    minimum-``delay_attr`` path between ``u`` and ``v`` (among paths of at most
    *max_hops* hops) plus ``hopCount``.  Node attributes are copied verbatim.
    """
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    if hosting.directed:
        raise ValueError("path mapping currently supports undirected hosting networks")

    closure = HostingNetwork(name=f"{hosting.name}-closure{max_hops}")
    for node in hosting.nodes():
        closure.add_node(node, **dict(hosting.node_attrs(node)))

    graph = hosting.graph
    paths: Dict[Edge, Tuple[NodeId, ...]] = {}
    # Dijkstra from every node, cut off by hop count via BFS-limited candidates.
    for source in hosting.nodes():
        lengths, node_paths = nx.single_source_dijkstra(
            graph, source, weight=lambda u, v, d: d.get(delay_attr, 1.0))
        for target, path in node_paths.items():
            if target == source or len(path) - 1 > max_hops:
                continue
            if closure.has_edge(source, target):
                continue
            attrs = {attr: 0.0 for attr in weight_attrs}
            for u, v in zip(path, path[1:]):
                for attr in weight_attrs:
                    attrs[attr] += float(hosting.get_edge_attr(u, v, attr, 0.0))
            attrs = {attr: round(value, 3) for attr, value in attrs.items()}
            attrs["hopCount"] = len(path) - 1
            closure.add_edge(source, target, **attrs)
            paths[(source, target)] = tuple(path)
            paths[(target, source)] = tuple(reversed(path))
    return closure, paths


class PathEmbedder:
    """Embed queries whose edges may map onto multi-hop hosting paths.

    Parameters
    ----------
    algorithm:
        The base embedding algorithm run on the closure network (default ECF).
    max_hops:
        Maximum hosting-path length a single query edge may use.
    """

    def __init__(self, algorithm: Optional[EmbeddingAlgorithm] = None,
                 max_hops: int = 3) -> None:
        self._algorithm = algorithm or ECF()
        self._max_hops = max_hops

    def search(self, query: QueryNetwork, hosting: HostingNetwork,
               constraint: Optional[ConstraintExpression] = None,
               node_constraint: Optional[ConstraintExpression] = None,
               timeout: Optional[float] = None,
               max_results: Optional[int] = None) -> PathEmbeddingResult:
        """Find embeddings where query edges ride hosting paths of bounded length."""
        closure, paths = build_closure_network(hosting, max_hops=self._max_hops)
        result = self._algorithm.request(SearchRequest.build(
            query, closure, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout,
            max_results=max_results))
        path_mappings = []
        for mapping in result.mappings:
            edge_paths: Dict[Edge, Tuple[NodeId, ...]] = {}
            for q_source, q_target in query.edges():
                r_source, r_target = mapping[q_source], mapping[q_target]
                if hosting.has_edge(r_source, r_target):
                    edge_paths[(q_source, q_target)] = (r_source, r_target)
                else:
                    edge_paths[(q_source, q_target)] = paths[(r_source, r_target)]
            path_mappings.append(PathMapping(node_mapping=mapping, edge_paths=edge_paths))
        return PathEmbeddingResult(base_result=result, path_mappings=path_mappings)
