"""Temporal scheduling of embeddings (§VIII, snBench integration).

"When used in a real application, resources once assigned would not be
available for some amount of time. In such settings, the embedding problem
must be tightly integrated with the scheduling problem – to find a window of
time (or the closest window of time) in which some feasible embedding is
available."

This module implements that integration over a slotted timeline:

* an :class:`EmbeddingCalendar` tracks, per time slot, which hosting nodes
  are already held by previously scheduled embeddings;
* :class:`EmbeddingScheduler` answers "what is the earliest window of
  *duration* slots, starting at or after *earliest*, in which this query can
  be embedded?" by searching each candidate start slot with a node constraint
  that excludes busy hosts, and books the winning embedding into the calendar.

The scheduler prefers reusing one embedding across the whole window (the
common case); a request is rejected for a window only if no feasible
embedding exists given that window's busy sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Union

from repro.api.request import SearchRequest
from repro.constraints import ConstraintExpression
from repro.core.base import EmbeddingAlgorithm
from repro.core.lns import LNS
from repro.core.mapping import Mapping
from repro.graphs.hosting import HostingNetwork
from repro.graphs.network import NodeId
from repro.graphs.query import QueryNetwork


@dataclass
class ScheduledEmbedding:
    """A booked embedding occupying its hosting nodes for [start, end) slots."""

    job_id: str
    mapping: Mapping
    start: int
    end: int

    def overlaps(self, slot: int) -> bool:
        """Whether the booking holds its resources during *slot*."""
        return self.start <= slot < self.end


class EmbeddingCalendar:
    """Slot-indexed occupancy of hosting nodes by scheduled embeddings."""

    def __init__(self) -> None:
        self._bookings: List[ScheduledEmbedding] = []
        self._counter = 0

    def busy_nodes(self, start: int, end: int) -> Set[NodeId]:
        """Hosting nodes held by any booking overlapping the window [start, end)."""
        busy: Set[NodeId] = set()
        for booking in self._bookings:
            if booking.start < end and start < booking.end:
                busy.update(booking.mapping.hosting_nodes())
        return busy

    def book(self, mapping: Mapping, start: int, duration: int) -> ScheduledEmbedding:
        """Record a booking of *mapping* for *duration* slots starting at *start*."""
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self._counter += 1
        booking = ScheduledEmbedding(job_id=f"job-{self._counter:05d}", mapping=mapping,
                                     start=start, end=start + duration)
        self._bookings.append(booking)
        return booking

    def cancel(self, job_id: str) -> None:
        """Remove a booking."""
        before = len(self._bookings)
        self._bookings = [b for b in self._bookings if b.job_id != job_id]
        if len(self._bookings) == before:
            raise KeyError(f"unknown job {job_id!r}")

    def bookings(self) -> List[ScheduledEmbedding]:
        """All current bookings (copy)."""
        return list(self._bookings)

    def __len__(self) -> int:
        return len(self._bookings)


@dataclass
class ScheduleResult:
    """Outcome of a scheduling request."""

    booking: Optional[ScheduledEmbedding]
    attempted_starts: List[int] = field(default_factory=list)

    @property
    def scheduled(self) -> bool:
        """Whether a window was found and booked."""
        return self.booking is not None


class EmbeddingScheduler:
    """Find-and-book the earliest feasible window for a query network.

    Parameters
    ----------
    hosting:
        The hosting network (shared with the rest of the service).
    algorithm:
        Embedding algorithm used per candidate window (default: LNS with
        ``max_results=1``, the cheapest way to decide feasibility).
    horizon:
        How many slots ahead the scheduler is willing to look.
    """

    def __init__(self, hosting: HostingNetwork,
                 algorithm: Optional[EmbeddingAlgorithm] = None,
                 horizon: int = 64) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.hosting = hosting
        self.calendar = EmbeddingCalendar()
        self._algorithm = algorithm or LNS()
        self._horizon = horizon

    def schedule(self, query: QueryNetwork,
                 constraint: Optional[Union[str, ConstraintExpression]] = None,
                 duration: int = 1, earliest: int = 0,
                 timeout: Optional[float] = None) -> ScheduleResult:
        """Book the earliest window of *duration* slots in which *query* embeds.

        Busy hosting nodes (held by overlapping bookings) are excluded through
        an ``up``-style availability flag synthesised per candidate window, so
        the embedding respects all earlier reservations.
        """
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        if earliest < 0:
            raise ValueError(f"earliest must be non-negative, got {earliest}")
        attempted = []
        for start in range(earliest, earliest + self._horizon):
            attempted.append(start)
            busy = self.calendar.busy_nodes(start, start + duration)
            mapping = self._try_window(query, constraint, busy, timeout)
            if mapping is not None:
                booking = self.calendar.book(mapping, start, duration)
                return ScheduleResult(booking=booking, attempted_starts=attempted)
        return ScheduleResult(booking=None, attempted_starts=attempted)

    # ------------------------------------------------------------------ #

    def _try_window(self, query: QueryNetwork, constraint, busy: Set[NodeId],
                    timeout: Optional[float]) -> Optional[Mapping]:
        if len(self.hosting.nodes()) - len(busy) < query.num_nodes:
            return None
        node_constraint = self._availability_constraint(busy)
        result = self._algorithm.request(SearchRequest.build(
            query, self.hosting, constraint=constraint,
            node_constraint=node_constraint, timeout=timeout, max_results=1))
        return result.first

    def _availability_constraint(self, busy: Set[NodeId]) -> Optional[ConstraintExpression]:
        """A node constraint that rejects the busy hosting nodes by name."""
        if not busy:
            return None
        clauses = [f'rNode.name != "{name}"' for name in sorted(map(str, busy))]
        return ConstraintExpression(" && ".join(clauses))
