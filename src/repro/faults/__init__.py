"""Deterministic fault injection for the engine, service, and server tiers.

See :mod:`repro.faults.plan` for declaring *what* fails where and when, and
:mod:`repro.faults.injection` for the process-wide injector that production
code consults via :func:`fire`.  With no plan installed, :func:`fire` is a
single ``None`` check — the subsystem costs nothing on the happy path.
"""

from repro.faults.injection import (
    FaultInjector,
    InjectedConnectionDrop,
    InjectedEngineTimeout,
    InjectedFault,
    InjectedPartitionLoss,
    InjectedPoolBreak,
    InjectedShardError,
    InjectedWorkerCrash,
    active,
    deactivate,
    fire,
    injecting,
    install,
)
from repro.faults.plan import (
    KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    validate_sites,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedConnectionDrop",
    "InjectedEngineTimeout",
    "InjectedFault",
    "InjectedPartitionLoss",
    "InjectedPoolBreak",
    "InjectedShardError",
    "InjectedWorkerCrash",
    "KINDS",
    "SITES",
    "active",
    "deactivate",
    "fire",
    "injecting",
    "install",
    "validate_sites",
]
