"""The process-wide fault injector: counters, firing, and the install API.

Production code marks its injection sites with a single call::

    from repro import faults
    faults.fire("server.reply")

When no plan is installed (the overwhelmingly common case) ``fire`` is a
module-level ``None`` check and returns immediately.  When a plan *is*
installed — by a test, by ``repro serve --fault-plan``, or by a benchmark —
the injector counts the invocation, looks the ``(site, invocation)`` pair up
in the plan, and either returns (no fault scheduled), sleeps (``slow-call``)
or raises a typed injected exception:

========================  =====================================================
kind                      raised exception / behaviour
========================  =====================================================
``worker-crash``          :class:`InjectedWorkerCrash` (a ``BrokenProcessPool``
                          subclass — the parallel engine's supervisor treats
                          it exactly like a real worker death)
``pool-broken``           :class:`InjectedPoolBreak` (likewise)
``shard-exception``       :class:`InjectedShardError` (an ordinary shard
                          failure that propagates to the caller)
``engine-timeout``        :class:`InjectedEngineTimeout` (a
                          ``TimeoutExpired`` subclass)
``connection-drop``       :class:`InjectedConnectionDrop` (a
                          ``ConnectionError`` subclass; the server interprets
                          it by closing the connection without replying)
``slow-call``             ``time.sleep(spec.delay)`` then normal return
========================  =====================================================

Firing is recorded — :meth:`FaultInjector.stats` reports per-site invocation
counts and the full fired log — so tests and the metrics endpoint can assert
*exactly* which faults happened.  All counter updates are lock-protected;
determinism additionally requires that the workload drives each site in a
deterministic order (sequential clients, single-threaded engines), which is
how the fault suite and ``bench_faults`` are built.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.utils.timing import TimeoutExpired


class InjectedFault(Exception):
    """Mixin marking an exception as deliberately injected."""


class InjectedWorkerCrash(BrokenProcessPool, InjectedFault):
    """A worker process death injected at a parallel-engine site."""


class InjectedPoolBreak(BrokenProcessPool, InjectedFault):
    """A process-pool breakage injected at pool-submission time."""


class InjectedShardError(RuntimeError, InjectedFault):
    """An ordinary (non-crash) shard failure injected into the merge."""


class InjectedEngineTimeout(TimeoutExpired, InjectedFault):
    """An engine-side timeout injected at service-submission time."""


class InjectedConnectionDrop(ConnectionError, InjectedFault):
    """A connection drop injected just before the server replies."""


class InjectedPartitionLoss(ConnectionError, InjectedFault):
    """A partition worker loss injected at a cluster-coordinator site.

    A ``ConnectionError`` subclass: the coordinator treats it exactly like
    an unreachable worker — the partition is marked unavailable, the request
    continues on the surviving partitions, and a later
    :meth:`~repro.cluster.coordinator.ClusterCoordinator.restore` (or
    :func:`~repro.cluster.repair.repair_placement`) brings it back.
    """


#: kind -> exception factory for the raising fault kinds.
_RAISERS = {
    "worker-crash": lambda spec, n: InjectedWorkerCrash(
        f"injected worker crash at {spec.site} invocation {n}"),
    "pool-broken": lambda spec, n: InjectedPoolBreak(
        f"injected pool breakage at {spec.site} invocation {n}"),
    "shard-exception": lambda spec, n: InjectedShardError(
        f"injected shard exception at {spec.site} invocation {n}"),
    "engine-timeout": lambda spec, n: InjectedEngineTimeout(
        f"injected engine timeout at {spec.site} invocation {n}"),
    "connection-drop": lambda spec, n: InjectedConnectionDrop(
        f"injected connection drop at {spec.site} invocation {n}"),
    "partition-loss": lambda spec, n: InjectedPartitionLoss(
        f"injected partition loss at {spec.site} invocation {n}"),
}


class FaultInjector:
    """Counts site invocations and fires the installed plan's faults."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._invocations: Dict[str, int] = {}
        self._fired: List[Dict[str, object]] = []

    def visit(self, site: str) -> Optional[FaultSpec]:
        """Count one invocation of ``site``; return the spec due to fire."""
        with self._lock:
            count = self._invocations.get(site, 0) + 1
            self._invocations[site] = count
            spec = self.plan.lookup(site, count)
            if spec is not None:
                self._fired.append(
                    {"site": site, "kind": spec.kind, "invocation": count})
            return spec

    def stats(self) -> Dict[str, object]:
        """Snapshot: per-site invocation counts, fired log, per-kind totals."""
        with self._lock:
            fired = [dict(entry) for entry in self._fired]
        counts: Dict[str, int] = {}
        for entry in fired:
            kind = str(entry["kind"])
            counts[kind] = counts.get(kind, 0) + 1
        with self._lock:
            invocations = dict(self._invocations)
        return {"invocations": invocations, "fired": fired,
                "fired_counts": counts, "total_fired": len(fired)}


#: The process-wide active injector (``None`` = fault injection off).
_active: Optional[FaultInjector] = None
_install_lock = threading.Lock()


def active() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _active


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide; returns its injector."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a fault plan is already installed; "
                               "deactivate() it first")
        _active = FaultInjector(plan)
        return _active


def deactivate() -> Optional[FaultInjector]:
    """Remove the installed injector (no-op when none is active)."""
    global _active
    with _install_lock:
        injector, _active = _active, None
        return injector


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Context manager: install ``plan`` for the block, then deactivate."""
    injector = install(plan)
    try:
        yield injector
    finally:
        deactivate()


def fire(site: str) -> None:
    """Mark one invocation of ``site``; raise/sleep if a fault is due.

    The fast path — no plan installed — is a single attribute read.
    """
    injector = _active
    if injector is None:
        return
    spec = injector.visit(site)
    if spec is None:
        return
    if spec.kind == "slow-call":
        time.sleep(spec.delay)
        return
    raise _RAISERS[spec.kind](spec, injector._invocations.get(site, 0))
