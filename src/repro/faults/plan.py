"""Deterministic fault plans: *what* fails, *where*, and on which invocation.

A :class:`FaultPlan` is a declarative schedule of faults keyed on **named
injection sites** — fixed points in the engine, service and server code that
call :func:`repro.faults.injection.fire` — and on the site's **invocation
index** (1-based: the third time the server replies, the fifth time a shard
result is consumed, …).  Counting invocations instead of wall-clock time is
what makes fault runs reproducible: the same seed and the same request
sequence hit the same faults in the same places, every run, regardless of
machine speed.

Two schedule shapes are supported:

* :meth:`FaultPlan.fixed` — explicit ``(site, kind, hits)`` triples;
* :meth:`FaultSpec.poisson` — hits drawn from a seeded Poisson process
  (via :func:`repro.workloads.arrivals.poisson_arrivals`, the same
  machinery that schedules request arrivals), with arrival *offsets*
  mapped onto invocation indices so the draw stays deterministic.

Plans serialise to/from JSON so ``repro serve --fault-plan plan.json`` can
load one, and validate eagerly: unknown sites or kinds a site does not
support are configuration errors, not silent no-ops.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Every declared injection site and the fault kinds it understands.  A
#: site appears here exactly when some production code path calls
#: ``fire(site)``; keeping the registry closed turns plan typos into
#: immediate errors instead of plans that never fire.
SITES: Dict[str, Tuple[str, ...]] = {
    # core/parallel.py — consuming one shard outcome from the pool.
    "parallel.shard-result": ("worker-crash", "shard-exception", "slow-call"),
    # core/parallel.py — submitting one shard to the process pool.
    "parallel.pool-submit": ("pool-broken",),
    # service/netembed.py — entry of NetEmbedService.submit.
    "service.submit": ("engine-timeout", "slow-call"),
    # server/admission.py — entry of AdmissionController.admit.
    "admission.admit": ("slow-call",),
    # server/app.py — just before a request-path reply is written.
    "server.reply": ("connection-drop", "slow-call"),
    # cluster/coordinator.py — entry of one partition worker's search.
    "cluster.partition-search": ("partition-loss", "slow-call"),
    # cluster/replica.py — applying one replication payload to a replica.
    "cluster.replicate": ("connection-drop", "slow-call"),
}

#: All fault kinds any site understands (documentation + validation).
KINDS: Tuple[str, ...] = (
    "worker-crash", "shard-exception", "slow-call",
    "connection-drop", "engine-timeout", "pool-broken",
    "partition-loss",
)


class FaultPlanError(ValueError):
    """A fault plan referenced an unknown site/kind or is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault schedule: ``kind`` fires at ``site`` on invocations ``hits``.

    Attributes
    ----------
    site:
        A key of :data:`SITES`.
    kind:
        A fault kind the site supports.
    hits:
        Sorted, unique, 1-based invocation indices at which the fault
        fires.  Invocation 1 is the first time the site is reached.
    delay:
        Sleep duration in seconds for ``slow-call`` faults (ignored by
        the raising kinds).
    """

    site: str
    kind: str
    hits: Tuple[int, ...]
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; declared sites: "
                f"{', '.join(sorted(SITES))}")
        if self.kind not in SITES[self.site]:
            raise FaultPlanError(
                f"site {self.site!r} does not support fault kind "
                f"{self.kind!r} (supported: {', '.join(SITES[self.site])})")
        hits = tuple(sorted(set(int(h) for h in self.hits)))
        if not hits:
            raise FaultPlanError(f"fault spec for {self.site!r} has no hits")
        if hits[0] < 1:
            raise FaultPlanError(
                f"hits are 1-based invocation indices, got {hits[0]}")
        if self.delay < 0:
            raise FaultPlanError(f"delay must be >= 0, got {self.delay}")
        object.__setattr__(self, "hits", hits)

    @classmethod
    def poisson(cls, site: str, kind: str, rate: float, horizon: float,
                seed: int, delay: float = 0.05) -> "FaultSpec":
        """Draw hit indices from a seeded Poisson process.

        Arrival offsets from :func:`poisson_arrivals` (rate faults per
        "unit", over ``horizon`` units) are mapped to invocation indices
        with ``floor(offset) + 1``, de-duplicated — so a rate of 0.2 over
        a horizon of 50 yields ~10 faults spread over the site's first 50
        invocations, identically for every run with the same seed.
        """
        from repro.workloads.arrivals import poisson_arrivals

        hits = sorted({int(math.floor(a.offset)) + 1
                       for a in poisson_arrivals(rate, horizon, rng=seed)})
        if not hits:
            # A legal draw: the process produced no arrivals inside the
            # horizon.  Represent it as an empty plan at the call site.
            raise FaultPlanError(
                f"poisson draw (rate={rate}, horizon={horizon}, seed={seed}) "
                f"produced no fault arrivals; widen the horizon or raise "
                f"the rate")
        return cls(site=site, kind=kind, hits=tuple(hits), delay=delay)

    def payload(self) -> Dict[str, object]:
        return {"site": self.site, "kind": self.kind,
                "hits": list(self.hits), "delay": self.delay}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` entries, indexed for lookup."""

    specs: Tuple[FaultSpec, ...]
    _index: Dict[Tuple[str, int], FaultSpec] = field(
        default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        index: Dict[Tuple[str, int], FaultSpec] = {}
        for spec in self.specs:
            for hit in spec.hits:
                key = (spec.site, hit)
                if key in index:
                    raise FaultPlanError(
                        f"duplicate fault at site {spec.site!r} "
                        f"invocation {hit}")
                index[key] = spec
        object.__setattr__(self, "specs", tuple(self.specs))
        object.__setattr__(self, "_index", index)

    @classmethod
    def fixed(cls, *specs: FaultSpec) -> "FaultPlan":
        """Build a plan from explicit specs."""
        return cls(specs=tuple(specs))

    def lookup(self, site: str, invocation: int) -> Optional[FaultSpec]:
        """The spec firing at ``(site, invocation)``, or ``None``."""
        return self._index.get((site, invocation))

    def sites(self) -> List[str]:
        return sorted({spec.site for spec in self.specs})

    # -- JSON round trip ------------------------------------------------ #

    def payload(self) -> Dict[str, object]:
        return {"version": 1, "specs": [spec.payload() for spec in self.specs]}

    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FaultPlan":
        if not isinstance(payload, dict) or "specs" not in payload:
            raise FaultPlanError(
                "fault plan payload must be an object with a 'specs' list")
        specs: List[FaultSpec] = []
        raw_specs = payload["specs"]
        if not isinstance(raw_specs, list):
            raise FaultPlanError("'specs' must be a list")
        for raw in raw_specs:
            if not isinstance(raw, dict):
                raise FaultPlanError(f"fault spec must be an object: {raw!r}")
            site = raw.get("site")
            kind = raw.get("kind")
            delay = float(raw.get("delay", 0.05))
            if "poisson" in raw:
                draw = raw["poisson"]
                if not isinstance(draw, dict):
                    raise FaultPlanError("'poisson' must be an object")
                specs.append(FaultSpec.poisson(
                    site=site, kind=kind, rate=float(draw["rate"]),
                    horizon=float(draw["horizon"]), seed=int(draw["seed"]),
                    delay=delay))
            else:
                hits = raw.get("hits")
                if not isinstance(hits, (list, tuple)):
                    raise FaultPlanError(
                        f"fault spec needs 'hits' or 'poisson': {raw!r}")
                specs.append(FaultSpec(site=site, kind=kind,
                                       hits=tuple(hits), delay=delay))
        return cls.fixed(*specs)

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(f"cannot load fault plan {path}: {exc}")
        return cls.from_payload(payload)


def validate_sites(sites: Iterable[str]) -> None:
    """Raise :class:`FaultPlanError` for any undeclared site name."""
    unknown = sorted(set(sites) - set(SITES))
    if unknown:
        raise FaultPlanError(f"unknown fault sites: {', '.join(unknown)}")
