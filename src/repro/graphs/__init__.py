"""Attributed network model used by NETEMBED.

The paper (§IV, §VI-A) represents both the *hosting network* (the real
infrastructure, e.g. PlanetLab) and the *query network* (the virtual topology
an application wants to instantiate) as graphs whose nodes and edges carry
arbitrary typed attributes — measured metrics such as delay or bandwidth,
and categorical classes such as the operating system of a node.  Networks are
exchanged in GraphML.

This subpackage provides:

* :class:`~repro.graphs.network.Network` — the shared attributed-graph model,
  a thin domain layer on top of :class:`networkx.Graph` /
  :class:`networkx.DiGraph`.
* :class:`~repro.graphs.hosting.HostingNetwork` and
  :class:`~repro.graphs.query.QueryNetwork` — role-specific wrappers with the
  helpers each side of the embedding needs.
* :mod:`~repro.graphs.graphml` — GraphML reading/writing with typed
  attribute declarations (paper §VI-A).
* :mod:`~repro.graphs.ops` — graph utilities (connected-subgraph sampling,
  relabeling, degree orderings) used by the workload generators and the
  search algorithms.
"""

from repro.graphs.attributes import AttributeSchema, AttributeSpec, infer_schema
from repro.graphs.errors import GraphError, GraphMLError, UnknownAttributeError
from repro.graphs.hosting import HostingNetwork
from repro.graphs.journal import MutationJournal, MutationRecord, NetworkDelta
from repro.graphs.network import Network
from repro.graphs.query import QueryNetwork
from repro.graphs.graphml import read_graphml, write_graphml, graphml_string, parse_graphml_string
from repro.graphs import ops

__all__ = [
    "AttributeSchema",
    "AttributeSpec",
    "infer_schema",
    "GraphError",
    "GraphMLError",
    "UnknownAttributeError",
    "HostingNetwork",
    "MutationJournal",
    "MutationRecord",
    "Network",
    "NetworkDelta",
    "QueryNetwork",
    "read_graphml",
    "write_graphml",
    "graphml_string",
    "parse_graphml_string",
    "ops",
]
