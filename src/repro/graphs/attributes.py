"""Typed attribute schemas for network nodes and edges.

GraphML (paper §VI-A) declares every attribute with a ``<key>`` element that
carries a name and a type (``boolean``, ``int``, ``long``, ``float``,
``double``, ``string``).  The reproduction mirrors that: a
:class:`AttributeSchema` records, for node and edge attributes separately,
the declared type and an optional default value.  The GraphML reader/writer
uses the schema to round-trip types faithfully, and :func:`infer_schema`
builds a schema from an already-populated network so programmatically built
networks can be serialised without declaring anything by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: GraphML attr.type name -> Python type used in memory.
GRAPHML_TYPES: Dict[str, type] = {
    "boolean": bool,
    "int": int,
    "long": int,
    "float": float,
    "double": float,
    "string": str,
}

#: Python type -> canonical GraphML attr.type name used when writing.
_PYTHON_TO_GRAPHML: Dict[type, str] = {
    bool: "boolean",
    int: "long",
    float: "double",
    str: "string",
}


def graphml_type_for(value: Any) -> str:
    """Return the GraphML ``attr.type`` string for a Python value."""
    for python_type, name in _PYTHON_TO_GRAPHML.items():
        # bool is a subclass of int; rely on the ordering of the dict
        # (bool first) plus an exact-type check to keep them distinct.
        if type(value) is python_type:
            return name
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "long"
    if isinstance(value, float):
        return "double"
    return "string"


def coerce_value(raw: str, graphml_type: str) -> Any:
    """Convert a GraphML ``<data>`` text payload to its Python value."""
    if graphml_type not in GRAPHML_TYPES:
        raise ValueError(f"unsupported GraphML attribute type {graphml_type!r}")
    if graphml_type == "boolean":
        text = raw.strip().lower()
        if text in ("true", "1"):
            return True
        if text in ("false", "0"):
            return False
        raise ValueError(f"cannot parse {raw!r} as a boolean")
    return GRAPHML_TYPES[graphml_type](raw)


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of a single typed attribute.

    Attributes
    ----------
    name:
        Attribute name as it appears in constraint expressions
        (``rEdge.avgDelay`` refers to the edge attribute ``avgDelay``).
    domain:
        ``"node"`` or ``"edge"``.
    graphml_type:
        One of the GraphML type names in :data:`GRAPHML_TYPES`.
    default:
        Optional default used when an element does not carry the attribute.
    """

    name: str
    domain: str
    graphml_type: str = "double"
    default: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.domain not in ("node", "edge"):
            raise ValueError(f"domain must be 'node' or 'edge', got {self.domain!r}")
        if self.graphml_type not in GRAPHML_TYPES:
            raise ValueError(f"unsupported GraphML type {self.graphml_type!r}")

    @property
    def python_type(self) -> type:
        """The in-memory Python type for values of this attribute."""
        return GRAPHML_TYPES[self.graphml_type]

    def coerce(self, raw: Any) -> Any:
        """Coerce a raw (possibly string) value to the declared type."""
        if isinstance(raw, str):
            return coerce_value(raw, self.graphml_type)
        return self.python_type(raw)


@dataclass
class AttributeSchema:
    """The set of declared node and edge attributes of a network."""

    node_attrs: Dict[str, AttributeSpec] = field(default_factory=dict)
    edge_attrs: Dict[str, AttributeSpec] = field(default_factory=dict)

    def declare(self, spec: AttributeSpec) -> "AttributeSchema":
        """Add (or replace) an attribute declaration.  Returns ``self``."""
        table = self.node_attrs if spec.domain == "node" else self.edge_attrs
        table[spec.name] = spec
        return self

    def declare_node(self, name: str, graphml_type: str = "double",
                     default: Optional[Any] = None) -> "AttributeSchema":
        """Shorthand for declaring a node attribute."""
        return self.declare(AttributeSpec(name, "node", graphml_type, default))

    def declare_edge(self, name: str, graphml_type: str = "double",
                     default: Optional[Any] = None) -> "AttributeSchema":
        """Shorthand for declaring an edge attribute."""
        return self.declare(AttributeSpec(name, "edge", graphml_type, default))

    def spec_for(self, domain: str, name: str) -> Optional[AttributeSpec]:
        """Lookup the spec for ``(domain, name)`` or ``None`` if undeclared."""
        table = self.node_attrs if domain == "node" else self.edge_attrs
        return table.get(name)

    def defaults(self, domain: str) -> Dict[str, Any]:
        """Mapping of attribute name to default for attributes with defaults."""
        table = self.node_attrs if domain == "node" else self.edge_attrs
        return {name: spec.default for name, spec in table.items()
                if spec.default is not None}

    def merge(self, other: "AttributeSchema") -> "AttributeSchema":
        """Return a new schema containing the union of declarations.

        Declarations in *other* win on conflicts; used when composing
        generated networks with user-supplied extra attributes.
        """
        merged = AttributeSchema(dict(self.node_attrs), dict(self.edge_attrs))
        merged.node_attrs.update(other.node_attrs)
        merged.edge_attrs.update(other.edge_attrs)
        return merged

    def __contains__(self, key: Tuple[str, str]) -> bool:
        domain, name = key
        return self.spec_for(domain, name) is not None


#: Type-widening order used when an attribute carries values of mixed types.
_WIDENING_ORDER = ("boolean", "long", "double", "string")


def _widen(current: str, observed: str) -> str:
    """The narrowest GraphML type that can represent both *current* and *observed*.

    Booleans and numbers have no common numeric representation in GraphML, so
    mixing them (or mixing anything with strings) widens all the way to
    ``string``; ``long`` mixed with ``double`` widens to ``double``.
    """
    if current == observed:
        return current
    if {current, observed} == {"long", "double"}:
        return "double"
    return "string"


def infer_schema(node_data: Iterable[Mapping[str, Any]],
                 edge_data: Iterable[Mapping[str, Any]]) -> AttributeSchema:
    """Infer an :class:`AttributeSchema` from populated attribute dicts.

    Every non-``None`` value observed for an attribute contributes to its
    declared type; attributes with values of mixed types are widened
    (``long`` + ``double`` → ``double``, anything else → ``string``).  This is
    what lets programmatically constructed networks be written to GraphML
    without explicit declarations.
    """
    schema = AttributeSchema()
    for domain, dataset in (("node", node_data), ("edge", edge_data)):
        observed: Dict[str, str] = {}
        for data in dataset:
            for name, value in data.items():
                if value is None:
                    continue
                value_type = graphml_type_for(value)
                if name in observed:
                    observed[name] = _widen(observed[name], value_type)
                else:
                    observed[name] = value_type
        for name, graphml_type in observed.items():
            schema.declare(AttributeSpec(name, domain, graphml_type))
    return schema
