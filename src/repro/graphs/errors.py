"""Exception hierarchy for the network model."""

from __future__ import annotations


class GraphError(Exception):
    """Base class for errors raised by the :mod:`repro.graphs` package."""


class GraphMLError(GraphError):
    """Raised when a GraphML document cannot be parsed or serialised."""


class UnknownAttributeError(GraphError, KeyError):
    """Raised when an attribute referenced by a constraint does not exist.

    The constraint evaluator converts this into a non-match rather than an
    error when ``strict=False`` (the default NETEMBED behaviour: a query may
    reference attributes only some hosting nodes expose).
    """

    def __init__(self, owner: str, attribute: str):
        super().__init__(f"{owner} has no attribute {attribute!r}")
        self.owner = owner
        self.attribute = attribute


class DuplicateNodeError(GraphError):
    """Raised when adding a node identifier that already exists."""


class MissingNodeError(GraphError, KeyError):
    """Raised when referencing a node identifier that does not exist."""
