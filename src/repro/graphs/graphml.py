"""GraphML serialisation of hosting and query networks (paper §VI-A).

The paper adopts GraphML as the interchange format between applications and
the NETEMBED service precisely because it supports *arbitrary typed
attributes* on nodes and edges.  This module implements a self-contained
GraphML reader and writer on top of :mod:`xml.etree.ElementTree`:

* ``<key>`` elements declare every attribute with its domain (node/edge),
  name and type, mirroring :class:`~repro.graphs.attributes.AttributeSchema`;
* ``<data>`` elements carry the values, coerced back to Python types on read;
* defaults declared on keys are applied to elements that omit the attribute.

We intentionally do not use ``networkx.write_graphml`` so the reproduction
controls the schema handling, produces stable output for tests, and has no
optional lxml dependency.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Optional, Type, Union

from repro.graphs.attributes import AttributeSchema, AttributeSpec, graphml_type_for
from repro.graphs.errors import GraphMLError
from repro.graphs.network import Network

GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"


def _qualify(tag: str) -> str:
    return f"{{{GRAPHML_NS}}}{tag}"


# --------------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------------- #

def _build_document(network: Network) -> ET.Element:
    """Build the GraphML element tree for *network*."""
    schema = network.schema
    root = ET.Element("graphml", {"xmlns": GRAPHML_NS})

    key_ids = {}
    counter = 0
    for domain, table in (("node", schema.node_attrs), ("edge", schema.edge_attrs)):
        for name, spec in sorted(table.items()):
            key_id = f"d{counter}"
            counter += 1
            key_ids[(domain, name)] = key_id
            key_el = ET.SubElement(root, "key", {
                "id": key_id,
                "for": domain,
                "attr.name": name,
                "attr.type": spec.graphml_type,
            })
            if spec.default is not None:
                default_el = ET.SubElement(key_el, "default")
                default_el.text = _format_value(spec.default)

    graph_el = ET.SubElement(root, "graph", {
        "id": network.name,
        "edgedefault": "directed" if network.directed else "undirected",
    })

    for node in network.nodes():
        node_el = ET.SubElement(graph_el, "node", {"id": str(node)})
        for name, value in sorted(network.node_attrs(node).items()):
            _append_data(node_el, key_ids, "node", name, value, root)

    for index, (u, v) in enumerate(network.edges()):
        edge_el = ET.SubElement(graph_el, "edge", {
            "id": f"e{index}", "source": str(u), "target": str(v),
        })
        for name, value in sorted(network.edge_attrs(u, v).items()):
            _append_data(edge_el, key_ids, "edge", name, value, root)

    return root


def _append_data(parent: ET.Element, key_ids: dict, domain: str, name: str,
                 value, root: ET.Element) -> None:
    """Append a <data> child, declaring a key on the fly for undeclared attributes."""
    if value is None:
        return
    key = (domain, name)
    if key not in key_ids:
        key_id = f"d{len(key_ids)}x"
        key_ids[key] = key_id
        key_el = ET.Element("key", {
            "id": key_id,
            "for": domain,
            "attr.name": name,
            "attr.type": graphml_type_for(value),
        })
        # keys must precede the <graph> element
        root.insert(0, key_el)
    data_el = ET.SubElement(parent, "data", {"key": key_ids[key]})
    data_el.text = _format_value(value)


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def graphml_string(network: Network) -> str:
    """Serialise *network* to a GraphML string."""
    root = _build_document(network)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_graphml(network: Network, path: Union[str, Path]) -> Path:
    """Write *network* to a GraphML file and return the path."""
    path = Path(path)
    path.write_text(graphml_string(network), encoding="utf-8")
    return path


# --------------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------------- #

def parse_graphml_string(text: str, cls: Type[Network] = Network,
                         name: Optional[str] = None) -> Network:
    """Parse a GraphML document from a string into an instance of *cls*."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise GraphMLError(f"invalid GraphML document: {exc}") from exc
    return _parse_root(root, cls, name)


def read_graphml(path: Union[str, Path], cls: Type[Network] = Network,
                 name: Optional[str] = None) -> Network:
    """Read a GraphML file into an instance of *cls*.

    Parameters
    ----------
    path:
        File to read.
    cls:
        Which network class to construct — typically
        :class:`~repro.graphs.hosting.HostingNetwork` or
        :class:`~repro.graphs.query.QueryNetwork`.
    name:
        Overrides the graph id from the file as the network's name.
    """
    path = Path(path)
    if not path.exists():
        raise GraphMLError(f"GraphML file {path} does not exist")
    return parse_graphml_string(path.read_text(encoding="utf-8"), cls, name)


def _strip(tag: str) -> str:
    """Remove a namespace prefix from an element tag."""
    return tag.split("}", 1)[-1]


def _parse_root(root: ET.Element, cls: Type[Network], name: Optional[str]) -> Network:
    if _strip(root.tag) != "graphml":
        raise GraphMLError(f"expected <graphml> root element, got <{_strip(root.tag)}>")

    schema = AttributeSchema()
    key_specs = {}
    key_defaults = {}
    for key_el in root:
        if _strip(key_el.tag) != "key":
            continue
        key_id = key_el.get("id")
        domain = key_el.get("for", "all")
        attr_name = key_el.get("attr.name")
        attr_type = key_el.get("attr.type", "string")
        if key_id is None or attr_name is None:
            raise GraphMLError("<key> element missing id or attr.name")
        domains = ("node", "edge") if domain in ("all", None) else (domain,)
        for d in domains:
            if d not in ("node", "edge"):
                continue  # graph-level keys are ignored
            spec = AttributeSpec(attr_name, d, attr_type)
            schema.declare(spec)
            key_specs[(key_id, d)] = spec
        default_el = next((c for c in key_el if _strip(c.tag) == "default"), None)
        if default_el is not None and default_el.text is not None:
            key_defaults[key_id] = default_el.text

    graph_el = next((c for c in root if _strip(c.tag) == "graph"), None)
    if graph_el is None:
        raise GraphMLError("GraphML document contains no <graph> element")

    directed = graph_el.get("edgedefault", "undirected") == "directed"
    net_name = name or graph_el.get("id") or "graphml"
    network = cls(name=net_name, directed=directed, schema=schema)

    def read_data(element: ET.Element, domain: str) -> dict:
        attrs = {}
        for data_el in element:
            if _strip(data_el.tag) != "data":
                continue
            key_id = data_el.get("key")
            spec = key_specs.get((key_id, domain))
            raw = data_el.text if data_el.text is not None else ""
            if spec is None:
                attrs_name = key_id or "data"
                attrs[attrs_name] = raw
                continue
            try:
                attrs[spec.name] = spec.coerce(raw)
            except ValueError as exc:
                raise GraphMLError(
                    f"cannot coerce {raw!r} to {spec.graphml_type} for "
                    f"attribute {spec.name!r}") from exc
        # Apply declared defaults for attributes the element omitted.
        for (key_id, d), spec in key_specs.items():
            if d == domain and spec.name not in attrs and key_id in key_defaults:
                attrs[spec.name] = spec.coerce(key_defaults[key_id])
        return attrs

    for node_el in graph_el:
        if _strip(node_el.tag) != "node":
            continue
        node_id = node_el.get("id")
        if node_id is None:
            raise GraphMLError("<node> element missing id")
        network.add_node(node_id, **read_data(node_el, "node"))

    for edge_el in graph_el:
        if _strip(edge_el.tag) != "edge":
            continue
        source = edge_el.get("source")
        target = edge_el.get("target")
        if source is None or target is None:
            raise GraphMLError("<edge> element missing source or target")
        network.add_edge(source, target, **read_data(edge_el, "edge"))

    return network
