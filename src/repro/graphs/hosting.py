"""The hosting (real) network: the embedding target.

A :class:`HostingNetwork` is a :class:`~repro.graphs.network.Network` whose
nodes represent physical resources (PlanetLab sites, routers, sensors, grid
nodes) and whose edges carry measured link characteristics (delay ranges,
bandwidth, loss, jitter).  It adds the accessors the search algorithms and the
service layer need when scanning the full infrastructure:

* iteration over *candidate edges* in both orientations, because an
  undirected hosting edge ``(r1, r2)`` can host an undirected query edge in
  either orientation (paper §V-A, footnote 3);
* summary statistics of an attribute's distribution, used by the workload
  generators to pick realistic constraint windows (e.g. the 10–100 ms band of
  the clique experiment in §VII-D);
* residual-capacity bookkeeping hooks used by the reservation manager.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.graphs.network import Edge, Network, NodeId


class HostingNetwork(Network):
    """The real infrastructure into which query networks are embedded."""

    # ------------------------------------------------------------------ #
    # Edge orientation handling
    # ------------------------------------------------------------------ #

    def oriented_edges(self) -> Iterator[Edge]:
        """Iterate over edges in every orientation a query edge could map to.

        For a directed hosting network this is simply every directed edge.
        For an undirected one each stored edge ``(u, v)`` is yielded as both
        ``(u, v)`` and ``(v, u)``, mirroring the paper's rule that an edge
        match updates the filter cells of both endpoints.
        """
        for u, v in self.edges():
            yield (u, v)
            if not self.directed:
                yield (v, u)

    def edge_count_oriented(self) -> int:
        """Number of oriented edges (2·|E| for undirected networks)."""
        return self.num_edges if self.directed else 2 * self.num_edges

    # ------------------------------------------------------------------ #
    # Attribute statistics
    # ------------------------------------------------------------------ #

    def edge_attribute_values(self, name: str) -> List[float]:
        """All defined values of edge attribute *name* across the network."""
        values = []
        for u, v in self.edges():
            value = self.get_edge_attr(u, v, name)
            if value is not None:
                values.append(value)
        return values

    def node_attribute_values(self, name: str) -> List[Any]:
        """All defined values of node attribute *name* across the network."""
        values = []
        for node in self.nodes():
            value = self.get_node_attr(node, name)
            if value is not None:
                values.append(value)
        return values

    def edge_attribute_stats(self, name: str) -> Dict[str, float]:
        """Summary statistics (min/max/mean/median/percentiles) of an edge attribute.

        Used by the query generators to choose constraint windows that cover a
        controlled fraction of the hosting links, which is how the paper
        parameterises its under-constrained experiments (§VII-D).
        """
        values = np.asarray(self.edge_attribute_values(name), dtype=float)
        if values.size == 0:
            raise ValueError(f"no edges define attribute {name!r}")
        return {
            "count": int(values.size),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "p10": float(np.percentile(values, 10)),
            "p25": float(np.percentile(values, 25)),
            "p75": float(np.percentile(values, 75)),
            "p90": float(np.percentile(values, 90)),
        }

    def edges_in_attribute_range(self, name: str, low: float, high: float) -> List[Edge]:
        """Edges whose attribute *name* lies within ``[low, high]``."""
        matching = []
        for u, v in self.edges():
            value = self.get_edge_attr(u, v, name)
            if value is not None and low <= value <= high:
                matching.append((u, v))
        return matching

    def fraction_of_edges_in_range(self, name: str, low: float, high: float) -> float:
        """Fraction of edges whose attribute lies in ``[low, high]``."""
        if self.num_edges == 0:
            return 0.0
        return len(self.edges_in_attribute_range(name, low, high)) / self.num_edges

    # ------------------------------------------------------------------ #
    # Capacity bookkeeping (used by the reservation manager)
    # ------------------------------------------------------------------ #

    def set_capacity(self, node: NodeId, capacity: float,
                     attribute: str = "capacity") -> None:
        """Declare the total capacity of *node* under attribute *attribute*."""
        self.update_node(node, **{attribute: float(capacity),
                                  f"available_{attribute}": float(capacity)})

    def available_capacity(self, node: NodeId, attribute: str = "capacity") -> Optional[float]:
        """Remaining capacity of *node*, or ``None`` if it has no capacity attribute."""
        return self.get_node_attr(node, f"available_{attribute}")

    def consume_capacity(self, node: NodeId, amount: float,
                         attribute: str = "capacity") -> None:
        """Consume *amount* units of a node's capacity.

        Raises
        ------
        ValueError
            If the node has no such capacity attribute or the consumption
            would drive the remaining capacity negative.
        """
        key = f"available_{attribute}"
        available = self.get_node_attr(node, key)
        if available is None:
            raise ValueError(f"node {node!r} has no capacity attribute {attribute!r}")
        if amount > available + 1e-12:
            raise ValueError(
                f"node {node!r} has only {available} {attribute} available, "
                f"cannot consume {amount}")
        self.update_node(node, **{key: available - amount})

    def release_capacity(self, node: NodeId, amount: float,
                         attribute: str = "capacity") -> None:
        """Return *amount* units of capacity to a node (bounded by total)."""
        key = f"available_{attribute}"
        total = self.get_node_attr(node, attribute)
        available = self.get_node_attr(node, key)
        if available is None or total is None:
            raise ValueError(f"node {node!r} has no capacity attribute {attribute!r}")
        self.update_node(node, **{key: min(total, available + amount)})

    # ------------------------------------------------------------------ #
    # Candidate pre-screening helpers
    # ------------------------------------------------------------------ #

    def nodes_with_attribute(self, name: str, value: Any = None) -> List[NodeId]:
        """Nodes that define attribute *name* (optionally equal to *value*)."""
        result = []
        for node in self.nodes():
            attrs = self.node_attrs(node)
            if name in attrs and (value is None or attrs[name] == value):
                result.append(node)
        return result

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping degree -> number of nodes with that degree."""
        histogram: Dict[int, int] = {}
        for node in self.nodes():
            d = self.degree(node)
            histogram[d] = histogram.get(d, 0) + 1
        return histogram
