"""The structured mutation journal behind incremental recompilation.

:attr:`~repro.graphs.network.Network.mutation_count` answers "did anything
change?" in O(1), which is all the plan-cache *invalidation* path needs.  The
incremental *refresh* path needs more: to patch a compiled artifact instead of
rebuilding it, the consumer must know **what** changed — which nodes and edges
were touched, and whether the change was structural (topology) or merely an
attribute update (the dominant case under monitoring churn: delay jitter,
load, up/down flags).

:class:`MutationJournal` records one :class:`MutationRecord` per mutation,
keyed by the epoch the mutation produced.  The journal is bounded: once more
than ``capacity`` records accumulate, the oldest are dropped and deltas
reaching back past the drop point become unavailable (``delta_since`` returns
``None``), at which point consumers fall back to a full rebuild.  This keeps
the journal O(capacity) no matter how long a network lives.

:meth:`MutationJournal.delta_since` aggregates the records after a given
epoch into a :class:`NetworkDelta` — the touched node/edge sets plus a
``structural`` flag — which is the unit the incremental paths in
:mod:`repro.core.filters` and :mod:`repro.core.plan` consume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

NodeId = Hashable

#: Mutation kinds.  The ``*-attrs`` kinds are patchable (the topology and
#: therefore every dense index derived from it is unchanged); the rest are
#: structural and force a full rebuild of compiled artifacts.
NODE_ADDED = "node-added"
NODE_REMOVED = "node-removed"
EDGE_ADDED = "edge-added"
EDGE_REMOVED = "edge-removed"
NODE_ATTRS = "node-attrs"
EDGE_ATTRS = "edge-attrs"

STRUCTURAL_KINDS = frozenset({NODE_ADDED, NODE_REMOVED, EDGE_ADDED, EDGE_REMOVED})


@dataclass(frozen=True)
class MutationRecord:
    """One journaled mutation.

    Attributes
    ----------
    epoch:
        The network's ``mutation_count`` *after* this mutation was applied,
        so a record belongs to the delta of every artifact compiled at an
        earlier epoch.
    kind:
        One of the module-level kind constants.
    subject:
        ``(node,)`` for node mutations, ``(u, v)`` for edge mutations.
    attrs:
        The attribute names that were written (attr kinds only; empty for
        structural kinds).
    """

    epoch: int
    kind: str
    subject: Tuple[NodeId, ...]
    attrs: Tuple[str, ...] = ()

    @property
    def structural(self) -> bool:
        """Whether this mutation changed the topology (vs. attributes only)."""
        return self.kind in STRUCTURAL_KINDS


@dataclass(frozen=True)
class NetworkDelta:
    """The aggregate of every mutation between two epochs of one network.

    ``touched_nodes`` / ``touched_edges`` are only meaningful when
    :attr:`structural` is ``False`` — a structural delta forces a full
    rebuild, so nobody consumes its touch sets.  Edge subjects are recorded
    in the orientation they were mutated in; undirected consumers must match
    either orientation (see :meth:`touches_edge`).
    """

    base_epoch: int
    target_epoch: int
    structural: bool
    touched_nodes: FrozenSet[NodeId]
    touched_edges: FrozenSet[Tuple[NodeId, NodeId]]
    #: Which attribute names were written per touched subject — the key to
    #: *relevance* filtering: a consumer whose compiled artifact never reads
    #: ``cpuLoad`` can skip every record that only wrote ``cpuLoad``.
    touched_node_attrs: Mapping[NodeId, FrozenSet[str]] = field(
        default_factory=dict)
    touched_edge_attrs: Mapping[Tuple[NodeId, NodeId], FrozenSet[str]] = field(
        default_factory=dict)

    @property
    def empty(self) -> bool:
        """Whether nothing changed between the two epochs."""
        return self.base_epoch == self.target_epoch

    @property
    def attrs_only(self) -> bool:
        """Whether every recorded mutation was an attribute update."""
        return not self.structural

    def touches_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether edge ``(u, v)`` was touched (either orientation)."""
        return (u, v) in self.touched_edges or (v, u) in self.touched_edges

    def touches_node(self, node: NodeId) -> bool:
        """Whether *node*'s attributes were touched."""
        return node in self.touched_nodes


#: Default journal depth.  Sized so that a few sparse monitoring ticks of a
#: paper-scale model fit comfortably: one 3 %-of-links tick of the 296-node
#: PlanetLab mesh is ~1.3k records, and patch consumers typically refresh
#: every tick or two.  A record is a small frozen dataclass, so the worst
#: case is a few hundred kilobytes per long-lived network.
DEFAULT_JOURNAL_CAPACITY = 8192


class MutationJournal:
    """A bounded ring of :class:`MutationRecord` entries.

    Parameters
    ----------
    capacity:
        Maximum records retained.  Older records are dropped FIFO; the
        journal remembers the epoch horizon below which deltas are no
        longer reconstructible (:attr:`floor_epoch`).
    floor_epoch:
        The epoch before the first recordable mutation.  Fresh networks
        start at 0; pickled networks reset the floor to their current epoch
        so a deserialized copy never claims to know history it dropped.
    """

    def __init__(self, capacity: int = DEFAULT_JOURNAL_CAPACITY,
                 floor_epoch: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._floor_epoch = floor_epoch
        self._records: Deque[MutationRecord] = deque()
        #: Epoch of the most recent structural mutation ever recorded (kept
        #: even after the record itself is dropped), so "anything structural
        #: since epoch E?" is an O(1) watermark compare instead of a scan.
        self._last_structural_epoch = 0

    # ------------------------------------------------------------------ #

    @property
    def floor_epoch(self) -> int:
        """Oldest epoch deltas can still be computed *from*."""
        return self._floor_epoch

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Tuple[MutationRecord, ...]:
        """Snapshot of the retained records, oldest first."""
        return tuple(self._records)

    # ------------------------------------------------------------------ #

    def record(self, epoch: int, kind: str, subject: Tuple[NodeId, ...],
               attrs: Tuple[str, ...] = ()) -> None:
        """Append one mutation record, dropping the oldest past capacity."""
        self._records.append(MutationRecord(epoch=epoch, kind=kind,
                                            subject=subject, attrs=attrs))
        if kind in STRUCTURAL_KINDS:
            self._last_structural_epoch = epoch
        while len(self._records) > self.capacity:
            dropped = self._records.popleft()
            # Deltas from epochs before the dropped record are now unknowable.
            self._floor_epoch = dropped.epoch

    def can_replay_from(self, epoch: int) -> bool:
        """O(1): whether an attrs-only delta exists from *epoch* onward.

        Exactly ``delta_since(epoch, now) is not None and not .structural``
        without materialising the delta — the cheap form hot paths (the plan
        cache's eviction sweep) use to classify stale artifacts.
        """
        return epoch >= self._floor_epoch and self._last_structural_epoch <= epoch

    def delta_since(self, base_epoch: int, target_epoch: int
                    ) -> Optional[NetworkDelta]:
        """Aggregate the records in ``(base_epoch, target_epoch]``.

        Returns ``None`` when the journal no longer reaches back to
        *base_epoch* (overflow) or when *base_epoch* is from the future —
        both mean "the caller cannot patch and must rebuild".
        """
        if base_epoch < self._floor_epoch or base_epoch > target_epoch:
            return None
        structural = False
        node_attrs: Dict[NodeId, set] = {}
        edge_attrs: Dict[Tuple[NodeId, NodeId], set] = {}
        for record in self._records:
            if record.epoch <= base_epoch or record.epoch > target_epoch:
                continue
            if record.structural:
                structural = True
            elif record.kind == NODE_ATTRS:
                node_attrs.setdefault(record.subject[0],
                                      set()).update(record.attrs)
            else:
                edge = (record.subject[0], record.subject[1])
                edge_attrs.setdefault(edge, set()).update(record.attrs)
        return NetworkDelta(
            base_epoch=base_epoch, target_epoch=target_epoch,
            structural=structural,
            touched_nodes=frozenset(node_attrs),
            touched_edges=frozenset(edge_attrs),
            touched_node_attrs={node: frozenset(attrs)
                                for node, attrs in node_attrs.items()},
            touched_edge_attrs={edge: frozenset(attrs)
                                for edge, attrs in edge_attrs.items()})

    def clear(self, floor_epoch: int) -> None:
        """Forget all history; deltas will only exist from *floor_epoch* on."""
        self._records.clear()
        self._floor_epoch = floor_epoch
